"""Equation 1: the sparsity coefficient of a k-dimensional cube.

Under the null model of uniformly distributed, attribute-independent
data, presence of each of the N points in a k-dimensional cube is a
Bernoulli trial with success probability ``f^k`` (``f = 1/φ``, because
equi-depth ranges each hold a fraction ``f`` of the records).  By the
central limit theorem the cube population ``n(D)`` is then approximately
normal with mean ``N·f^k`` and standard deviation
``sqrt(N·f^k·(1−f^k))``, and the paper's sparsity coefficient

    S(D) = (n(D) − N·f^k) / sqrt(N·f^k·(1 − f^k))

is the (approximate) z-score of the observed count.  Strongly negative
values flag cubes far emptier than chance allows; those cubes' occupants
are the outliers.
"""

from __future__ import annotations

import math

import numpy as np

from .._validation import check_non_negative_int, check_positive_int
from ..exceptions import ValidationError

__all__ = [
    "expected_count",
    "cube_count_std",
    "sparsity_coefficient",
    "sparsity_coefficients",
]


def _cell_probability(n_ranges: int, dimensionality: int) -> float:
    """``f^k`` — the null-model probability of one point landing in the cube."""
    return (1.0 / n_ranges) ** dimensionality


def expected_count(n_points: int, n_ranges: int, dimensionality: int) -> float:
    """Null-model expected cube population ``N·f^k``."""
    n_points = check_positive_int(n_points, "n_points")
    n_ranges = check_positive_int(n_ranges, "n_ranges")
    dimensionality = check_non_negative_int(dimensionality, "dimensionality")
    return n_points * _cell_probability(n_ranges, dimensionality)


def cube_count_std(n_points: int, n_ranges: int, dimensionality: int) -> float:
    """Null-model standard deviation ``sqrt(N·f^k·(1−f^k))``."""
    n_points = check_positive_int(n_points, "n_points")
    n_ranges = check_positive_int(n_ranges, "n_ranges")
    dimensionality = check_non_negative_int(dimensionality, "dimensionality")
    p = _cell_probability(n_ranges, dimensionality)
    return math.sqrt(n_points * p * (1.0 - p))


def sparsity_coefficient(
    count: int,
    n_points: int,
    n_ranges: int,
    dimensionality: int,
) -> float:
    """Equation 1: ``S(D) = (n(D) − N·f^k) / sqrt(N·f^k·(1−f^k))``.

    Parameters
    ----------
    count:
        ``n(D)`` — observed number of points in the cube.
    n_points:
        ``N`` — total number of records.
    n_ranges:
        ``φ`` — grid resolution per attribute.
    dimensionality:
        ``k`` — number of fixed dimensions of the cube.

    Returns
    -------
    float
        The sparsity coefficient.  Negative values mark cubes sparser
        than the uniform-independence expectation; the 0-dimensional
        cube (``k = 0``) has coefficient 0 by convention (its count is
        always exactly N, with zero variance).

    Raises
    ------
    ValidationError
        If ``count > n_points``, or ``n_ranges < 2`` for a cube with
        ``k >= 1`` (with a single range per attribute every cube holds
        all the data and the variance degenerates to 0).
    """
    count = check_non_negative_int(count, "count")
    n_points = check_positive_int(n_points, "n_points")
    n_ranges = check_positive_int(n_ranges, "n_ranges")
    dimensionality = check_non_negative_int(dimensionality, "dimensionality")
    if count > n_points:
        raise ValidationError(
            f"count ({count}) cannot exceed n_points ({n_points})"
        )
    if dimensionality == 0:
        return 0.0
    if n_ranges < 2:
        raise ValidationError(
            "n_ranges must be >= 2 for cubes with dimensionality >= 1 "
            "(the count variance is zero when φ = 1)"
        )
    p = _cell_probability(n_ranges, dimensionality)
    std = math.sqrt(n_points * p * (1.0 - p))
    return (count - n_points * p) / std


def sparsity_coefficients(
    counts: np.ndarray,
    n_points: int,
    n_ranges: int,
    dimensionality: int,
) -> np.ndarray:
    """Vectorized Equation 1 over an array of cube counts.

    Used by the brute-force enumerator, which scores all φ extensions
    of a partial cube in one shot.
    """
    n_points = check_positive_int(n_points, "n_points")
    n_ranges = check_positive_int(n_ranges, "n_ranges", minimum=2)
    dimensionality = check_positive_int(dimensionality, "dimensionality")
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size and (counts.min() < 0 or counts.max() > n_points):
        raise ValidationError("counts must lie in [0, n_points]")
    p = _cell_probability(n_ranges, dimensionality)
    std = math.sqrt(n_points * p * (1.0 - p))
    return (counts - n_points * p) / std
