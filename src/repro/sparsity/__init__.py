"""Sparsity coefficient (Equation 1) and its significance machinery."""

from .coefficient import (
    cube_count_std,
    expected_count,
    sparsity_coefficient,
    sparsity_coefficients,
)
from .statistics import (
    binomial_tail_probability,
    bonferroni_significance,
    expected_abnormal_cubes,
    normal_tail_probability,
    significance_of_coefficient,
)

__all__ = [
    "sparsity_coefficient",
    "sparsity_coefficients",
    "expected_count",
    "cube_count_std",
    "normal_tail_probability",
    "binomial_tail_probability",
    "significance_of_coefficient",
    "bonferroni_significance",
    "expected_abnormal_cubes",
]
