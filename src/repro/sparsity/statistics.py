"""Probabilistic significance of sparsity coefficients.

The paper (§1.3) notes that under the uniform-independence null model
the normal tables quantify "the probabilistic level of significance for
a point to deviate significantly from average behavior".  This module
provides that mapping — coefficient → lower-tail probability — plus the
*exact* Binomial tail, which matters for small expected counts where the
CLT approximation is loose (tiny ``N·f^k``, precisely the regime §2.4
warns about when choosing k).
"""

from __future__ import annotations

import math

from scipy import stats

from .._validation import check_in_range, check_non_negative_int, check_positive_int
from ..exceptions import ValidationError

__all__ = [
    "normal_tail_probability",
    "binomial_tail_probability",
    "significance_of_coefficient",
    "bonferroni_significance",
    "expected_abnormal_cubes",
]


def normal_tail_probability(coefficient: float) -> float:
    """Lower-tail probability ``P(Z <= coefficient)`` for standard normal Z.

    A sparsity coefficient of −3 maps to ≈ 0.00135, i.e. the paper's
    "99.9% level of significance" that the cube is abnormally sparse.
    """
    coefficient = check_in_range(coefficient, "coefficient")
    return 0.5 * math.erfc(-coefficient / math.sqrt(2.0))


def binomial_tail_probability(
    count: int,
    n_points: int,
    n_ranges: int,
    dimensionality: int,
) -> float:
    """Exact ``P(X <= count)`` for ``X ~ Binomial(N, f^k)``.

    This is the exact analogue of the normal approximation that defines
    the sparsity coefficient; useful to sanity-check significance when
    the expected count ``N·f^k`` is small.
    """
    count = check_non_negative_int(count, "count")
    n_points = check_positive_int(n_points, "n_points")
    n_ranges = check_positive_int(n_ranges, "n_ranges", minimum=2)
    dimensionality = check_positive_int(dimensionality, "dimensionality")
    if count > n_points:
        raise ValidationError(f"count ({count}) cannot exceed n_points ({n_points})")
    p = (1.0 / n_ranges) ** dimensionality
    return float(stats.binom.cdf(count, n_points, p))


def expected_abnormal_cubes(n_cubes: int, threshold: float) -> float:
    """Expected cubes passing the threshold *by chance* under the null.

    The searchers evaluate up to ``C(d, k)·φ^k`` cubes (see
    :func:`repro.search.brute_force.search_space_size`); even a −3
    threshold (tail mass ≈ 0.00135) lets tens of thousands of cubes
    through at the paper's musk scale.  This helper quantifies that
    multiple-testing burden so users can judge how exceptional a mined
    set really is.
    """
    n_cubes = check_positive_int(n_cubes, "n_cubes")
    threshold = check_in_range(threshold, "threshold")
    return n_cubes * normal_tail_probability(threshold)


def bonferroni_significance(coefficient: float, n_cubes: int) -> float:
    """Family-wise significance of a coefficient over *n_cubes* tests.

    Bonferroni-corrects :func:`significance_of_coefficient`: the
    confidence that a cube this sparse is abnormal even after
    accounting for the size of the search space it was selected from.
    Returns 0.0 once the corrected tail probability saturates at 1 —
    i.e. a cube this sparse is *expected* somewhere in a search space
    this large.
    """
    coefficient = check_in_range(coefficient, "coefficient")
    n_cubes = check_positive_int(n_cubes, "n_cubes")
    if coefficient >= 0.0:
        return 0.0
    corrected_tail = min(1.0, normal_tail_probability(coefficient) * n_cubes)
    return 1.0 - corrected_tail


def significance_of_coefficient(coefficient: float) -> float:
    """Significance level (as confidence) that a cube is abnormally sparse.

    For a *negative* coefficient ``s`` this is ``1 − P(Z <= s)``
    interpreted the paper's way: the confidence that the cube contains
    fewer points than expected.  A coefficient of −3 gives ≈ 0.9987
    ("99.9% level of significance").  Non-negative coefficients return
    0.0 — the cube is not sparse at all.
    """
    coefficient = check_in_range(coefficient, "coefficient")
    if coefficient >= 0.0:
        return 0.0
    return 1.0 - normal_tail_probability(coefficient)
