"""Typed run events and the pluggable sinks they flow into.

PRs 1-3 grew three kinds of run telemetry — counter throughput, backend
fault counters, checkpoint/interruption bookkeeping — and each searcher
hand-assembled them into ``result.stats`` keys.  This module replaces
that with a small event bus: searchers *emit* typed :class:`Event`
records at their safe boundaries, and pluggable :class:`EventSink`
implementations decide what to do with them —

* :class:`NullSink` drops everything (the default, zero overhead),
* :class:`InMemoryEventSink` records them for tests and notebooks,
* :class:`JsonlTraceSink` streams one JSON line per event to a trace
  file (CLI ``--trace-file``),
* :class:`CompositeSink` fans one stream out to several sinks,
* :class:`~repro.engine.stats.StatsAssemblySink` reconstructs the
  backward-compatible ``result.stats`` dictionary.

The event vocabulary is deliberately small and closed by default
(:data:`EVENT_TYPES`); plugins can widen it with
:func:`register_event_type` before emitting their own types.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping
from typing import IO, Any

from ..exceptions import ValidationError

__all__ = [
    "EVENT_TYPES",
    "register_event_type",
    "Event",
    "emit_event",
    "EventSink",
    "NullSink",
    "InMemoryEventSink",
    "JsonlTraceSink",
    "CompositeSink",
]

#: The built-in event vocabulary.  ``run_started`` / ``engine_finished``
#: bracket every engine run; the boundary events in between depend on
#: the engine (GA generations, brute-force levels) and on the counting
#: backend (``chunk_retry`` comes from the fault-tolerant dispatcher;
#: ``shard_counted`` from the out-of-core sharded counter, one per
#: shard counted or resumed).  ``degradation_applied`` and
#: ``fault_recovered`` come from the resilience layer
#: (:mod:`repro.resilience`): one per downgrade-chain step taken and
#: one per injected-or-real fault the run survived.  The ``model_*``
#: family comes from the incremental model layer (:mod:`repro.model`):
#: ``model_updated`` on every absorbed update/merge (and hot reload),
#: ``rebin_triggered`` when the grid is recut from the sketch,
#: ``grid_drift_detected`` when post-fit occupancy drifts past the
#: configured divergence threshold, and ``score_request`` once per
#: served scoring request (CLI ``repro score``).
EVENT_TYPES: set[str] = {
    "run_started",
    "generation_end",
    "level_end",
    "chunk_retry",
    "shard_counted",
    "checkpoint_written",
    "engine_finished",
    "degradation_applied",
    "fault_recovered",
    "model_updated",
    "rebin_triggered",
    "grid_drift_detected",
    "score_request",
}


def register_event_type(name: str) -> str:
    """Widen the event vocabulary (for plugin engines).  Idempotent."""
    if not name or not isinstance(name, str):
        raise ValidationError(f"event type must be a non-empty string, got {name!r}")
    EVENT_TYPES.add(name)
    return name


@dataclass(frozen=True)
class Event:
    """One structured run event.

    Attributes
    ----------
    type:
        One of :data:`EVENT_TYPES`.
    payload:
        JSON-compatible details (engine name, boundary index, counters).
    timestamp:
        Wall-clock seconds at emission (``time.time()``).  Only carried
        for tracing — nothing deterministic may depend on it.
    """

    type: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    timestamp: float = field(default_factory=time.time)


def emit_event(sink: "EventSink | None", type: str, **payload: Any) -> None:
    """Build an :class:`Event` and hand it to *sink* (no-op when None).

    This is the one place events are constructed, so the vocabulary
    check happens exactly once per emission.
    """
    if sink is None:
        return
    if type not in EVENT_TYPES:
        raise ValidationError(
            f"unknown event type {type!r}; register_event_type() first "
            f"(known: {sorted(EVENT_TYPES)})"
        )
    sink.emit(Event(type=type, payload=payload))


class EventSink:
    """Where emitted events go.  Subclass and override :meth:`emit`.

    Sinks are context managers so callers can scope their lifetime
    (``with JsonlTraceSink(path) as sink: ...``); :meth:`close` is
    always safe to call more than once.
    """

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (files, handles).  Idempotent."""

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class NullSink(EventSink):
    """Drops every event — the default when nothing is listening."""

    def emit(self, event: Event) -> None:
        pass


class InMemoryEventSink(EventSink):
    """Records every event in order; the test/notebook sink."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def of_type(self, type: str) -> list[Event]:
        """All recorded events of one type, in emission order."""
        return [event for event in self.events if event.type == type]

    def types(self) -> list[str]:
        """The distinct event types seen, in first-emission order."""
        seen: list[str] = []
        for event in self.events:
            if event.type not in seen:
                seen.append(event.type)
        return seen

    def __len__(self) -> int:
        return len(self.events)


class JsonlTraceSink(EventSink):
    """Streams one JSON object per event to a trace file.

    Lines are flushed as they are written, so a killed run leaves a
    complete prefix of the event stream behind — the trace is the
    flight recorder of a long search.  Payload values that are not
    JSON-native are stringified rather than dropped.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file: IO[str] | None = None
        self._seq = 0
        self._lock = threading.Lock()

    def emit(self, event: Event) -> None:
        record = {
            "seq": self._seq,
            "ts": event.timestamp,
            "type": event.type,
            **dict(event.payload),
        }
        line = json.dumps(record, default=str)
        with self._lock:
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                # The trace is an append-only flight recorder flushed
                # per line; a killed run must leave the prefix behind,
                # which atomic replace-on-close would throw away.
                self._file = self.path.open("w", encoding="utf-8")  # repro-lint: disable=RPL003
            self._file.write(line + "\n")
            self._file.flush()
            self._seq += 1

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class CompositeSink(EventSink):
    """Fans one event stream out to several sinks (None entries skipped)."""

    def __init__(self, *sinks: EventSink | None) -> None:
        self.sinks: tuple[EventSink, ...] = tuple(
            sink for sink in sinks if sink is not None
        )

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
