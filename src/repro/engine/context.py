"""RunContext: the cross-cutting run state injected into every engine.

PRs 1-3 threaded the same handful of objects — cube counter, cancel
token, checkpointer, wall-clock budget, RNG — through four searcher
constructors separately.  A :class:`RunContext` bundles them once:
:class:`~repro.run.controller.RunController` builds it, the detector
passes it to whichever engine the registry resolves, and the engine
reads what it needs.  Fields left ``None`` fall back to the engine's
own constructor arguments, so direct construction of a searcher keeps
working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .events import EventSink, NullSink, emit_event

__all__ = ["RunContext"]


@dataclass
class RunContext:
    """Everything an engine run shares with its surroundings.

    Attributes
    ----------
    counter:
        The cube counting engine (:class:`~repro.grid.counter.CubeCounter`)
        the run counts through.  Engines constructed with their own
        counter may leave this None.
    cancel_token:
        Cooperative :class:`~repro.run.cancel.CancelToken`; polled at
        safe boundaries.
    checkpointer:
        :class:`~repro.run.checkpoint.SearchCheckpointer` for crash-safe
        boundary snapshots (None disables checkpointing).
    max_seconds:
        Remaining wall-clock budget for this run.  Engines take the
        minimum of this and their own configured budget.
    rng:
        A seeded ``numpy.random.Generator``.  When None, engines seed
        their own from their ``random_state`` argument — the
        bit-identical legacy path.
    sink:
        The :class:`~repro.engine.events.EventSink` boundary events are
        emitted to.
    resume_from:
        ``None`` (fresh run), ``True`` (load the checkpointer's latest
        snapshot), or an explicit state mapping.
    """

    counter: Any = None
    cancel_token: Any = None
    checkpointer: Any = None
    max_seconds: float | None = None
    rng: Any = None
    sink: EventSink = field(default_factory=NullSink)
    resume_from: Any = None

    def emit(self, type: str, **payload: Any) -> None:
        """Emit one typed event to the context's sink."""
        emit_event(self.sink, type, **payload)

    def merged_budget(self, engine_max_seconds: float | None) -> float | None:
        """The effective wall-clock budget: min of context and engine."""
        if self.max_seconds is None:
            return engine_max_seconds
        if engine_max_seconds is None:
            return self.max_seconds
        return min(self.max_seconds, engine_max_seconds)

    def resolve_token(self, engine_token: Any) -> Any:
        """Context token if set, else the engine's own."""
        return self.cancel_token if self.cancel_token is not None else engine_token

    def resolve_checkpointer(self, engine_checkpointer: Any) -> Any:
        """Context checkpointer if set, else the engine's own."""
        if self.checkpointer is not None:
            return self.checkpointer
        return engine_checkpointer
