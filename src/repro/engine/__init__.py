"""The engine layer: search protocol, run context, events, registry.

This package defines *how a search runs* independently of *what it
searches*:

* :mod:`repro.engine.protocol` — the ``prepare/step/finalize``
  :class:`SearchEngine` protocol and the :class:`GeneratorEngine` base
  every built-in searcher rides on;
* :mod:`repro.engine.context` — :class:`RunContext`, the one bundle of
  counter, cancel token, checkpointer, budget, RNG and event sink that
  gets injected into a run;
* :mod:`repro.engine.events` — typed :class:`Event` records and the
  pluggable :class:`EventSink` family;
* :mod:`repro.engine.registry` — the name → factory registry the
  detector, multi-k sweep and CLI resolve engines through;
* :mod:`repro.engine.stats` — the sink that folds the event stream back
  into the backward-compatible ``result.stats`` dictionary.

See ``docs/architecture.md`` for the layering diagram and the
"add your own searcher" recipe.
"""

from .context import RunContext
from .events import (
    EVENT_TYPES,
    CompositeSink,
    Event,
    EventSink,
    InMemoryEventSink,
    JsonlTraceSink,
    NullSink,
    emit_event,
    register_event_type,
)
from .protocol import GeneratorEngine, SearchEngine
from .registry import (
    EngineSpec,
    create_engine,
    engine_names,
    engine_spec,
    register_engine,
    unregister_engine,
)
from .stats import StatsAssemblySink, merge_backend_health

__all__ = [
    "RunContext",
    "EVENT_TYPES",
    "register_event_type",
    "Event",
    "emit_event",
    "EventSink",
    "NullSink",
    "InMemoryEventSink",
    "JsonlTraceSink",
    "CompositeSink",
    "StatsAssemblySink",
    "merge_backend_health",
    "SearchEngine",
    "GeneratorEngine",
    "EngineSpec",
    "register_engine",
    "unregister_engine",
    "engine_names",
    "engine_spec",
    "create_engine",
]
