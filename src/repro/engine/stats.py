"""Stats assembly: the event stream folded back into ``result.stats``.

``result.stats`` predates the event bus and plenty of downstream code
(persistence, the CLI tables, the experiment scripts) reads its keys
directly.  :class:`StatsAssemblySink` keeps that contract: the detector
always routes engine events through one, then asks it to assemble the
classic stats dictionary — same keys as before, plus an additive
``events`` counter summary so traces and stats agree.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from typing import TYPE_CHECKING, Any

from .events import Event, EventSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..search.outcome import SearchOutcome

__all__ = ["StatsAssemblySink", "merge_backend_health"]

#: Zero template for backend-health aggregation (bool fields OR, int
#: fields sum) — the shape of ``CubeCounter.backend_health()``.
_HEALTH_TOTALS = {
    "retries": 0,
    "timeouts": 0,
    "rebuilds": 0,
    "fallbacks": 0,
    "chunks_parallel": 0,
    "chunks_serial": 0,
    "pool_degraded": False,
    "pool_unavailable": False,
}


def merge_backend_health(healths: Iterable[Mapping]) -> dict:
    """Sum fault-tolerance counters across runs (booleans OR together).

    Used by the multi-k sweep and by anything ensembling several
    detections: one aggregate record instead of |K| separate ones.
    """
    totals = dict(_HEALTH_TOTALS)
    for health in healths:
        for key, value in totals.items():
            if isinstance(value, bool):
                totals[key] = value or bool(health.get(key))
            else:
                totals[key] = value + int(health.get(key, 0))
    return totals


class StatsAssemblySink(EventSink):
    """Folds the event stream into the legacy ``result.stats`` dict.

    The sink only *counts* events (plus remembering the final
    ``engine_finished`` payload); the authoritative values still come
    from the :class:`~repro.search.outcome.SearchOutcome` and the
    counter, so stats stay correct even for engines that emit nothing.
    """

    def __init__(self) -> None:
        self.event_counts: dict[str, int] = {}
        self.checkpoints_written = 0
        self.chunk_retries = 0
        self.finished_payload: dict | None = None

    def emit(self, event: Event) -> None:
        self.event_counts[event.type] = self.event_counts.get(event.type, 0) + 1
        if event.type == "checkpoint_written":
            self.checkpoints_written += 1
        elif event.type == "chunk_retry":
            self.chunk_retries += 1
        elif event.type == "engine_finished":
            self.finished_payload = dict(event.payload)

    # ------------------------------------------------------------------
    def assemble(
        self,
        outcome: "SearchOutcome",
        counter: Any,
        elapsed: float,
        resilience: Any | None = None,
    ) -> dict:
        """The backward-compatible stats dict for a finished detection.

        Reproduces exactly the keys ``detector._postprocess`` set before
        the event bus existed — ``total_elapsed_seconds``, ``completed``,
        ``stopped_reason``, ``counter_stats``, ``backend_health`` on top
        of the outcome's own stats — and adds the ``events`` counters
        plus, when a :class:`~repro.resilience.ResilienceReport` is
        passed, the ``resilience`` record of retries/degradations.
        """
        stats = dict(outcome.stats)
        stats["total_elapsed_seconds"] = elapsed
        stats["completed"] = float(outcome.completed)
        stats["stopped_reason"] = outcome.stopped_reason
        stats["counter_stats"] = counter.cache_stats()
        stats["backend_health"] = counter.backend_health()
        stats["events"] = dict(self.event_counts)
        if resilience is not None:
            stats["resilience"] = resilience.as_dict()
        return stats
