"""The SearchEngine protocol: ``prepare(ctx) / step(ctx) / finalize(ctx)``.

Every projection searcher — evolutionary, brute force, and the local /
random ablation searchers — implements this three-phase protocol:

``prepare(ctx)``
    Bind the :class:`~repro.engine.context.RunContext`, build (or
    restore from checkpoint) the internal search state, and emit
    ``run_started``.  No search work happens yet.
``step(ctx)``
    Advance the search by exactly one *safe boundary* (a GA generation,
    a brute-force level, a local-search move/chunk) and return True, or
    return False once the search has nothing left to do.  Cancellation,
    deadlines and checkpoints all happen at these boundaries, so an
    external driver stepping the engine gets the same interruption
    semantics as :meth:`SearchEngine.run`.
``finalize(ctx)``
    Assemble the :class:`~repro.search.outcome.SearchOutcome` from the
    current state and emit ``engine_finished``.  Calling it before the
    steps are exhausted is allowed — the run is wound down as if
    cancelled at the last completed boundary.

:class:`GeneratorEngine` is the shared implementation: engines write
their search loop once as a ``_iterate(ctx)`` generator that yields at
every safe boundary, and the base class maps the protocol onto it.
The generator form keeps each loop body identical to its pre-protocol
shape, which is what the differential golden tests lock down.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

from ..exceptions import SearchError
from .context import RunContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..search.outcome import SearchOutcome

__all__ = ["SearchEngine", "GeneratorEngine"]


class SearchEngine(ABC):
    """Abstract three-phase search engine (see module docstring)."""

    @abstractmethod
    def prepare(self, context: RunContext) -> None:
        """Bind *context* and build/restore the search state."""

    @abstractmethod
    def step(self, context: RunContext) -> bool:
        """Advance one safe boundary; False once the search is done."""

    @abstractmethod
    def finalize(self, context: RunContext) -> "SearchOutcome":
        """Assemble the outcome from the current state."""

    # ------------------------------------------------------------------
    def run(
        self, *, resume_from: object = None, context: RunContext | None = None
    ) -> "SearchOutcome":
        """Drive the full protocol: prepare, step until done, finalize.

        ``resume_from`` is the legacy keyword the pre-protocol searchers
        took; it is folded into the context so both call styles work.
        """
        context = self._resolve_context(context, resume_from)
        self.prepare(context)
        while self.step(context):
            pass
        return self.finalize(context)

    def _resolve_context(
        self, context: RunContext | None, resume_from: object
    ) -> RunContext:
        """Default context from the engine's own constructor arguments."""
        if context is None:
            context = RunContext(
                cancel_token=getattr(self, "cancel_token", None),
                checkpointer=getattr(self, "checkpointer", None),
            )
        if resume_from is not None:
            context.resume_from = resume_from
        return context


class GeneratorEngine(SearchEngine):
    """Protocol base mapping prepare/step/finalize onto a generator.

    Subclasses implement:

    * ``_iterate(context)`` — a generator that runs the search, yielding
      once right after setup (the prepare boundary) and once per safe
      boundary thereafter;
    * ``_build_outcome(context)`` — assemble the
      :class:`~repro.search.outcome.SearchOutcome` from instance state;
    * optionally ``_mark_abandoned(context)`` — adjust state when
      :meth:`finalize` is called before the generator is exhausted.
    """

    _iterator: Iterator[None] | None = None

    # ------------------------------------------------------------------
    def prepare(self, context: RunContext) -> None:
        self._iterator = self._iterate(context)
        # Prime the generator: setup runs now, stopping at the initial
        # yield, so finalize() always has state to assemble from.
        try:
            next(self._iterator)
        except StopIteration:  # pragma: no cover - defensive
            self._iterator = None

    def step(self, context: RunContext) -> bool:
        if self._iterator is None:
            return False
        try:
            next(self._iterator)
        except StopIteration:
            self._iterator = None
            return False
        return True

    def finalize(self, context: RunContext) -> "SearchOutcome":
        if self._iterator is not None:
            # Abandoned mid-run: close the generator so its try/finally
            # blocks (counter token/sink restoration) run immediately,
            # then report the run as cancelled at the last boundary.
            self._iterator.close()
            self._iterator = None
            self._mark_abandoned(context)
        outcome = self._build_outcome(context)
        context.emit(
            "engine_finished",
            algorithm=str(outcome.stats.get("algorithm", type(self).__name__)),
            stopped_reason=outcome.stopped_reason,
            completed=outcome.completed,
            n_projections=len(outcome.projections),
            best_coefficient=outcome.best_coefficient,
            evaluations=int(outcome.stats.get("evaluations", 0)),
            counter_stats=self._counter_stats_snapshot(context),
            backend_health=self._backend_health_snapshot(context),
        )
        return outcome

    # ------------------------------------------------------------------
    def _iterate(
        self, context: RunContext
    ) -> Iterator[None]:  # pragma: no cover - interface
        raise NotImplementedError

    def _build_outcome(
        self, context: RunContext
    ) -> "SearchOutcome":  # pragma: no cover
        raise NotImplementedError

    def _mark_abandoned(self, context: RunContext) -> None:
        """Hook for subclasses; default latches a cancelled stop reason."""
        run = getattr(self, "_run", None)
        if isinstance(run, dict):
            run["stopped_reason"] = "cancelled"

    def _require_run_state(self) -> dict:
        """The per-run state bundle built by ``_iterate``'s setup."""
        run = getattr(self, "_run", None)
        if not isinstance(run, dict):
            raise SearchError("finalize()/step() called before prepare()")
        return run

    # ------------------------------------------------------------------
    def _resolve_counter(self, context: RunContext) -> Any:
        """The counter this run counts through (context wins)."""
        counter = context.counter if context.counter is not None else getattr(
            self, "counter", None
        )
        if counter is None:
            raise SearchError(
                f"{type(self).__name__} has no counter: pass one at "
                "construction or on the RunContext"
            )
        return counter

    def _counter_stats_snapshot(self, context: RunContext) -> dict:
        counter = context.counter or getattr(self, "counter", None)
        return counter.cache_stats() if counter is not None else {}

    def _backend_health_snapshot(self, context: RunContext) -> dict:
        counter = context.counter or getattr(self, "counter", None)
        return counter.backend_health() if counter is not None else {}
