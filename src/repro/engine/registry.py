"""The engine registry: names → :class:`SearchEngine` factories.

The detector, the multi-k sweep and the CLI all resolve their search
method through this registry, so a new strategy is a drop-in plugin::

    from repro.engine import register_engine

    @register_engine("tabu", description="tabu search over the GA moves")
    def _tabu(counter, dimensionality, n_projections, **kwargs):
        return TabuSearch(counter, dimensionality, n_projections, **kwargs)

    SubspaceOutlierDetector(method="tabu").detect(data)

Factories receive ``(counter, dimensionality, n_projections,
**kwargs)``.  Because the detector passes one superset of keyword
arguments for all engines, each built-in spec declares which keywords
it ``accepts`` and the rest are filtered out; plugin factories that
declare nothing receive only the universally-applicable keywords they
name in their signature (or everything, if they take ``**kwargs``).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from ..exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..search.brute_force import BruteForceSearch
    from ..search.evolutionary.engine import EvolutionarySearch
    from ..search.local import (
        HillClimbingSearch,
        RandomSearch,
        SimulatedAnnealingSearch,
    )
    from .protocol import SearchEngine

__all__ = [
    "EngineSpec",
    "register_engine",
    "unregister_engine",
    "engine_names",
    "engine_spec",
    "create_engine",
]


@dataclass(frozen=True)
class EngineSpec:
    """One registry entry.

    Attributes
    ----------
    name:
        Registry key (the detector's ``method`` / CLI ``--search`` value).
    factory:
        ``(counter, dimensionality, n_projections, **kwargs) -> SearchEngine``.
    accepts:
        Keyword arguments the factory understands; ``None`` means
        "derive from the factory signature".
    supports_checkpoint:
        Whether the engine can persist/restore boundary checkpoints —
        the detector only creates a checkpoint stream for engines that
        can actually fill it.
    description:
        One line for ``--help`` and docs.
    """

    name: str
    factory: Callable
    accepts: tuple[str, ...] | None = None
    supports_checkpoint: bool = False
    description: str = ""


_REGISTRY: dict[str, EngineSpec] = {}


def register_engine(
    name: str,
    factory: Callable | None = None,
    *,
    accepts: tuple[str, ...] | None = None,
    supports_checkpoint: bool = False,
    description: str = "",
    replace: bool = False,
) -> Callable:
    """Register an engine factory (usable directly or as a decorator)."""
    if not name or not isinstance(name, str):
        raise ValidationError(f"engine name must be a non-empty string, got {name!r}")

    def _register(factory: Callable) -> Callable:
        if name in _REGISTRY and not replace:
            raise ValidationError(
                f"engine {name!r} is already registered; pass replace=True "
                "to override it"
            )
        _REGISTRY[name] = EngineSpec(
            name=name,
            factory=factory,
            accepts=tuple(accepts) if accepts is not None else None,
            supports_checkpoint=supports_checkpoint,
            description=description,
        )
        return factory

    if factory is None:
        return _register
    return _register(factory)


def unregister_engine(name: str) -> None:
    """Remove a registered engine (plugin teardown in tests)."""
    _REGISTRY.pop(name, None)


def engine_names() -> tuple[str, ...]:
    """All registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def engine_spec(name: str) -> EngineSpec:
    """The :class:`EngineSpec` for *name* (ValidationError if unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown search engine {name!r}; registered engines: "
            f"{', '.join(engine_names()) or '(none)'}"
        ) from None


def create_engine(
    name: str,
    counter: Any,
    dimensionality: int,
    n_projections: int | None = 20,
    **kwargs: Any,
) -> "SearchEngine":
    """Construct the engine registered under *name*.

    Keyword arguments not applicable to the chosen engine are dropped,
    so callers (detector, CLI) can pass one superset of options for
    every engine.
    """
    spec = engine_spec(name)
    accepts = spec.accepts
    if accepts is None:
        parameters = inspect.signature(spec.factory).parameters
        if any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        ):
            accepts = tuple(kwargs)
        else:
            accepts = tuple(
                key for key in kwargs if key in parameters
            )
    filtered = {key: value for key, value in kwargs.items() if key in accepts}
    return spec.factory(counter, dimensionality, n_projections, **filtered)


# ----------------------------------------------------------------------
# Built-in engines.  Factories import lazily: the search modules import
# repro.engine.protocol for their base class, so importing them at
# module top here would be circular.

_COMMON = ("require_nonempty", "threshold", "cancel_token")


def _evolutionary(
    counter: Any, dimensionality: int, n_projections: int | None, **kwargs: Any
) -> "EvolutionarySearch":
    from ..search.evolutionary.engine import EvolutionarySearch

    return EvolutionarySearch(counter, dimensionality, n_projections, **kwargs)


def _brute_force(
    counter: Any, dimensionality: int, n_projections: int | None, **kwargs: Any
) -> "BruteForceSearch":
    from ..search.brute_force import BruteForceSearch

    return BruteForceSearch(counter, dimensionality, n_projections, **kwargs)


def _random(
    counter: Any, dimensionality: int, n_projections: int | None, **kwargs: Any
) -> "RandomSearch":
    from ..search.local import RandomSearch

    return RandomSearch(counter, dimensionality, n_projections, **kwargs)


def _hill_climbing(
    counter: Any, dimensionality: int, n_projections: int | None, **kwargs: Any
) -> "HillClimbingSearch":
    from ..search.local import HillClimbingSearch

    return HillClimbingSearch(counter, dimensionality, n_projections, **kwargs)


def _simulated_annealing(
    counter: Any, dimensionality: int, n_projections: int | None, **kwargs: Any
) -> "SimulatedAnnealingSearch":
    from ..search.local import SimulatedAnnealingSearch

    return SimulatedAnnealingSearch(
        counter, dimensionality, n_projections, **kwargs
    )


register_engine(
    "evolutionary",
    _evolutionary,
    accepts=_COMMON
    + ("config", "crossover", "selection", "random_state", "checkpointer"),
    supports_checkpoint=True,
    description="the paper's GA with optimized crossover (Figures 3-6)",
)
register_engine(
    "brute_force",
    _brute_force,
    accepts=_COMMON
    + ("max_seconds", "max_evaluations", "strategy", "checkpointer"),
    supports_checkpoint=True,
    description="exhaustive bottom-up cube enumeration (Figure 2)",
)
register_engine(
    "random",
    _random,
    accepts=_COMMON + ("max_evaluations", "random_state"),
    description="uniformly random cubes (the no-structure control, §2.1)",
)
register_engine(
    "hill_climbing",
    _hill_climbing,
    accepts=_COMMON + ("max_evaluations", "random_state", "patience"),
    description="first-improvement hill climbing with restarts (§2.1)",
)
register_engine(
    "simulated_annealing",
    _simulated_annealing,
    accepts=_COMMON
    + ("max_evaluations", "random_state", "initial_temperature", "cooling"),
    description="Metropolis annealing over the GA move set (§2.1)",
)
