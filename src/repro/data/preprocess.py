"""Preprocessing utilities mirroring the paper's data cleaning (§3).

The paper reports that "the data sets were cleaned in order to take
care of categorical and missing attributes"; these helpers provide the
equivalent plumbing — plus controlled *injection* of missingness, used
by the tests to exercise the §1.2 claim that projections can be mined
from incompletely observed records.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_matrix, check_probability, check_rng
from ..exceptions import DatasetError

__all__ = [
    "standardize",
    "inject_missing_values",
    "drop_low_variance_columns",
    "mean_impute",
]


def standardize(data) -> np.ndarray:
    """Zero-mean, unit-variance scaling per column (NaN-aware).

    Constant columns scale to all-zeros rather than dividing by zero.
    Standardization does not change equi-depth grid assignments (they
    are rank-based) but matters for the distance-based baselines.
    """
    array = check_matrix(data, "data").copy()
    missing = np.isnan(array)
    counts = np.maximum((~missing).sum(axis=0), 1)
    filled = np.where(missing, 0.0, array)
    mean = filled.sum(axis=0) / counts
    variance = (np.where(missing, 0.0, (array - mean)) ** 2).sum(axis=0) / counts
    std = np.sqrt(variance)
    std[std == 0] = 1.0
    return (array - mean) / std


def inject_missing_values(data, fraction: float, random_state=None) -> np.ndarray:
    """Return a copy with *fraction* of cells replaced by NaN.

    Cells are chosen uniformly at random without replacement; already
    missing cells count toward the target so the output's missingness
    is at least *fraction*.
    """
    array = check_matrix(data, "data").copy()
    fraction = check_probability(fraction, "fraction")
    rng = check_rng(random_state)
    n_cells = array.size
    target = int(round(fraction * n_cells))
    if target == 0:
        return array
    flat = rng.choice(n_cells, size=target, replace=False)
    array.reshape(-1)[flat] = np.nan
    return array


def drop_low_variance_columns(data, min_unique: int = 3) -> tuple[np.ndarray, list[int]]:
    """Drop columns with fewer than *min_unique* distinct observed values.

    This is the paper's housing-style cleanup (it "picked 13 of these
    14 attributes, eliminating the single binary attribute").  Returns
    the reduced matrix and the indices of the *kept* columns.
    """
    array = check_matrix(data, "data")
    if min_unique < 1:
        raise DatasetError(f"min_unique must be >= 1, got {min_unique}")
    kept = []
    for j in range(array.shape[1]):
        column = array[:, j]
        observed = column[~np.isnan(column)]
        if np.unique(observed).size >= min_unique:
            kept.append(j)
    if not kept:
        raise DatasetError("all columns were dropped; lower min_unique")
    return array[:, kept], kept


def mean_impute(data) -> np.ndarray:
    """Replace NaN with the column mean (for the full-dimensional baselines).

    The subspace method needs no imputation — its counting simply skips
    missing coordinates — but the distance baselines require complete
    rows, and mean imputation is the neutral default.  An all-NaN
    column imputes to zero.
    """
    array = check_matrix(data, "data").copy()
    missing = np.isnan(array)
    counts = (~missing).sum(axis=0)
    sums = np.where(missing, 0.0, array).sum(axis=0)
    means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    array[missing] = np.broadcast_to(means, array.shape)[missing]
    return array
