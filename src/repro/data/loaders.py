"""The :class:`Dataset` container and plain-text loading.

A :class:`Dataset` bundles the value matrix with everything the
experiments need around it: feature names, optional class labels (the
arrhythmia protocol), and — for synthetic data — the indices of planted
anomalies so recall can be measured exactly.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Mapping, Sequence

import numpy as np

from .._validation import check_matrix
from ..exceptions import DatasetError

__all__ = ["Dataset", "load_csv"]


@dataclass(frozen=True)
class Dataset:
    """A named dataset ready for outlier detection.

    Attributes
    ----------
    name:
        Identifier used by the registry and reports.
    values:
        ``(N, d)`` float matrix; NaN = missing.
    feature_names:
        d attribute names.
    labels:
        Optional integer class codes, length N (e.g. arrhythmia
        diagnosis classes).
    planted_outliers:
        Optional indices of synthetic anomalies (ground truth for
        recall metrics); ascending.
    metadata:
        Free-form provenance (generator parameters, paper N/d, ...).
    """

    name: str
    values: np.ndarray
    feature_names: tuple[str, ...]
    labels: np.ndarray | None = None
    planted_outliers: np.ndarray | None = None
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        values = check_matrix(self.values, "values")
        names = tuple(str(n) for n in self.feature_names)
        if len(names) != values.shape[1]:
            raise DatasetError(
                f"{self.name}: {len(names)} feature names for "
                f"{values.shape[1]} columns"
            )
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "feature_names", names)
        if self.labels is not None:
            labels = np.asarray(self.labels)
            if labels.shape != (values.shape[0],):
                raise DatasetError(
                    f"{self.name}: labels shape {labels.shape} does not "
                    f"match {values.shape[0]} rows"
                )
            object.__setattr__(self, "labels", labels)
        if self.planted_outliers is not None:
            planted = np.asarray(self.planted_outliers, dtype=np.intp)
            if planted.size and (
                planted.min() < 0 or planted.max() >= values.shape[0]
            ):
                raise DatasetError(f"{self.name}: planted outlier index out of range")
            object.__setattr__(self, "planted_outliers", np.sort(planted))

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of records N."""
        return self.values.shape[0]

    @property
    def n_dims(self) -> int:
        """Dimensionality d."""
        return self.values.shape[1]

    def label_fractions(self) -> dict[int, float]:
        """Class code → fraction of records (requires labels)."""
        if self.labels is None:
            raise DatasetError(f"{self.name} has no labels")
        codes, counts = np.unique(self.labels, return_counts=True)
        return {int(c): float(n) / self.n_points for c, n in zip(codes, counts, strict=True)}

    def rare_labels(self, threshold: float = 0.05) -> set[int]:
        """Class codes occurring in less than *threshold* of records.

        This is the paper's "rare classes (< 5%)" notion from Table 2.
        """
        return {
            code
            for code, fraction in self.label_fractions().items()
            if fraction < threshold
        }

    def summary(self) -> str:
        """One-line description for reports."""
        extra = ""
        if self.labels is not None:
            extra += f", {len(set(self.labels.tolist()))} classes"
        if self.planted_outliers is not None:
            extra += f", {self.planted_outliers.size} planted outliers"
        return f"{self.name}: N={self.n_points}, d={self.n_dims}{extra}"


def load_csv(
    source,
    *,
    name: str | None = None,
    label_column: str | int | None = None,
    missing_tokens: Sequence[str] = ("", "?", "NA", "NaN", "nan", "null"),
    delimiter: str = ",",
    categorical_mode: str = "nan",
) -> Dataset:
    """Load a headered CSV file (or file-like / text) into a Dataset.

    *missing_tokens* become NaN.  A label column (by name or position)
    is split out as integer class codes; non-integer labels are
    factorized in first-appearance order.

    Categorical (non-numeric) feature values are handled per
    *categorical_mode* — the paper notes its datasets "were cleaned in
    order to take care of categorical and missing attributes":

    * ``"nan"`` (default) — treat every non-numeric entry as missing;
    * ``"ordinal"`` — columns where most entries are non-numeric are
      factorized to integer codes in first-appearance order (stray
      non-numeric values in otherwise numeric columns still become
      NaN).  Equi-depth ranges over such codes group categories of
      similar frequency rank.
    """
    if categorical_mode not in ("nan", "ordinal"):
        raise DatasetError(
            f"categorical_mode must be 'nan' or 'ordinal', got "
            f"{categorical_mode!r}"
        )
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        path = Path(source)
        if not path.exists():
            raise DatasetError(f"CSV file not found: {path}")
        text = path.read_text()
        inferred_name = path.stem
    elif isinstance(source, str):
        text = source
        inferred_name = "inline"
    else:
        text = source.read()
        inferred_name = getattr(source, "name", "stream")

    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = [row for row in reader if row]
    if len(rows) < 2:
        raise DatasetError("CSV must have a header and at least one data row")
    header = [h.strip() for h in rows[0]]
    body = rows[1:]

    label_index: int | None = None
    if label_column is not None:
        if isinstance(label_column, str):
            try:
                label_index = header.index(label_column)
            except ValueError:
                raise DatasetError(
                    f"label column {label_column!r} not in header {header}"
                ) from None
        else:
            label_index = int(label_column)
            if not 0 <= label_index < len(header):
                raise DatasetError(f"label column index {label_index} out of range")

    missing = {token.lower() for token in missing_tokens}

    def parse(token: str) -> float:
        token = token.strip()
        if token.lower() in missing:
            return float("nan")
        try:
            return float(token)
        except ValueError:
            return float("nan")

    labels: np.ndarray | None = None
    if label_index is not None:
        raw_labels = [row[label_index].strip() for row in body]
        factor: dict[str, int] = {}
        coded = []
        for token in raw_labels:
            try:
                coded.append(int(float(token)))
            except ValueError:
                coded.append(factor.setdefault(token, len(factor)))
        labels = np.asarray(coded, dtype=np.int64)

    feature_cols = [i for i in range(len(header)) if i != label_index]
    values = np.array(
        [[parse(row[i]) for i in feature_cols] for row in body], dtype=np.float64
    )

    if categorical_mode == "ordinal":
        for out_col, src_col in enumerate(feature_cols):
            column_nan = np.isnan(values[:, out_col])
            if not column_nan.mean() > 0.5:
                continue
            # Mostly non-numeric: factorize the raw tokens instead.
            factor: dict[str, int] = {}
            for row_index, row in enumerate(body):
                token = row[src_col].strip()
                if token.lower() in missing:
                    values[row_index, out_col] = float("nan")
                else:
                    values[row_index, out_col] = factor.setdefault(
                        token, len(factor)
                    )

    return Dataset(
        name=name or inferred_name,
        values=values,
        feature_names=tuple(header[i] for i in feature_cols),
        labels=labels,
        metadata={"source": "csv"},
    )
