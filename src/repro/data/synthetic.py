"""Synthetic data with planted subspace anomalies.

The paper's entire premise (Figure 1) is that real high-dimensional
data contains *structured* low-dimensional cross-sections — correlated
attribute pairs, clusters — embedded among noisy ones, and that the
interesting outliers break the structure of some cross-section while
staying unremarkable on every marginal.  The generators here produce
exactly that geometry:

* :func:`correlated_block_data` — disjoint blocks of strongly
  correlated attributes (the structured views) padded with independent
  noise attributes (the noisy views);
* :func:`plant_rare_combinations` — the "person below 20 with
  diabetes" construction (§1.4): a planted point takes a *low* marginal
  range on one attribute of a block and a *high* marginal range on a
  correlated partner.  Each coordinate is individually inside the data
  range, so full-dimensional distances barely notice, but the joint
  grid cell is nearly empty;
* :func:`figure1_views` — the 4-view example of Figure 1 with outliers
  A and B, each visible in exactly one structured view.

Everything is seeded and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_positive_int, check_rng
from ..exceptions import DatasetError, ValidationError
from .loaders import Dataset

__all__ = [
    "AnomalyPlan",
    "uniform_noise",
    "correlated_block_data",
    "plant_rare_combinations",
    "figure1_views",
]


@dataclass(frozen=True)
class AnomalyPlan:
    """Ground truth about planted anomalies.

    Attributes
    ----------
    indices:
        Row indices of the planted points, in planting order.
    subspaces:
        For each planted point (aligned with ``indices``), the tuple of
        dimensions whose joint combination was made rare.
    """

    indices: np.ndarray
    subspaces: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.intp)
        object.__setattr__(self, "indices", indices)
        object.__setattr__(
            self, "subspaces", tuple(tuple(int(d) for d in s) for s in self.subspaces)
        )

    @property
    def n_anomalies(self) -> int:
        """Number of planted points."""
        return int(self.indices.size)


def uniform_noise(n_points: int, n_dims: int, random_state=None) -> np.ndarray:
    """Uniform [0, 1) noise matrix — the fully unstructured control."""
    rng = check_rng(random_state)
    return rng.random(
        (
            check_positive_int(n_points, "n_points"),
            check_positive_int(n_dims, "n_dims"),
        )
    )


def correlated_block_data(
    n_points: int,
    n_dims: int,
    n_blocks: int,
    *,
    block_size: int = 2,
    correlation_noise: float = 0.25,
    n_clusters: int = 2,
    cluster_spread: float = 2.5,
    random_state=None,
) -> tuple[np.ndarray, tuple[tuple[int, ...], ...]]:
    """Gaussian data with correlated attribute blocks plus noise dims.

    The first ``n_blocks * block_size`` dimensions are grouped into
    blocks; within a block every attribute equals a shared latent
    variable plus small independent noise, so the block's attributes
    are strongly correlated.  Latents are drawn from an ``n_clusters``
    mixture, giving each structured cross-section visible cluster
    structure (Figure 1's views 1 and 4).  The remaining dimensions are
    independent standard normal noise (views 2 and 3).

    Returns
    -------
    (data, blocks):
        The ``(n_points, n_dims)`` matrix and the tuple of blocks, each
        a tuple of the dimension indices it spans.
    """
    n_points = check_positive_int(n_points, "n_points")
    n_dims = check_positive_int(n_dims, "n_dims")
    n_blocks = check_positive_int(n_blocks, "n_blocks", minimum=0)
    block_size = check_positive_int(block_size, "block_size", minimum=2)
    n_clusters = check_positive_int(n_clusters, "n_clusters")
    if n_blocks * block_size > n_dims:
        raise ValidationError(
            f"{n_blocks} blocks of size {block_size} do not fit in "
            f"{n_dims} dimensions"
        )
    rng = check_rng(random_state)
    data = rng.normal(size=(n_points, n_dims))
    blocks = []
    for b in range(n_blocks):
        dims = tuple(range(b * block_size, (b + 1) * block_size))
        centers = rng.normal(scale=cluster_spread, size=n_clusters)
        assignment = rng.integers(0, n_clusters, size=n_points)
        latent = centers[assignment] + rng.normal(scale=1.0, size=n_points)
        for dim in dims:
            data[:, dim] = latent + rng.normal(
                scale=correlation_noise, size=n_points
            )
        blocks.append(dims)
    return data, tuple(blocks)


def plant_rare_combinations(
    data: np.ndarray,
    blocks: tuple[tuple[int, ...], ...],
    n_anomalies: int | None = None,
    *,
    indices=None,
    low_quantile: float = 0.08,
    high_quantile: float = 0.92,
    random_state=None,
) -> AnomalyPlan:
    """Plant §1.4-style rare combinations into *data* (mutated in place).

    Each planted point is assigned a block and gets the block's first
    attribute moved to a **low** marginal quantile and its second to a
    **high** marginal quantile.  Because the block's attributes are
    strongly positively correlated, the low+high combination is almost
    unpopulated — a near-empty grid cell in the 2-dimensional
    projection — while both coordinates stay well inside the observed
    marginal ranges, leaving full-dimensional distances unremarkable.

    Points are drawn without replacement (or taken from *indices* when
    given, in which case *n_anomalies* is ignored); blocks are used
    round-robin.
    """
    if not blocks:
        raise DatasetError("plant_rare_combinations needs at least one block")
    rng = check_rng(random_state)
    if indices is not None:
        chosen = np.asarray(indices, dtype=np.intp)
        if chosen.size == 0:
            return AnomalyPlan(indices=chosen, subspaces=())
        if chosen.min() < 0 or chosen.max() >= data.shape[0]:
            raise ValidationError("planting indices out of range")
    else:
        n_anomalies = check_positive_int(n_anomalies, "n_anomalies")
        if n_anomalies > data.shape[0]:
            raise ValidationError(
                f"cannot plant {n_anomalies} anomalies in {data.shape[0]} points"
            )
        chosen = rng.choice(data.shape[0], size=n_anomalies, replace=False)
    subspaces = []
    for i, point in enumerate(chosen):
        dims = blocks[i % len(blocks)][:2]
        low_dim, high_dim = dims
        low_value = np.quantile(data[:, low_dim], low_quantile)
        high_value = np.quantile(data[:, high_dim], high_quantile)
        jitter = rng.normal(scale=0.02, size=2)
        data[point, low_dim] = low_value + jitter[0]
        data[point, high_dim] = high_value + jitter[1]
        subspaces.append(dims)
    return AnomalyPlan(indices=chosen, subspaces=tuple(subspaces))


def figure1_views(
    n_points: int = 500,
    n_noise_dims: int = 76,
    *,
    random_state=None,
) -> Dataset:
    """The Figure 1 scenario: 4 two-dimensional views + outliers A and B.

    Views 1 and 4 (dimension pairs ``(0, 1)`` and ``(2, 3)``) carry
    tight correlation structure; the remaining dimensions — including
    the pairs one might call views 2 and 3 — are independent noise.
    Outlier **A** (last-but-one row) breaks view 1's correlation,
    outlier **B** (last row) breaks view 4's; both look average in
    every other view and — because the many noise dimensions dominate
    the metric, exactly the paper's point — in full-dimensional
    distance.

    Returns a :class:`Dataset` with ``planted_outliers`` set and the
    view layout in ``metadata``.
    """
    n_points = check_positive_int(n_points, "n_points", minimum=10)
    n_noise_dims = check_positive_int(n_noise_dims, "n_noise_dims", minimum=0)
    rng = check_rng(108 if random_state is None else random_state)
    data, blocks = correlated_block_data(
        n_points,
        4 + n_noise_dims,
        n_blocks=2,
        block_size=2,
        correlation_noise=0.2,
        n_clusters=1,
        random_state=rng,
    )
    point_a = n_points - 2
    point_b = n_points - 1
    # Outlier A: low on dim 0, high on dim 1 (breaks view 1).
    data[point_a, 0] = np.quantile(data[:, 0], 0.06)
    data[point_a, 1] = np.quantile(data[:, 1], 0.94)
    # Outlier B: high on dim 2, low on dim 3 (breaks view 4).
    data[point_b, 2] = np.quantile(data[:, 2], 0.94)
    data[point_b, 3] = np.quantile(data[:, 3], 0.06)
    names = tuple(
        ["view1_x", "view1_y", "view4_x", "view4_y"]
        + [f"noise{i}" for i in range(n_noise_dims)]
    )
    return Dataset(
        name="figure1_views",
        values=data,
        feature_names=names,
        planted_outliers=np.array([point_a, point_b]),
        metadata={
            "phi": 5,
            "views": {
                "view1": (0, 1),
                "view2": (4, 5) if n_noise_dims >= 2 else None,
                "view3": (6, 7) if n_noise_dims >= 4 else None,
                "view4": (2, 3),
            },
            "outlier_A": point_a,
            "outlier_B": point_b,
            "paper_figure": "Figure 1",
        },
    )
