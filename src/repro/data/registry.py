"""Name → dataset registry used by the CLI and benchmarks."""

from __future__ import annotations

from collections.abc import Callable

from ..exceptions import DatasetError
from .loaders import Dataset
from .synthetic import figure1_views
from .uci import (
    arrhythmia,
    breast_cancer,
    housing,
    ionosphere,
    machine,
    musk,
    segmentation,
)

__all__ = ["DATASETS", "load_dataset"]

#: All built-in datasets by name.  Every entry is a zero-argument-callable
#: (seeded internally) returning a :class:`~repro.data.loaders.Dataset`.
DATASETS: dict[str, Callable[[], Dataset]] = {
    "breast_cancer": breast_cancer,
    "ionosphere": ionosphere,
    "segmentation": segmentation,
    "musk": musk,
    "machine": machine,
    "arrhythmia": arrhythmia,
    "housing": housing,
    "figure1_views": figure1_views,
}


def load_dataset(name: str, random_state=None) -> Dataset:
    """Load a built-in dataset by name.

    Raises
    ------
    DatasetError
        For unknown names (the message lists what is available).
    """
    try:
        factory = DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
    if random_state is None:
        return factory()
    return factory(random_state=random_state)
