"""Dataset writers: CSV and ARFF output (round-trips with the loaders).

Useful for materializing the synthetic stand-ins (so other tools can
consume the exact data a benchmark ran on) and for saving cleaned /
preprocessed matrices.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .._atomic import atomic_write_text, atomic_writer
from ..exceptions import DatasetError
from .loaders import Dataset

__all__ = ["write_csv", "write_arff"]


def _label_column_name(dataset: Dataset, label_column: str) -> str:
    if label_column in dataset.feature_names:
        raise DatasetError(
            f"label column name {label_column!r} collides with a feature"
        )
    return label_column


def write_csv(
    dataset: Dataset,
    path,
    *,
    label_column: str = "class",
    missing_token: str = "?",
    float_format: str = "{:.10g}",
) -> Path:
    """Write *dataset* as a headered CSV (NaN → *missing_token*).

    Labels, when present, are appended as the last column under
    *label_column*.  The output round-trips through
    :func:`repro.data.loaders.load_csv` with the matching
    ``label_column`` argument.
    """
    path = Path(path)
    header = list(dataset.feature_names)
    if dataset.labels is not None:
        header.append(_label_column_name(dataset, label_column))
    with atomic_writer(path, newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for i in range(dataset.n_points):
            row = [
                missing_token if np.isnan(v) else float_format.format(v)
                for v in dataset.values[i]
            ]
            if dataset.labels is not None:
                row.append(str(int(dataset.labels[i])))
            writer.writerow(row)
    return path


def write_arff(
    dataset: Dataset,
    path,
    *,
    label_column: str = "class",
    float_format: str = "{:.10g}",
) -> Path:
    """Write *dataset* as ARFF (all features numeric; labels nominal).

    Round-trips through :func:`repro.data.arff.load_arff` with
    ``label_attribute=label_column`` — class codes are emitted as the
    nominal levels ``c<code>`` in ascending code order, so factorization
    recovers the original integer codes up to that order-preserving
    relabelling.
    """
    path = Path(path)
    lines = [f"@relation {dataset.name or 'repro'}"]
    for name in dataset.feature_names:
        safe = f"'{name}'" if any(c.isspace() for c in name) else name
        lines.append(f"@attribute {safe} numeric")
    level_of: dict[int, str] = {}
    if dataset.labels is not None:
        codes = sorted(set(int(c) for c in dataset.labels))
        level_of = {code: f"c{code}" for code in codes}
        levels = ",".join(level_of[code] for code in codes)
        lines.append(
            f"@attribute {_label_column_name(dataset, label_column)} {{{levels}}}"
        )
    lines.append("@data")
    for i in range(dataset.n_points):
        row = [
            "?" if np.isnan(v) else float_format.format(v)
            for v in dataset.values[i]
        ]
        if dataset.labels is not None:
            row.append(level_of[int(dataset.labels[i])])
        lines.append(",".join(row))
    return atomic_write_text(path, "\n".join(lines) + "\n")
