"""Synthetic stand-ins for the paper's UCI evaluation datasets.

The paper's empirical section (§3) runs on UCI machine-learning
repository datasets — unavailable in this offline reproduction — so
each generator below produces a *seeded, deterministic* stand-in with
the **same N and dimensionality** the paper reports, built from
correlated attribute blocks plus noise dimensions and planted rare
combinations (see :mod:`repro.data.synthetic` and the substitution
notes in DESIGN.md).  The property the evaluation depends on is
preserved: abnormality lives in low-dimensional projections and is
masked in full-dimensional distance.

Each dataset's ``metadata`` records a recommended grid resolution
``phi`` chosen so that Equation 2 yields the projection dimensionality
the paper's experiments used (k = 2-4) — §2.4's own guidance that φ
and k must be balanced against N.

Arrhythmia reproduces the **exact** class-code distribution of
Table 2 (including the real UCI per-class counts: 85.4% common /
14.6% rare) and plants the famous "height 780 cm, weight 6 kg"
recording-error record.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_rng
from .loaders import Dataset
from .synthetic import correlated_block_data, plant_rare_combinations

__all__ = [
    "breast_cancer",
    "ionosphere",
    "segmentation",
    "musk",
    "machine",
    "arrhythmia",
    "housing",
    "ARRHYTHMIA_CLASS_COUNTS",
    "ARRHYTHMIA_COMMON_CLASSES",
    "ARRHYTHMIA_RARE_CLASSES",
]

#: Real UCI arrhythmia per-class instance counts (sums to 452).  The
#: ≥5%/<5% split reproduces Table 2 exactly: 85.4% common, 14.6% rare.
ARRHYTHMIA_CLASS_COUNTS = {
    1: 245,
    2: 44,
    3: 15,
    4: 15,
    5: 13,
    6: 25,
    7: 3,
    8: 2,
    9: 9,
    10: 50,
    14: 4,
    15: 5,
    16: 22,
}
ARRHYTHMIA_COMMON_CLASSES = frozenset({1, 2, 6, 10, 16})
ARRHYTHMIA_RARE_CLASSES = frozenset({3, 4, 5, 7, 8, 9, 14, 15})


def _structured_standin(
    name: str,
    n_points: int,
    n_dims: int,
    n_blocks: int,
    n_anomalies: int,
    *,
    phi: int,
    seed: int,
    random_state=None,
) -> Dataset:
    """Shared recipe: correlated blocks + noise dims + planted combos."""
    rng = check_rng(seed if random_state is None else random_state)
    data, blocks = correlated_block_data(
        n_points,
        n_dims,
        n_blocks,
        block_size=2,
        correlation_noise=0.25,
        n_clusters=2,
        random_state=rng,
    )
    plan = plant_rare_combinations(data, blocks, n_anomalies, random_state=rng)
    return Dataset(
        name=name,
        values=data,
        feature_names=tuple(f"attr{i}" for i in range(n_dims)),
        planted_outliers=plan.indices,
        metadata={
            "phi": phi,
            "blocks": blocks,
            "planted_subspaces": plan.subspaces,
            "paper_table": "Table 1",
            "substitution": "synthetic stand-in; see DESIGN.md",
        },
    )


def breast_cancer(random_state=None) -> Dataset:
    """Stand-in for the paper's Breast Cancer dataset (N=699, d=14)."""
    return _structured_standin(
        "breast_cancer", 699, 14, n_blocks=4, n_anomalies=12, phi=4, seed=101,
        random_state=random_state,
    )


def ionosphere(random_state=None) -> Dataset:
    """Stand-in for Ionosphere (N=351, d=34)."""
    return _structured_standin(
        "ionosphere", 351, 34, n_blocks=8, n_anomalies=10, phi=3, seed=102,
        random_state=random_state,
    )


def segmentation(random_state=None) -> Dataset:
    """Stand-in for Image Segmentation (N=2310, d=19)."""
    return _structured_standin(
        "segmentation", 2310, 19, n_blocks=5, n_anomalies=20, phi=4, seed=103,
        random_state=random_state,
    )


def musk(random_state=None) -> Dataset:
    """Stand-in for Musk (N=476, d=160) — the paper's brute-force killer."""
    return _structured_standin(
        "musk", 476, 160, n_blocks=20, n_anomalies=12, phi=3, seed=104,
        random_state=random_state,
    )


def machine(random_state=None) -> Dataset:
    """Stand-in for Machine / CPU performance (N=209, d=8)."""
    return _structured_standin(
        "machine", 209, 8, n_blocks=3, n_anomalies=6, phi=3, seed=105,
        random_state=random_state,
    )


def arrhythmia(random_state=None) -> Dataset:
    """Stand-in for Arrhythmia (N=452, d=279) with Table 2's classes.

    Construction:

    * exact per-class counts of the UCI original (so the common/rare
      marginals match Table 2 to the digit);
    * 40 wide (6-attribute) correlated blocks among 279 dimensions —
      real ECG features co-move in large groups, which is what makes
      structured cross-sections pervasive enough for the evolutionary
      search to find; rare-class records carry a planted rare
      combination in one block with probability 0.75 (different points
      → different blocks, mirroring "different points may show
      different kinds of abnormal patterns");
    * one common-class record with height 780 cm / weight 6 kg — the
      paper's recording-error anecdote (§3.1);
    * a handful of common-class records with inflated noise on many
      unstructured dimensions: full-dimensional distance outliers that
      are *not* rare-class, which is exactly what degrades the kNN
      baseline in high dimensions.
    """
    rng = check_rng(106 if random_state is None else random_state)
    n_points, n_dims, n_blocks, block_size = 452, 279, 40, 6
    data, blocks = correlated_block_data(
        n_points,
        n_dims,
        n_blocks,
        block_size=block_size,
        correlation_noise=0.25,
        n_clusters=2,
        random_state=rng,
    )

    labels = np.concatenate(
        [np.full(count, code) for code, count in sorted(ARRHYTHMIA_CLASS_COUNTS.items())]
    )
    rng.shuffle(labels)

    # Plant rare combinations on ~75% of rare-class rows.
    rare_rows = np.nonzero(
        np.isin(labels, sorted(ARRHYTHMIA_RARE_CLASSES))
    )[0]
    planted_mask = rng.random(rare_rows.size) < 0.75
    planted_rows = rare_rows[planted_mask]
    plan = plant_rare_combinations(
        data, blocks, indices=planted_rows, random_state=rng
    )

    # Rescale the height/weight block (dims 2-3) to human units, then
    # inject the paper's famous recording error on a common-class row.
    data[:, 2] = 165.0 + 9.0 * data[:, 2]
    data[:, 3] = 70.0 + 11.0 * data[:, 3]
    common_rows = np.nonzero(
        np.isin(labels, sorted(ARRHYTHMIA_COMMON_CLASSES))
    )[0]
    error_row = int(common_rows[0])
    data[error_row, 2] = 780.0
    data[error_row, 3] = 6.0

    # Full-dimensional noise distractors: extreme on many noise dims,
    # unremarkable in any low-dimensional projection.
    noise_dims = np.arange(block_size * n_blocks, n_dims)
    distractors = rng.choice(common_rows[1:], size=15, replace=False)
    for row in distractors:
        hit = rng.choice(noise_dims, size=30, replace=False)
        data[row, hit] += rng.normal(scale=5.0, size=hit.size)

    names = ["age", "sex_indicator", "height", "weight"] + [
        f"ecg_feature{i}" for i in range(4, n_dims)
    ]
    return Dataset(
        name="arrhythmia",
        values=data,
        feature_names=tuple(names),
        labels=labels,
        planted_outliers=plan.indices,
        metadata={
            "phi": 5,
            "blocks": blocks,
            "planted_subspaces": plan.subspaces,
            "recording_error_row": error_row,
            "distractor_rows": tuple(int(r) for r in sorted(distractors)),
            "common_classes": tuple(sorted(ARRHYTHMIA_COMMON_CLASSES)),
            "rare_classes": tuple(sorted(ARRHYTHMIA_RARE_CLASSES)),
            "paper_table": "Table 2 / §3.1",
            "substitution": "synthetic stand-in; see DESIGN.md",
        },
    )


#: Feature names of the Boston housing data (the paper drops CHAS, the
#: single binary attribute, and mines the remaining 13).
HOUSING_FEATURES = (
    "CRIM", "ZN", "INDUS", "CHAS", "NOX", "RM", "AGE",
    "DIS", "RAD", "TAX", "PTRATIO", "B", "LSTAT", "MEDV",
)


def housing(random_state=None) -> Dataset:
    """Stand-in for Boston housing (N=506, d=14) with planted contrarians.

    The generator wires in the correlations the paper's qualitative
    findings rely on — crime rate rises with highway accessibility and
    pupil-teacher ratio and falls with distance to employment centers;
    nitric-oxide concentration rises with house age and highway access;
    home value falls with crime — and then plants the paper's three
    §3.1 contrarian records:

    * high CRIM + high PTRATIO but *low* DIS,
    * low NOX despite high AGE and high RAD,
    * low CRIM + modest INDUS but *low* MEDV.
    """
    rng = check_rng(107 if random_state is None else random_state)
    n = 506
    # Latent "urbanness" drives the co-movement of most attributes.
    urban = rng.normal(size=n)

    def noisy(base, scale=0.45):
        return base + rng.normal(scale=scale, size=n)

    crim = np.exp(noisy(0.8 * urban) - 1.0)            # skewed, urban-linked
    zn = np.clip(noisy(-8.0 * urban, 6.0) + 12.0, 0, 100)
    indus = np.clip(noisy(4.0 * urban, 2.0) + 11.0, 0.5, 28)
    chas = (rng.random(n) < 0.07).astype(float)        # the binary attribute
    nox = np.clip(0.55 + 0.09 * noisy(urban, 0.4), 0.38, 0.88)
    rm = np.clip(noisy(-0.35 * urban, 0.5) + 6.3, 3.5, 8.8)
    age = np.clip(noisy(18.0 * urban, 12.0) + 68.0, 2.9, 100.0)
    dis = np.clip(np.exp(noisy(-0.45 * urban, 0.3) + 1.2), 1.1, 12.2)
    rad = np.clip(np.round(noisy(6.5 * urban, 2.0) + 9.0), 1, 24)
    tax = np.clip(noisy(120.0 * urban, 60.0) + 400.0, 187, 711)
    ptratio = np.clip(noisy(1.6 * urban, 1.2) + 18.4, 12.6, 22.0)
    b = np.clip(noisy(-40.0 * urban, 35.0) + 356.0, 0.3, 396.9)
    lstat = np.clip(noisy(5.5 * urban, 3.0) + 12.6, 1.7, 38.0)
    medv = np.clip(noisy(-5.5 * urban, 3.0) + 22.5 + 2.2 * (rm - 6.3), 5.0, 50.0)

    data = np.column_stack(
        [crim, zn, indus, chas, nox, rm, age, dis, rad, tax, ptratio, b, lstat, medv]
    )
    names = HOUSING_FEATURES
    col = {name: i for i, name in enumerate(names)}

    def q(column, level):
        return float(np.quantile(data[:, col[column]], level))

    contrarians = []
    # 1. High crime + high pupil-teacher ratio, yet close to employment.
    row = 17
    data[row, col["CRIM"]] = q("CRIM", 0.93)
    data[row, col["PTRATIO"]] = q("PTRATIO", 0.93)
    data[row, col["DIS"]] = q("DIS", 0.05)
    contrarians.append((row, ("CRIM", "PTRATIO", "DIS")))
    # 2. Low nitric oxide despite old housing stock and high highway access.
    row = 203
    data[row, col["NOX"]] = q("NOX", 0.06)
    data[row, col["AGE"]] = q("AGE", 0.94)
    data[row, col["RAD"]] = q("RAD", 0.94)
    contrarians.append((row, ("NOX", "AGE", "RAD")))
    # 3. Low crime, modest industry, and yet a low median home value.
    row = 388
    data[row, col["CRIM"]] = q("CRIM", 0.05)
    data[row, col["INDUS"]] = q("INDUS", 0.5)
    data[row, col["MEDV"]] = q("MEDV", 0.06)
    contrarians.append((row, ("CRIM", "INDUS", "MEDV")))

    return Dataset(
        name="housing",
        values=data,
        feature_names=names,
        planted_outliers=np.array(sorted(row for row, _ in contrarians)),
        metadata={
            "phi": 4,
            "binary_attribute": "CHAS",
            "contrarians": tuple(
                (row, dims) for row, dims in contrarians
            ),
            "paper_table": "§3.1 housing discussion",
            "substitution": "synthetic stand-in; see DESIGN.md",
        },
    )
