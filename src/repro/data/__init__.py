"""Data substrate: loaders, preprocessing, synthetic generators, UCI stand-ins."""

from .loaders import Dataset, load_csv
from .arff import load_arff
from .export import write_arff, write_csv
from .preprocess import (
    drop_low_variance_columns,
    inject_missing_values,
    standardize,
)
from .synthetic import (
    AnomalyPlan,
    correlated_block_data,
    figure1_views,
    plant_rare_combinations,
    uniform_noise,
)
from .uci import (
    arrhythmia,
    breast_cancer,
    housing,
    ionosphere,
    machine,
    musk,
    segmentation,
)
from .registry import DATASETS, load_dataset

__all__ = [
    "Dataset",
    "load_csv",
    "load_arff",
    "write_csv",
    "write_arff",
    "standardize",
    "inject_missing_values",
    "drop_low_variance_columns",
    "AnomalyPlan",
    "correlated_block_data",
    "plant_rare_combinations",
    "uniform_noise",
    "figure1_views",
    "breast_cancer",
    "ionosphere",
    "segmentation",
    "musk",
    "machine",
    "arrhythmia",
    "housing",
    "DATASETS",
    "load_dataset",
]
