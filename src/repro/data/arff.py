"""Minimal ARFF loader — the UCI repository's native format.

The paper's datasets ship from the UCI machine-learning repository,
historically as ARFF (attribute-relation file format).  This loader
covers the subset those files use:

* ``@relation <name>``
* ``@attribute <name> numeric|real|integer`` — numeric columns
* ``@attribute <name> {a,b,c}`` — nominal columns (factorized to
  0-based codes in declaration order)
* ``@data`` followed by comma-separated rows; ``?`` = missing
* ``%`` comments and blank lines anywhere

Sparse ARFF, strings, dates and weights are out of scope and rejected
loudly.  A nominal attribute may be designated the class column, which
lands in ``Dataset.labels`` (matching the arrhythmia protocol).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..exceptions import DatasetError
from .loaders import Dataset

__all__ = ["load_arff"]

_NUMERIC_TYPES = {"numeric", "real", "integer"}


def _split_attribute(line: str) -> tuple[str, str]:
    """Split an ``@attribute`` line into (name, type-spec)."""
    body = line[len("@attribute") :].strip()
    if not body:
        raise DatasetError(f"malformed @attribute line: {line!r}")
    if body[0] in "'\"":
        quote = body[0]
        end = body.find(quote, 1)
        if end < 0:
            raise DatasetError(f"unterminated attribute name: {line!r}")
        return body[1:end], body[end + 1 :].strip()
    parts = body.split(None, 1)
    if len(parts) != 2:
        raise DatasetError(f"malformed @attribute line: {line!r}")
    return parts[0], parts[1].strip()


def load_arff(
    source,
    *,
    name: str | None = None,
    label_attribute: str | None = None,
) -> Dataset:
    """Load an ARFF file (path, file-like, or inline text) into a Dataset.

    Parameters
    ----------
    source:
        Path to a ``.arff`` file, a file-like object, or the ARFF text
        itself (auto-detected by the presence of newlines).
    name:
        Dataset name override (defaults to the ``@relation`` name).
    label_attribute:
        Name of the attribute to split out as class labels; must be a
        nominal attribute.
    """
    if isinstance(source, (str, Path)) and "\n" not in str(source):
        path = Path(source)
        if not path.exists():
            raise DatasetError(f"ARFF file not found: {path}")
        text = path.read_text()
    elif isinstance(source, str):
        text = source
    else:
        text = source.read()

    relation: str | None = None
    attributes: list[tuple[str, dict[str, int] | None]] = []
    data_rows: list[list[str]] = []
    in_data = False
    for raw_line in io.StringIO(text):
        line = raw_line.strip()
        if not line or line.startswith("%"):
            continue
        lowered = line.lower()
        if in_data:
            if line.startswith("{"):
                raise DatasetError("sparse ARFF data is not supported")
            data_rows.append([token.strip() for token in line.split(",")])
        elif lowered.startswith("@relation"):
            relation = line.split(None, 1)[1].strip("'\"") if " " in line else "arff"
        elif lowered.startswith("@attribute"):
            attr_name, spec = _split_attribute(line)
            spec_lower = spec.lower()
            if spec_lower in _NUMERIC_TYPES:
                attributes.append((attr_name, None))
            elif spec.startswith("{") and spec.endswith("}"):
                levels = [
                    token.strip().strip("'\"")
                    for token in spec[1:-1].split(",")
                ]
                attributes.append(
                    (attr_name, {level: i for i, level in enumerate(levels)})
                )
            else:
                raise DatasetError(
                    f"unsupported attribute type {spec!r} for "
                    f"{attr_name!r} (only numeric and nominal are supported)"
                )
        elif lowered.startswith("@data"):
            if not attributes:
                raise DatasetError("@data before any @attribute declaration")
            in_data = True
        else:
            raise DatasetError(f"unrecognized ARFF directive: {line!r}")

    if not in_data:
        raise DatasetError("ARFF input has no @data section")
    if not data_rows:
        raise DatasetError("ARFF @data section is empty")

    label_index: int | None = None
    if label_attribute is not None:
        names = [attr_name for attr_name, _ in attributes]
        try:
            label_index = names.index(label_attribute)
        except ValueError:
            raise DatasetError(
                f"label attribute {label_attribute!r} not declared; "
                f"attributes: {names}"
            ) from None
        if attributes[label_index][1] is None:
            raise DatasetError(
                f"label attribute {label_attribute!r} must be nominal"
            )

    n_attrs = len(attributes)
    feature_slots = [i for i in range(n_attrs) if i != label_index]
    values = np.full((len(data_rows), len(feature_slots)), np.nan)
    labels = (
        np.empty(len(data_rows), dtype=np.int64) if label_index is not None else None
    )
    for r, row in enumerate(data_rows):
        if len(row) != n_attrs:
            raise DatasetError(
                f"data row {r} has {len(row)} values for {n_attrs} attributes"
            )
        for out_col, src in enumerate(feature_slots):
            token = row[src].strip().strip("'\"")
            _, levels = attributes[src]
            if token == "?":
                continue
            if levels is None:
                try:
                    values[r, out_col] = float(token)
                except ValueError:
                    raise DatasetError(
                        f"row {r}: {token!r} is not numeric for attribute "
                        f"{attributes[src][0]!r}"
                    ) from None
            else:
                try:
                    values[r, out_col] = levels[token]
                except KeyError:
                    raise DatasetError(
                        f"row {r}: {token!r} is not a declared level of "
                        f"{attributes[src][0]!r}"
                    ) from None
        if label_index is not None:
            token = row[label_index].strip().strip("'\"")
            levels = attributes[label_index][1]
            if token == "?":
                raise DatasetError(f"row {r}: missing class label")
            try:
                labels[r] = levels[token]
            except KeyError:
                raise DatasetError(
                    f"row {r}: {token!r} is not a declared class level"
                ) from None

    return Dataset(
        name=name or relation or "arff",
        values=values,
        feature_names=tuple(attributes[i][0] for i in feature_slots),
        labels=labels,
        metadata={"source": "arff"},
    )
