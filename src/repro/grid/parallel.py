"""Process-pool backend for batched cube counting.

The counter's membership-mask stack is copied once into POSIX shared
memory; each pool worker attaches a zero-copy numpy view over it at
initialization and then runs the *same* batch kernel
(:func:`repro.grid.counter.batch_counts`) the serial path uses.  Task
payloads are only the small ``(chunk, k)`` index arrays, and chunk
results are reassembled in submission order by ``Executor.map``, so
results are bit-identical to the serial backend for any worker count.

This module is imported lazily by
:meth:`repro.grid.counter.CubeCounter._ensure_pool`; if pool or
shared-memory creation fails (restricted containers, missing /dev/shm),
the counter logs a warning and falls back to serial evaluation.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from .counter import batch_counts

__all__ = ["CountingPool"]

# Worker-process globals, populated once by the pool initializer.
_WORKER_STACK: np.ndarray | None = None
_WORKER_SHM: shared_memory.SharedMemory | None = None
_WORKER_PACKED = False


def _init_worker(shm_name: str, shape: tuple, dtype_str: str, packed: bool) -> None:
    global _WORKER_STACK, _WORKER_SHM, _WORKER_PACKED
    _WORKER_SHM = shared_memory.SharedMemory(name=shm_name)
    _WORKER_STACK = np.ndarray(
        shape, dtype=np.dtype(dtype_str), buffer=_WORKER_SHM.buf
    )
    _WORKER_PACKED = packed


def _count_chunk(chunk: tuple) -> tuple:
    """One task: counts + kernel stats for a (dims, ranges) index chunk."""
    dims_arr, rng_arr = chunk
    counts, stats = batch_counts(_WORKER_STACK, dims_arr, rng_arr, _WORKER_PACKED)
    return counts, stats["words_and"], stats["prefix_reuse"]


class CountingPool:
    """A worker pool sharing one counter's mask stack via shared memory."""

    def __init__(self, stack: np.ndarray, packed: bool, n_workers: int):
        stack = np.ascontiguousarray(stack)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, stack.nbytes)
        )
        shared = np.ndarray(stack.shape, dtype=stack.dtype, buffer=self._shm.buf)
        shared[...] = stack
        self._closed = False
        try:
            self._executor = ProcessPoolExecutor(
                max_workers=n_workers,
                initializer=_init_worker,
                initargs=(self._shm.name, stack.shape, stack.dtype.str, packed),
            )
        except Exception:
            self._release_shm()
            raise

    def map_chunks(self, chunks: list[tuple]) -> list[tuple]:
        """Evaluate chunks on the pool, results in submission order."""
        return list(self._executor.map(_count_chunk, chunks))

    def _release_shm(self) -> None:
        try:
            self._shm.close()
            self._shm.unlink()
        except Exception:  # pragma: no cover - double-unlink races
            pass

    def close(self) -> None:
        """Shut the workers down and free the shared-memory segment."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=True)
        self._release_shm()

    def __del__(self):  # pragma: no cover - interpreter-shutdown dependent
        try:
            self.close()
        except Exception:
            pass
