"""Fault-tolerant process-pool backends for batched cube counting.

Two pools share one resilient dispatcher (:class:`_ResilientPool`):

:class:`CountingPool`
    The shared-memory pool.  The counter's membership-mask stack is
    copied once into POSIX shared memory; each worker attaches a
    zero-copy numpy view over it at initialization and then runs the
    *same* batch kernel the serial path uses — resolved by name from
    the backend registry (:mod:`repro.grid.backends`), so a ``process``
    backend runs the numpy reference kernel
    (:func:`repro.grid.kernels.batch_counts`) and a ``process-native``
    backend runs the compiled native kernel
    (:func:`repro.grid.native.native_batch_counts`) inside every
    worker.  Task payloads are only the small ``(chunk_id, attempt,
    dims, ranges)`` index arrays.

:class:`ShardedCountingPool`
    The out-of-core pool for :class:`~repro.grid.sharded.ShardedCounter`.
    There is **no shared-memory copy of anything**: each worker opens
    the :class:`~repro.grid.sharded.ShardedMaskStore` itself and counts
    whole shards through its own read-only mmap view (the OS page cache
    is the only sharing).  Task payloads are ``(chunk_id, attempt,
    shard_id, dims, ranges)``; the in-parent serial recovery path opens
    the same mmap view, so recovered shards are bit-identical.

Chunk results are reassembled in submission order, so results are
bit-identical to the serial backend for any worker count — including
when chunks are retried, the pool is rebuilt, or individual chunks
degrade to the in-process kernel.

Fault tolerance (the shared dispatcher in :meth:`_ResilientPool.map_chunks`):

* per-chunk dispatch with a configurable timeout
  (``CountingBackend.timeout``; disabled by default),
* bounded retry with exponential backoff (``max_retries`` /
  ``retry_backoff``),
* automatic pool rebuild on ``BrokenProcessPool`` or a wedged worker,
  bounded by ``max_rebuilds``,
* graceful degradation: a chunk that exhausts its retries — or every
  chunk, once the pool is abandoned — is recovered in-process by the
  same registered kernel, which is bit-identical by construction.

Every event is recorded in the counter's
:class:`~repro.grid.health.BackendHealth`; deterministic chaos is
injected through :class:`~repro.core.params.FaultPlan` (threaded to the
workers via the pool initializer and task payloads).

This module is imported lazily by the counters' ``_ensure_pool``; if
pool or shared-memory creation fails (restricted containers, missing
/dev/shm), the counter logs a warning and falls back to serial.
"""

from __future__ import annotations

import logging
import os
import time
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from multiprocessing import shared_memory

import numpy as np

from ..core.params import CountingBackend, FaultPlan
from ..engine.events import emit_event
from ..exceptions import SearchCancelled
from ..resilience.ladder import ResilienceReport
from .backends import resolve_kernel
from .health import BackendHealth

__all__ = ["CountingPool", "ShardedCountingPool"]

logger = logging.getLogger(__name__)


def _reclaim_pool_resources(resources: dict, label: str) -> None:
    """Last-resort reclamation for a pool whose owner forgot ``close()``.

    Registered through :func:`weakref.finalize` (which also fires at
    interpreter exit via ``atexit``), so worker processes — and, for the
    shared-memory pool, the POSIX segment — are reclaimed even when the
    owning pool is simply dropped.  Holds no reference to the pool
    itself — only to this shared resource dict — so it never keeps the
    pool alive.
    """
    executor = resources.pop("executor", None)
    shm = resources.pop("shm", None)
    resources.pop("local", None)
    if executor is None and shm is None:
        return
    logger.warning(
        "%s was never close()d; reclaiming its worker pool%s — call "
        "close() (or use the detector facade, which closes it for you) "
        "to release these promptly",
        label,
        "" if shm is None else " and shared-memory segment",
    )
    if executor is not None:
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass
    if shm is not None:
        try:
            shm.close()
            shm.unlink()
        except Exception:  # pragma: no cover - double-unlink races
            pass


# Worker-process globals, populated once by the pool initializers.
_WORKER_STACK: np.ndarray | None = None
_WORKER_SHM: shared_memory.SharedMemory | None = None
_WORKER_PACKED = False
_WORKER_FAULT: FaultPlan | None = None
_WORKER_KERNEL = None
_WORKER_STORE = None


def _init_worker(
    shm_name: str,
    shape: tuple,
    dtype_str: str,
    packed: bool,
    kernel_name: str,
    fault: FaultPlan | None,
    poison_init: bool,
) -> None:
    global _WORKER_STACK, _WORKER_SHM, _WORKER_PACKED, _WORKER_FAULT
    global _WORKER_KERNEL
    if poison_init:
        raise RuntimeError(
            "injected shared-memory attach failure "
            "(FaultPlan.fail_shm_attach_once)"
        )
    _WORKER_SHM = shared_memory.SharedMemory(name=shm_name)
    _WORKER_STACK = np.ndarray(
        shape, dtype=np.dtype(dtype_str), buffer=_WORKER_SHM.buf
    )
    _WORKER_PACKED = packed
    _WORKER_FAULT = fault
    # Resolved per worker (verification is cached per process); the
    # native kernel's compiled library is content-addressed on disk, so
    # sibling workers share one build.
    _WORKER_KERNEL = resolve_kernel(kernel_name)


def _apply_fault(chunk_id: int, attempt: int) -> None:
    fault = _WORKER_FAULT
    if fault is not None and fault.applies(attempt):
        if fault.delay_chunk == chunk_id:
            time.sleep(fault.delay_seconds)
        if fault.kill_worker_on_chunk == chunk_id:
            os._exit(1)


def _count_chunk(task: tuple) -> tuple:
    """One shm task: counts + kernel stats for a (dims, ranges) chunk."""
    chunk_id, attempt, dims_arr, rng_arr = task
    _apply_fault(chunk_id, attempt)
    counts, stats = _WORKER_KERNEL(
        _WORKER_STACK, dims_arr, rng_arr, _WORKER_PACKED
    )
    return counts, stats["words_and"], stats["prefix_reuse"]


def _init_sharded_worker(
    directory: str,
    kernel_name: str,
    fault: FaultPlan | None,
    poison_init: bool,
) -> None:
    global _WORKER_STORE, _WORKER_FAULT, _WORKER_KERNEL
    if poison_init:
        raise RuntimeError(
            "injected store-open failure (FaultPlan.fail_shm_attach_once)"
        )
    from .sharded import ShardedMaskStore

    # Each worker validates and opens the store itself; shard views are
    # created per task, so a worker's address-space footprint stays one
    # shard regardless of how many it processes.
    # (.open here is the store classmethod, read-only by construction,
    # not a file write.)
    _WORKER_STORE = ShardedMaskStore.open(directory)  # repro-lint: disable=RPL003
    _WORKER_FAULT = fault
    _WORKER_KERNEL = resolve_kernel(kernel_name)


def _count_shard(task: tuple) -> tuple:
    """One out-of-core task: counts for a whole shard's cube batch."""
    chunk_id, attempt, shard_id, dims_arr, rng_arr = task
    _apply_fault(chunk_id, attempt)
    stack = _WORKER_STORE.shard_words(shard_id)
    counts, stats = _WORKER_KERNEL(stack, dims_arr, rng_arr, True)
    return counts, stats["words_and"], stats["prefix_reuse"]


class _ResilientPool:
    """Shared dispatcher: bounded retry, rebuild, serial recovery.

    Subclasses provide the worker entry point (:attr:`_task_fn` with
    initializer/initargs via :meth:`_initializer` / :meth:`_initargs`),
    the in-parent recovery path (:meth:`_run_serial`) and resource
    release (:meth:`_release_resources`); the dispatch policy — and
    therefore the bit-identity guarantees — is identical for every
    pool.
    """

    #: Module-level worker function receiving ``(chunk_id, attempt,
    #: *chunk)`` (subclass attribute; must be picklable).
    _task_fn = None

    def __init__(
        self,
        backend: CountingBackend,
        health: BackendHealth | None,
        report: ResilienceReport | None = None,
    ):
        self.health = health if health is not None else BackendHealth()
        self.report = report
        self._timeout = backend.timeout
        # The shared retry policy carries the backend's historical
        # knobs: max_attempts = max_retries + 1, same exponential
        # backoff capped at 1s — dispatch behaviour is bit-for-bit what
        # the old inline loop did.
        self._retry = backend.retry_policy()
        self._kind = backend.kind
        self._max_rebuilds = backend.max_rebuilds
        self._fault = backend.fault_plan
        self._n_workers = backend.resolved_workers()
        self._generation = 0
        self._next_chunk_id = 0
        self._closed = False
        self._executor: ProcessPoolExecutor | None = None
        # Shared with the leak finalizer: whatever is in here when the
        # pool is garbage-collected (or the interpreter exits) without
        # close() gets reclaimed with a warning.
        self._resources: dict = {"executor": None}
        self._finalizer = weakref.finalize(
            self, _reclaim_pool_resources, self._resources,
            type(self).__name__,
        )

    # -- subclass hooks -------------------------------------------------
    def _initializer(self):
        raise NotImplementedError

    def _initargs(self, poison: bool) -> tuple:
        raise NotImplementedError

    def _run_serial(self, idx: int, chunk: tuple, results: list) -> None:
        raise NotImplementedError

    def _release_resources(self) -> None:
        """Free subclass-owned resources (shm, ...); executor is handled."""

    # ------------------------------------------------------------------
    def _start_executor(self) -> None:
        """Spawn the initial executor; release resources on failure."""
        try:
            self._executor = self._spawn_executor()
            self._resources["executor"] = self._executor
        except Exception:
            self._release_resources()
            self._finalizer.detach()
            raise

    def _spawn_executor(self) -> ProcessPoolExecutor:
        poison = bool(
            self._fault
            and self._fault.fail_shm_attach_once
            and self._generation == 0
        )
        executor = ProcessPoolExecutor(
            max_workers=self._n_workers,
            initializer=self._initializer(),
            initargs=self._initargs(poison),
        )
        self._generation += 1
        return executor

    @property
    def is_degraded(self) -> bool:
        """True once the pool has been abandoned (serial-only from here)."""
        return self._executor is None

    # ------------------------------------------------------------------
    def map_chunks(
        self, chunks: list[tuple], cancel_token=None, event_sink=None
    ) -> list[tuple]:
        """Evaluate chunks resiliently, results in submission order.

        Never fails because of worker trouble: chunks that cannot be
        completed on the pool within the retry budget are recovered by
        the in-process serial kernel.  Genuine task errors (e.g. a
        malformed chunk) still surface — the serial recovery re-raises
        them in the parent.

        *cancel_token* makes long dispatches interruptible: the token
        is checked between dispatch waves (and before the serial
        recovery sweep), raising
        :class:`~repro.exceptions.SearchCancelled` once it flips.  The
        search discards the partial batch, so cancellation never
        affects returned counts.

        *event_sink* receives one ``chunk_retry`` event per recovery
        action (pool retry or serial fallback) so run traces show
        worker trouble as it happens, not only in the final health
        counters.
        """
        n = len(chunks)
        base_id = self._next_chunk_id
        self._next_chunk_id += n
        results: list = [None] * n
        attempts = [0] * n
        pending = list(range(n))
        wave = 0
        task_fn = type(self)._task_fn
        while pending:
            if cancel_token is not None and cancel_token.cancelled:
                raise SearchCancelled(
                    "parallel counting interrupted between dispatch waves"
                )
            if self._executor is None:
                for idx in pending:
                    self._run_serial(idx, chunks[idx], results)
                break
            if wave:
                time.sleep(self._retry.delay(wave))
            wave += 1
            broken = False
            submitted: list[tuple] = []
            unsubmitted: list[int] = []
            for pos, idx in enumerate(pending):
                attempts[idx] += 1
                task = (base_id + idx, attempts[idx], *chunks[idx])
                try:
                    future = self._executor.submit(task_fn, task)
                except Exception:
                    # Submitting to a broken/shut-down executor; the
                    # chunk was never attempted.
                    attempts[idx] -= 1
                    broken = True
                    unsubmitted = pending[pos:]
                    break
                submitted.append((idx, future, time.perf_counter()))
            failed: list[int] = []
            for idx, future, t_submit in submitted:
                try:
                    counts, words, reuse = future.result(timeout=self._timeout)
                except FutureTimeoutError:
                    # A wedged worker cannot be reclaimed: count the
                    # timeout and force a rebuild below.
                    self.health.timeouts += 1
                    broken = True
                    failed.append(idx)
                except BrokenExecutor:
                    broken = True
                    failed.append(idx)
                except Exception:
                    failed.append(idx)
                else:
                    results[idx] = (counts, words, reuse)
                    self.health.chunks_parallel += 1
                    self.health.record_latency(time.perf_counter() - t_submit)
            pending = []
            for idx in failed:
                if attempts[idx] >= self._retry.max_attempts:
                    emit_event(
                        event_sink, "chunk_retry",
                        chunk_id=base_id + idx, attempt=attempts[idx],
                        action="serial_fallback",
                    )
                    if self.report is not None:
                        self.report.record_recovery("pool_serial_fallback")
                    self._run_serial(idx, chunks[idx], results)
                else:
                    self.health.retries += 1
                    if self.report is not None:
                        self.report.record_retry("pool.chunk")
                    emit_event(
                        event_sink, "chunk_retry",
                        chunk_id=base_id + idx, attempt=attempts[idx],
                        action="retry",
                    )
                    pending.append(idx)
            pending.extend(unsubmitted)
            if broken:
                self._rebuild_or_degrade()
        return results

    def _record_serial(self, idx: int, counts, stats: dict, results: list) -> None:
        results[idx] = (counts, stats["words_and"], stats["prefix_reuse"])
        self.health.chunks_serial += 1
        self.health.fallbacks += 1

    def _rebuild_or_degrade(self) -> None:
        """Respawn the broken executor, or abandon the pool at the cap."""
        old, self._executor = self._executor, None
        self._resources["executor"] = None
        if old is not None:
            try:
                old.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - interpreter races
                pass
        if self.health.rebuilds >= self._max_rebuilds:
            self.health.pool_degraded = True
            if self.report is not None:
                self.report.record_degradation(
                    "counting-pool", self._kind, "serial",
                    f"max_rebuilds={self._max_rebuilds} exceeded",
                )
            logger.warning(
                "counting pool exceeded max_rebuilds=%d; degrading to the "
                "serial kernel for the rest of the run",
                self._max_rebuilds,
            )
            return
        try:
            self._executor = self._spawn_executor()
            self._resources["executor"] = self._executor
        except Exception as exc:  # pragma: no cover - environment-dependent
            self.health.pool_degraded = True
            if self.report is not None:
                self.report.record_degradation(
                    "counting-pool", self._kind, "serial",
                    f"pool rebuild failed: {exc}",
                )
            logger.warning(
                "counting pool rebuild failed (%s); degrading to serial", exc
            )
            return
        self.health.rebuilds += 1
        if self.report is not None:
            self.report.record_retry("pool.rebuild")
        logger.warning(
            "counting pool broke; rebuilt worker pool (rebuild %d of %d)",
            self.health.rebuilds,
            self._max_rebuilds,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the workers down and free the pool's resources.

        Idempotent, and safe on a broken pool: a dead executor is shut
        down without waiting (``wait=True`` on a broken pool can hang on
        a wedged worker), and resources are released exactly once.
        Forgetting to call this is survivable — a
        :func:`weakref.finalize` hook reclaims everything at garbage
        collection or interpreter exit, logging a warning — but prompt
        release needs an explicit close.
        """
        if self._closed:
            return
        self._closed = True
        executor, self._executor = self._executor, None
        self._resources.pop("executor", None)
        if executor is not None:
            broken = bool(getattr(executor, "_broken", False))
            try:
                executor.shutdown(wait=not broken, cancel_futures=True)
            except Exception:  # pragma: no cover - interpreter shutdown
                pass
        self._release_resources()
        self._finalizer.detach()


class CountingPool(_ResilientPool):
    """A resilient worker pool sharing one counter's mask stack via shm.

    Parameters
    ----------
    stack:
        The counter's ``(d, φ, W)`` membership-mask array (boolean or
        uint64-packed); copied once into shared memory.
    packed:
        Whether the stack holds bit-packed words.
    backend:
        The :class:`~repro.core.params.CountingBackend` whose timeout /
        retry / rebuild policy (and optional fault plan) this pool
        enforces.
    health:
        The counter's :class:`~repro.grid.health.BackendHealth`; every
        degradation event and chunk latency is recorded into it.
    kernel:
        Registered kernel name (see :mod:`repro.grid.backends`) every
        worker — and the in-process serial recovery path — runs, so
        chunk results are bit-identical wherever a chunk ends up
        executing.
    """

    _task_fn = staticmethod(_count_chunk)

    def __init__(
        self,
        stack: np.ndarray,
        packed: bool,
        backend: CountingBackend,
        health: BackendHealth | None = None,
        kernel: str = "numpy",
        report: ResilienceReport | None = None,
    ):
        super().__init__(backend, health, report)
        stack = np.ascontiguousarray(stack)
        self._packed = packed
        self._kernel_name = kernel
        self._kernel = resolve_kernel(kernel)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, stack.nbytes)
        )
        # Parent-side view over the same shared buffer: the serial
        # fallback runs the identical kernel on identical bytes.
        self._local = np.ndarray(stack.shape, dtype=stack.dtype, buffer=self._shm.buf)
        self._local[...] = stack
        self._shape = stack.shape
        self._dtype = stack.dtype
        self._resources["shm"] = self._shm
        self._resources["local"] = self._local
        self._start_executor()

    def _initializer(self):
        return _init_worker

    def _initargs(self, poison: bool) -> tuple:
        return (
            self._shm.name,
            self._shape,
            self._dtype.str,
            self._packed,
            self._kernel_name,
            self._fault,
            poison,
        )

    def _run_serial(self, idx: int, chunk: tuple, results: list) -> None:
        """Recover one chunk with the in-process kernel (bit-identical)."""
        dims_arr, rng_arr = chunk
        counts, stats = self._kernel(
            self._local, dims_arr, rng_arr, self._packed
        )
        self._record_serial(idx, counts, stats, results)

    def _release_resources(self) -> None:
        # Drop the parent-side view first: SharedMemory.close() refuses
        # (BufferError) while exported memoryviews are alive.
        self._local = None
        self._resources.pop("local", None)
        self._resources.pop("shm", None)
        try:
            self._shm.close()
            self._shm.unlink()
        except Exception:  # pragma: no cover - double-unlink races
            pass


class ShardedCountingPool(_ResilientPool):
    """A resilient worker pool counting whole shards from an mmap store.

    Nothing is copied anywhere: every worker opens the
    :class:`~repro.grid.sharded.ShardedMaskStore` at initialization and
    maps the shard a task names read-only, so N workers share the
    on-disk pages through the OS cache.  One task is one (shard, cube
    batch); the parent merges shard counts by summation, which is
    bit-identical to the serial per-shard sweep by additivity.

    Parameters are as for :class:`CountingPool`, with the store taking
    the place of the shm stack.
    """

    _task_fn = staticmethod(_count_shard)

    def __init__(
        self,
        store,
        backend: CountingBackend,
        health: BackendHealth | None = None,
        kernel: str = "numpy",
        report: ResilienceReport | None = None,
        shard_reader=None,
    ):
        super().__init__(backend, health, report)
        self._store = store
        # In-parent recovery reads shards through the counter's
        # resilient reader when one is supplied, so a corrupt shard hit
        # during serial recovery still gets quarantined and rebuilt
        # instead of surfacing a raw OSError.
        self._shard_reader = (
            shard_reader if shard_reader is not None else store.shard_words
        )
        self._kernel_name = kernel
        self._kernel = resolve_kernel(kernel)
        self._start_executor()

    def _initializer(self):
        return _init_sharded_worker

    def _initargs(self, poison: bool) -> tuple:
        return (str(self._store.directory), self._kernel_name, self._fault, poison)

    def _run_serial(self, idx: int, chunk: tuple, results: list) -> None:
        """Recover one shard in-parent over its own mmap view."""
        shard_id, dims_arr, rng_arr = chunk
        counts, stats = self._kernel(
            self._shard_reader(shard_id), dims_arr, rng_arr, True
        )
        self._record_serial(idx, counts, stats, results)
