"""The counting-backend registry: named execution strategies for counts.

A *backend* pairs a counting **kernel** (the pure batch function, see
:mod:`repro.grid.kernels`) with an **execution strategy** (in-process,
or fanned out over the fault-tolerant
:class:`~repro.grid.parallel.CountingPool`).  Counters resolve their
:class:`~repro.core.params.CountingBackend` policy through this
registry, the CLI builds its ``--count-backend`` choices from it, and
pool workers resolve the same kernel by name so a pool-wrapped backend
runs the identical arithmetic inside every worker.

Built-ins::

    serial           numpy reference kernel, in-process
    process          numpy reference kernel, worker pool over shm
    native           compiled kernel (numba → C → numpy), in-process
    process-native   compiled kernel inside each pool worker

**Conformance.**  No kernel serves counts before it is proven
bit-identical to the reference: :func:`verify_kernel` runs a
differential fixture (boolean and packed stacks, ragged tails, missing
values, k = 1..3, empty/full cubes) and raises
:class:`BackendConformanceError` on any divergence.  Registration of a
non-builtin kernel verifies eagerly; builtins are verified once on
first resolution (so importing this module stays cheap — verifying the
native kernel would trigger JIT/C compilation at import time).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..exceptions import ReproError, ValidationError
from .kernels import batch_counts
from .native import native_batch_counts

__all__ = [
    "BackendConformanceError",
    "BackendSpec",
    "degradation_chain",
    "get_backend",
    "register_backend",
    "register_kernel",
    "registered_backends",
    "registered_kernels",
    "resolve_kernel",
    "verify_kernel",
]

#: ``kernel(stack, dims_arr, rng_arr, packed) -> (counts, stats)``
Kernel = Callable[[np.ndarray, np.ndarray, np.ndarray, bool], tuple]


class BackendConformanceError(ReproError):
    """A counting kernel diverged from the reference on the fixture."""


@dataclass(frozen=True)
class BackendSpec:
    """One registered counting backend.

    Attributes
    ----------
    name:
        The registry key; what ``CountingBackend.kind`` and the CLI's
        ``--count-backend`` accept.
    kernel:
        Name of the registered kernel this backend executes (see
        :func:`register_kernel`).
    uses_pool:
        Whether large batches fan out over the fault-tolerant
        :class:`~repro.grid.parallel.CountingPool` (the kernel then
        runs inside each worker, and chunk recovery re-runs it
        in-process — bit-identical either way).
    description:
        One-line summary surfaced in CLI help and docs.
    fallback:
        Name of the backend the degradation ladder steps down to when
        this one fails repeatedly (``None`` = bottom of the chain).
        Every registered backend is bit-identical to the reference, so
        walking the chain only ever trades speed, never results.
    """

    name: str
    kernel: str
    uses_pool: bool
    description: str
    fallback: str | None = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValidationError("backend name must be a non-empty string")
        if self.fallback == self.name:
            raise ValidationError(
                f"backend {self.name!r} cannot be its own fallback"
            )


_KERNELS: dict[str, Kernel] = {}
_BACKENDS: dict[str, BackendSpec] = {}

#: Kernels already proven against the reference in this process.
_VERIFIED: set[str] = set()

#: The reference kernel every registered kernel must match.
_REFERENCE_KERNEL = "numpy"


def _fixture_grids() -> list[tuple[np.ndarray, bool]]:
    """Deterministic mask stacks for the differential self-check.

    N values straddle word boundaries (ragged tails for both the bool
    and the packed layout), one grid carries missing values (rows
    absent from every mask of a dimension), and one range is forced
    all-ones/all-zero so saturated masks are exercised.
    """
    stacks: list[tuple[np.ndarray, bool]] = []
    rng = np.random.default_rng(271828)
    for n_points, n_dims, phi in ((67, 4, 3), (128, 3, 4), (193, 5, 2)):
        codes = rng.integers(0, phi, size=(n_points, n_dims)).astype(np.int16)
        codes[rng.random(codes.shape) < 0.15] = -1
        codes[:, 0] = 0  # dimension 0 range 0: an all-ones mask
        bool_stack = np.zeros((n_dims, phi, n_points), dtype=bool)
        for j in range(n_dims):
            col = codes[:, j]
            observed = col >= 0
            bool_stack[j, col[observed], np.nonzero(observed)[0]] = True
        stacks.append((bool_stack, False))
        n_bytes = (n_points + 7) // 8
        padded = ((n_bytes + 7) // 8) * 8
        packed = np.zeros((n_dims, phi, padded), dtype=np.uint8)
        for j in range(n_dims):
            packed[j, :, :n_bytes] = np.packbits(bool_stack[j], axis=1)
        stacks.append((packed.view(np.uint64), True))
    return stacks


def _fixture_batches(
    n_dims: int, phi: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Same-k index batches covering k = 1..3, duplicates and siblings."""
    rng = np.random.default_rng(314159)
    batches = []
    for k in range(1, min(3, n_dims) + 1):
        dims = np.sort(
            np.stack([
                rng.choice(n_dims, size=k, replace=False) for _ in range(24)
            ]),
            axis=1,
        ).astype(np.intp)
        ranges = rng.integers(0, phi, size=(24, k)).astype(np.intp)
        # Force exact duplicates and prefix-sharing siblings into the
        # batch — the cases the reference kernel optimizes.
        dims[1] = dims[0]
        ranges[1] = ranges[0]
        dims[2] = dims[0]
        if k > 1:
            ranges[2, :-1] = ranges[0, :-1]
        batches.append((dims, ranges))
    return batches


def verify_kernel(kernel: Kernel, name: str = "<candidate>") -> None:
    """Prove *kernel* bit-identical to the reference on the fixture.

    Raises :class:`BackendConformanceError` naming the first diverging
    batch.  This is the registration gate: a kernel that cannot pass it
    never serves counts.
    """
    for stack, packed in _fixture_grids():
        n_dims, phi = stack.shape[0], stack.shape[1]
        for dims_arr, rng_arr in _fixture_batches(n_dims, phi):
            expected, _ = batch_counts(stack, dims_arr, rng_arr, packed)
            got, stats = kernel(stack, dims_arr, rng_arr, packed)
            got = np.asarray(got)
            if got.shape != expected.shape or not np.array_equal(got, expected):
                raise BackendConformanceError(
                    f"kernel {name!r} failed the differential self-check: "
                    f"counts diverge from the reference on a "
                    f"{'packed' if packed else 'boolean'} stack "
                    f"(k={dims_arr.shape[1]}, N≈{stack.shape[2]} words); "
                    "it cannot be registered"
                )
            if not isinstance(stats, dict) or not (
                {"words_and", "prefix_reuse"} <= set(stats)
            ):
                raise BackendConformanceError(
                    f"kernel {name!r} must return a stats dict with "
                    "'words_and' and 'prefix_reuse'"
                )


def register_kernel(name: str, kernel: Kernel, *, verify: bool = True) -> None:
    """Register a batch-counting kernel under *name*.

    With ``verify=True`` (the default for anything non-builtin) the
    kernel must pass :func:`verify_kernel` first; a diverging kernel
    raises and is **not** registered.
    """
    if name in _KERNELS:
        raise ValidationError(f"kernel {name!r} is already registered")
    if verify:
        verify_kernel(kernel, name)
        _VERIFIED.add(name)
    _KERNELS[name] = kernel


def resolve_kernel(name: str) -> Kernel:
    """The kernel registered under *name*, verified before first use.

    Builtin kernels registered lazily (unverified) are proven against
    the reference here, once per process — so even the builtin native
    kernel never serves a count without having passed the differential
    self-check in the environment it actually runs in.
    """
    try:
        kernel = _KERNELS[name]
    except KeyError:
        raise ValidationError(
            f"unknown counting kernel {name!r}; registered kernels: "
            f"{sorted(_KERNELS)}"
        ) from None
    if name not in _VERIFIED:
        if name != _REFERENCE_KERNEL:
            verify_kernel(kernel, name)
        _VERIFIED.add(name)
    return kernel


def registered_kernels() -> list[str]:
    """Registered kernel names, sorted."""
    return sorted(_KERNELS)


def register_backend(spec: BackendSpec, *, verify: bool = True) -> None:
    """Register a counting backend.

    The spec's kernel must already be registered; with ``verify=True``
    it is additionally proven against the reference *now* (raising
    :class:`BackendConformanceError` on divergence), so a backend whose
    kernel cannot pass the differential self-check cannot be
    registered.
    """
    if spec.name in _BACKENDS:
        raise ValidationError(f"backend {spec.name!r} is already registered")
    if spec.kernel not in _KERNELS:
        raise ValidationError(
            f"backend {spec.name!r} names unregistered kernel "
            f"{spec.kernel!r}; register the kernel first "
            f"(registered: {sorted(_KERNELS)})"
        )
    if spec.fallback is not None and spec.fallback not in _BACKENDS:
        raise ValidationError(
            f"backend {spec.name!r} names unregistered fallback "
            f"{spec.fallback!r}; register the fallback first "
            f"(registered: {registered_backends()})"
        )
    if verify:
        resolve_kernel(spec.kernel)
    _BACKENDS[spec.name] = spec


def registered_backends() -> list[str]:
    """Registered backend names, sorted — the ``--count-backend`` menu."""
    return sorted(_BACKENDS)


def get_backend(name: str) -> BackendSpec:
    """Look up a backend spec, with a menu of valid names on failure."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValidationError(
            f"unknown counting backend {name!r}; registered backends: "
            f"{registered_backends()}"
        ) from None


def degradation_chain(name: str) -> list[str]:
    """The downgrade path from backend *name* to the chain's bottom.

    E.g. ``degradation_chain("process-native")`` →
    ``["process-native", "native", "serial"]``.  Registration validates
    fallbacks exist and are not self-referential; a cycle introduced by
    third-party registrations is cut here rather than looping forever.
    """
    chain = [get_backend(name).name]
    seen = {chain[0]}
    while True:
        fallback = get_backend(chain[-1]).fallback
        if fallback is None or fallback in seen:
            return chain
        chain.append(fallback)
        seen.add(fallback)


# ----------------------------------------------------------------------
# builtins — kernels unverified at import (proven on first resolution),
# so importing the registry never triggers JIT or C compilation.
# ----------------------------------------------------------------------
register_kernel("numpy", batch_counts, verify=False)
register_kernel("native", native_batch_counts, verify=False)

register_backend(
    BackendSpec(
        name="serial",
        kernel="numpy",
        uses_pool=False,
        description="vectorized numpy kernel, in-process",
    ),
    verify=False,
)
register_backend(
    BackendSpec(
        name="process",
        kernel="numpy",
        uses_pool=True,
        description="numpy kernel fanned out over the shared-memory pool",
        fallback="serial",
    ),
    verify=False,
)
register_backend(
    BackendSpec(
        name="native",
        kernel="native",
        uses_pool=False,
        description="compiled kernel (numba → C → numpy fallback), in-process",
        fallback="serial",
    ),
    verify=False,
)
register_backend(
    BackendSpec(
        name="process-native",
        kernel="native",
        uses_pool=True,
        description="compiled kernel inside each shared-memory pool worker",
        fallback="native",
    ),
    verify=False,
)
