"""Out-of-core cube counting: mmapped mask shards + resumable merging.

The sparsity coefficient (Eq. 1) consumes only cube *counts*, and a
cube count is a popcount of AND-ed membership masks — a quantity that
is **additive across row shards** of the dataset.  That one algebraic
fact is the whole scaling story: split the N points into row shards,
bit-pack each shard's per-(dimension, range) membership masks once,
persist them to disk, and count any batch of cubes by streaming one
shard at a time through the exact same batch kernels the in-memory
counters run.  Nothing in the search layer changes; peak memory is one
shard's stack plus the batch accumulator, independent of N.

Three pieces implement this:

:class:`ShardedMaskStore`
    Writes the uint64-padded packed mask stacks
    (:func:`~repro.grid.packed_counter.pack_codes_block`) to one binary
    file per row shard — each landed atomically, with a JSON manifest
    installed last so a killed build never leaves a readable-but-wrong
    store — and maps them back as read-only ``numpy.memmap`` views.
    Views are opened lazily, one shard at a time, so counting touches a
    bounded window of address space no matter how many shards exist.

:class:`ShardedCounter`
    A drop-in :class:`~repro.grid.counter.CubeCounter` whose masks live
    in the store instead of RAM.  Batches run per shard through the
    backend registry's kernels (numpy reference or compiled native);
    under a pool backend the shards fan out across
    :class:`~repro.grid.parallel.ShardedCountingPool` workers, each of
    which opens its *own* mmap view — no shared-memory copy of the
    stack exists anywhere.  Per-shard merged counts are bit-identical
    to the in-memory counters (differentially tested).

:class:`ShardCheckpointer`
    Records per-shard completion of the in-flight batch through a
    :class:`~repro.run.checkpoint.CheckpointStore` stream.  A run
    killed mid-dataset resumes by replaying the recorded shard counts
    and counting only the remainder — bit-identical, because shard
    counts are pure functions of (store, cube batch).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from collections.abc import Iterable, Mapping

import numpy as np

from .._atomic import atomic_write_bytes, atomic_write_json
from .._validation import check_positive_int
from ..core.params import CountingBackend
from ..core.subspace import Subspace
from ..engine.events import emit_event
from ..exceptions import CheckpointError, ResourceError, ValidationError
from ..resilience.faults import maybe_inject
from ..resilience.retry import RetryPolicy
from ..run.checkpoint import CheckpointStore
from .cells import CellAssignment
from .counter import CubeCounter
from .packed_counter import pack_codes_block

__all__ = [
    "DEFAULT_SHARD_ROWS",
    "STORE_FORMAT_VERSION",
    "ShardCheckpointer",
    "ShardedCounter",
    "ShardedMaskStore",
    "group_digest",
]

logger = logging.getLogger(__name__)

# Version 2 added a per-shard sha256 to each manifest entry, enabling
# corruption detection (verify_shard) and targeted quarantine-rebuild.
# A v1 store fails open() validation, which the build() reuse path
# treats as "rebuild from codes" — migration is automatic.
STORE_FORMAT_VERSION = 2
MANIFEST_NAME = "manifest.json"

#: Retry policy for shard reads: transient I/O errors get two quick
#: retries before the quarantine-rebuild path takes over.
_SHARD_READ_RETRY = RetryPolicy(max_attempts=3, backoff=0.02, backoff_cap=0.25)

#: Default rows per shard: 2^20 points keep one shard's packed stack at
#: ``d·φ·128 KiB`` (e.g. 40 MB at d=32, φ=10) — big enough that the
#: kernel dominates per-shard overhead, small enough that dozens of
#: shards fit any memory budget one at a time.
DEFAULT_SHARD_ROWS = 1 << 20


def _codes_chunk_bytes(chunk: np.ndarray) -> bytes:
    """Canonical bytes of one code chunk for the store fingerprint."""
    return np.ascontiguousarray(chunk, dtype=np.int16).tobytes()


def group_digest(
    fingerprint: str, dims_arr: np.ndarray, rng_arr: np.ndarray
) -> str:
    """Identity of one (store, cube batch) counting job.

    Shard counts recorded under this digest may be replayed on resume
    *only* for the identical store and the identical batch — any change
    to the data, the cubes, or their order produces a different digest
    and the recorded counts are ignored.
    """
    digest = hashlib.sha256()
    digest.update(fingerprint.encode())
    digest.update(str(dims_arr.shape).encode())
    digest.update(np.ascontiguousarray(dims_arr, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(rng_arr, dtype=np.int64).tobytes())
    return digest.hexdigest()


class ShardedMaskStore:
    """Packed membership masks for one dataset, sharded by rows on disk.

    Instances are returned by :meth:`build` / :meth:`build_from_chunks`
    (which write the shards) or :meth:`open` (which validates an
    existing directory).  All views are read-only; a store is immutable
    once its manifest is installed.
    """

    def __init__(self, directory: str | os.PathLike[str], manifest: Mapping):
        self.directory = Path(directory)
        self._manifest = dict(manifest)
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        manifest = self._manifest
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise ValidationError(
                f"sharded mask store {self.directory} has format version "
                f"{version!r}; this library reads {STORE_FORMAT_VERSION}"
            )
        for key in ("n_points", "n_dims", "n_ranges", "shard_rows",
                    "codes_sha256", "shards"):
            if key not in manifest:
                raise ValidationError(
                    f"sharded mask store manifest {self.directory} is "
                    f"missing {key!r}"
                )
        expected_stop = 0
        for entry in manifest["shards"]:
            path = self.directory / entry["file"]
            if entry["start"] != expected_stop:
                raise ValidationError(
                    f"sharded mask store {self.directory}: shard "
                    f"{entry['file']} starts at row {entry['start']}, "
                    f"expected {expected_stop}"
                )
            expected_stop = entry["stop"]
            if "sha256" not in entry:
                raise ValidationError(
                    f"sharded mask store {self.directory}: shard "
                    f"{entry['file']} has no checksum in the manifest"
                )
            size = (
                manifest["n_dims"] * manifest["n_ranges"] * entry["row_bytes"]
            )
            if not path.exists() or path.stat().st_size != size:
                raise ValidationError(
                    f"sharded mask store {self.directory}: shard file "
                    f"{entry['file']} is missing or has the wrong size "
                    f"(expected {size} bytes)"
                )
        if expected_stop != manifest["n_points"]:
            raise ValidationError(
                f"sharded mask store {self.directory}: shards cover "
                f"{expected_stop} rows but the manifest declares "
                f"{manifest['n_points']} points"
            )

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return int(self._manifest["n_points"])

    @property
    def n_dims(self) -> int:
        return int(self._manifest["n_dims"])

    @property
    def n_ranges(self) -> int:
        return int(self._manifest["n_ranges"])

    @property
    def shard_rows(self) -> int:
        return int(self._manifest["shard_rows"])

    @property
    def n_shards(self) -> int:
        return len(self._manifest["shards"])

    @property
    def fingerprint(self) -> str:
        """Identity of the store: data bytes + grid shape, one hash."""
        digest = hashlib.sha256()
        digest.update(str(self._manifest["codes_sha256"]).encode())
        digest.update(
            f":{self.n_points}:{self.n_dims}:{self.n_ranges}".encode()
        )
        return digest.hexdigest()

    def nbytes_on_disk(self) -> int:
        """Total bytes of all packed shard files."""
        return sum(
            self.n_dims * self.n_ranges * entry["row_bytes"]
            for entry in self._manifest["shards"]
        )

    def shard_bounds(self, index: int) -> tuple[int, int]:
        """Half-open global row interval ``[start, stop)`` of one shard."""
        entry = self._manifest["shards"][index]
        return int(entry["start"]), int(entry["stop"])

    def shard_row_bytes(self, index: int) -> int:
        """Packed bytes per mask row in one shard (uint64-padded)."""
        return int(self._manifest["shards"][index]["row_bytes"])

    # ------------------------------------------------------------------
    def shard_stack8(self, index: int) -> np.ndarray:
        """Read-only mmapped ``(d, φ, row_bytes)`` uint8 stack of a shard.

        A fresh view per call, dropped when the caller releases it —
        the store never accumulates open mappings, which is what keeps
        counting inside a fixed address-space budget regardless of
        shard count.
        """
        entry = self._manifest["shards"][index]
        maybe_inject("shard_read", shard=index, file=entry["file"])
        return np.memmap(
            self.directory / entry["file"],
            dtype=np.uint8,
            mode="r",
            shape=(self.n_dims, self.n_ranges, int(entry["row_bytes"])),
        )

    def shard_words(self, index: int) -> np.ndarray:
        """The same shard stack viewed as uint64 words (batch-kernel form)."""
        return self.shard_stack8(index).view(np.uint64)

    def verify_shard(self, index: int) -> None:
        """Check one shard's bytes against its manifest checksum.

        Raises :class:`~repro.exceptions.ValidationError` on mismatch
        (bit rot, torn write outside our protocol, tampering) — the
        signal the counter's quarantine-rebuild path acts on.  Reads
        the whole shard once, so it is opt-in per read
        (``verify_reads=True`` on :class:`ShardedCounter`).
        """
        entry = self._manifest["shards"][index]
        path = self.directory / entry["file"]
        data = path.read_bytes()
        if hashlib.sha256(data).hexdigest() != entry["sha256"]:
            raise ValidationError(
                f"sharded mask store {self.directory}: shard file "
                f"{entry['file']} is corrupt (checksum mismatch)"
            )

    def rebuild_shard(self, index: int, codes: np.ndarray) -> None:
        """Re-pack and atomically rewrite one shard from grid codes.

        *codes* is the full ``(N, d)`` code matrix the store was built
        from; only this shard's row block is re-packed.  The rebuilt
        bytes must reproduce the manifest checksum — packing is
        deterministic, so a mismatch means *codes* differ from the
        build-time data and the rewrite is refused.
        """
        entry = self._manifest["shards"][index]
        start, stop = int(entry["start"]), int(entry["stop"])
        block = np.ascontiguousarray(codes[start:stop], dtype=np.int16)
        data = pack_codes_block(block, self.n_ranges).tobytes()
        if hashlib.sha256(data).hexdigest() != entry["sha256"]:
            raise ValidationError(
                f"rebuilt shard {index} of {self.directory} does not "
                "reproduce the manifest checksum; the supplied codes "
                "differ from the data the store was built from"
            )
        atomic_write_bytes(self.directory / entry["file"], data)
        logger.warning(
            "rebuilt corrupt shard %d of %s from in-memory codes",
            index, self.directory,
        )

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory: str | os.PathLike[str]) -> ShardedMaskStore:
        """Validate and open an existing store directory."""
        path = Path(directory) / MANIFEST_NAME
        if not path.exists():
            raise ValidationError(
                f"no sharded mask store at {directory} (missing "
                f"{MANIFEST_NAME})"
            )
        try:
            maybe_inject("shard_open", directory=str(directory))
            manifest = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            raise ValidationError(
                f"sharded mask store manifest {path} is unreadable: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise ValidationError(
                f"sharded mask store manifest {path} is malformed"
            )
        return cls(directory, manifest)

    @classmethod
    def build(
        cls,
        cells: CellAssignment,
        directory: str | os.PathLike[str],
        *,
        shard_rows: int = DEFAULT_SHARD_ROWS,
    ) -> ShardedMaskStore:
        """Build (or reuse) a store for an in-memory grid assignment.

        If *directory* already holds a store for byte-identical codes
        with the same *shard_rows*, it is reused as-is — this is what
        makes ``detect(..., resume=True)`` with ``--mmap-dir`` cheap:
        the resumed run re-opens the shards instead of re-packing them.
        """
        if not isinstance(cells, CellAssignment):
            raise ValidationError(
                f"cells must be a CellAssignment, got {type(cells).__name__}"
            )
        shard_rows = check_positive_int(shard_rows, "shard_rows")
        codes = cells.codes
        digest = hashlib.sha256(b"int16")
        digest.update(_codes_chunk_bytes(codes))
        codes_sha = digest.hexdigest()
        manifest_path = Path(directory) / MANIFEST_NAME
        if manifest_path.exists():
            try:
                # (.open is this class's read-only opener, not file I/O.)
                existing = cls.open(directory)  # repro-lint: disable=RPL003
            except ValidationError:
                existing = None
            if (
                existing is not None
                and existing._manifest["codes_sha256"] == codes_sha
                and existing.shard_rows == shard_rows
                and existing.n_ranges == cells.n_ranges
            ):
                logger.info(
                    "reusing sharded mask store at %s (%d shards)",
                    directory, existing.n_shards,
                )
                return existing
        chunks = (
            codes[lo : lo + shard_rows]
            for lo in range(0, cells.n_points, shard_rows)
        )
        return cls.build_from_chunks(
            chunks, directory, n_ranges=cells.n_ranges, shard_rows=shard_rows
        )

    @classmethod
    def build_from_chunks(
        cls,
        chunks: Iterable[np.ndarray],
        directory: str | os.PathLike[str],
        *,
        n_ranges: int,
        shard_rows: int = DEFAULT_SHARD_ROWS,
    ) -> ShardedMaskStore:
        """Build a store from streamed code chunks of arbitrary sizes.

        *chunks* yields ``(m_i, d)`` integer code blocks (as produced by
        ``discretizer.transform(chunk).codes``); no stage materializes
        more than ``shard_rows`` rows of codes or one shard's packed
        stack.  Chunk boundaries do not affect the result — rows are
        re-blocked into exact ``shard_rows`` shards (the last one
        ragged), so the store is byte-identical to one built from the
        concatenated array.
        """
        n_ranges = check_positive_int(n_ranges, "n_ranges", minimum=2)
        shard_rows = check_positive_int(shard_rows, "shard_rows")
        out_dir = Path(directory)
        out_dir.mkdir(parents=True, exist_ok=True)
        manifest_path = out_dir / MANIFEST_NAME
        # Drop any stale manifest first: mid-build kills must never
        # leave an old manifest pointing at a half-rewritten shard set.
        try:
            manifest_path.unlink()
        except FileNotFoundError:
            pass

        digest = hashlib.sha256(b"int16")
        shards: list[dict] = []
        buffered: list[np.ndarray] = []
        n_buffered = 0
        n_dims: int | None = None
        n_points = 0

        def flush(block: np.ndarray) -> None:
            stack8 = pack_codes_block(block, n_ranges)
            data = stack8.tobytes()
            name = f"shard_{len(shards):05d}.bin"
            atomic_write_bytes(out_dir / name, data)
            start = shards[-1]["stop"] if shards else 0
            shards.append(
                {
                    "file": name,
                    "start": start,
                    "stop": start + block.shape[0],
                    "row_bytes": int(stack8.shape[2]),
                    "sha256": hashlib.sha256(data).hexdigest(),
                }
            )

        for chunk in chunks:
            block = np.ascontiguousarray(chunk, dtype=np.int16)
            if block.ndim != 2:
                raise ValidationError(
                    f"code chunks must be 2-D, got shape {block.shape}"
                )
            if n_dims is None:
                n_dims = block.shape[1]
            elif block.shape[1] != n_dims:
                raise ValidationError(
                    f"code chunk has {block.shape[1]} columns, previous "
                    f"chunks had {n_dims}"
                )
            if block.size and int(block.max()) >= n_ranges:
                raise ValidationError(
                    f"code chunk contains range {int(block.max())} but the "
                    f"grid has φ={n_ranges} ranges"
                )
            digest.update(_codes_chunk_bytes(block))
            n_points += block.shape[0]
            buffered.append(block)
            n_buffered += block.shape[0]
            while n_buffered >= shard_rows:
                merged = (
                    buffered[0]
                    if len(buffered) == 1
                    else np.concatenate(buffered, axis=0)
                )
                flush(merged[:shard_rows])
                remainder = merged[shard_rows:]
                buffered = [remainder] if remainder.shape[0] else []
                n_buffered = remainder.shape[0]
        if n_buffered:
            flush(
                buffered[0]
                if len(buffered) == 1
                else np.concatenate(buffered, axis=0)
            )
        if n_points == 0 or n_dims is None:
            raise ValidationError(
                "cannot build a sharded mask store from zero rows"
            )
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "n_points": n_points,
            "n_dims": n_dims,
            "n_ranges": n_ranges,
            "shard_rows": shard_rows,
            "codes_sha256": digest.hexdigest(),
            "shards": shards,
        }
        # Installed last, atomically: a store is visible only once every
        # shard it references is fully on disk.
        atomic_write_json(manifest_path, manifest)
        logger.info(
            "built sharded mask store at %s: N=%d, d=%d, phi=%d, "
            "%d shards x %d rows (%.1f MB on disk)",
            out_dir, n_points, n_dims, n_ranges, len(shards), shard_rows,
            sum(n_dims * n_ranges * s["row_bytes"] for s in shards) / 1e6,
        )
        return cls(out_dir, manifest)

    def append_rows(
        self, block: np.ndarray, *, prior_codes: np.ndarray
    ) -> ShardedMaskStore:
        """Extend the store with new rows, re-packing only the tail.

        *block* holds the ``(m, d)`` new grid codes; *prior_codes* is
        the full code matrix the store was built from (refused — like
        :meth:`rebuild_shard` — if it does not reproduce the manifest's
        data fingerprint).  Complete ``shard_rows``-sized shards are
        kept byte-for-byte; only the ragged tail shard is re-packed
        from the old tail rows plus the new block, so the resulting
        store is byte-identical to one built from the concatenated
        codes while the work stays proportional to the appended rows.

        Returns the **new** store instance; like a build, the old
        manifest is dropped first so a mid-append kill leaves a
        rebuildable directory, never a readable-but-wrong store.
        """
        block = np.ascontiguousarray(block, dtype=np.int16)
        if block.ndim != 2 or block.shape[1] != self.n_dims:
            raise ValidationError(
                f"appended codes must have shape (m, {self.n_dims}), "
                f"got {block.shape}"
            )
        if block.size and int(block.max()) >= self.n_ranges:
            raise ValidationError(
                f"appended codes contain range {int(block.max())} but the "
                f"grid has φ={self.n_ranges} ranges"
            )
        prior = np.ascontiguousarray(prior_codes, dtype=np.int16)
        if prior.shape != (self.n_points, self.n_dims):
            raise ValidationError(
                f"prior_codes must have shape ({self.n_points}, "
                f"{self.n_dims}), got {prior.shape}"
            )
        prior_digest = hashlib.sha256(b"int16")
        prior_digest.update(_codes_chunk_bytes(prior))
        if prior_digest.hexdigest() != self._manifest["codes_sha256"]:
            raise ValidationError(
                f"prior_codes do not reproduce the data fingerprint of "
                f"{self.directory}; refusing to append onto a store built "
                "from different data"
            )
        if block.shape[0] == 0:
            return self
        shard_rows = self.shard_rows
        n_complete = self.n_points // shard_rows
        kept = [dict(entry) for entry in self._manifest["shards"][:n_complete]]
        tail_start = n_complete * shard_rows

        manifest_path = self.directory / MANIFEST_NAME
        try:
            manifest_path.unlink()
        except FileNotFoundError:
            pass

        digest = hashlib.sha256(b"int16")
        digest.update(_codes_chunk_bytes(prior))
        digest.update(_codes_chunk_bytes(block))
        shards = list(kept)
        tail = np.concatenate([prior[tail_start:], block], axis=0)
        for lo in range(0, tail.shape[0], shard_rows):
            piece = tail[lo : lo + shard_rows]
            stack8 = pack_codes_block(piece, self.n_ranges)
            data = stack8.tobytes()
            name = f"shard_{len(shards):05d}.bin"
            atomic_write_bytes(self.directory / name, data)
            start = shards[-1]["stop"] if shards else 0
            shards.append(
                {
                    "file": name,
                    "start": start,
                    "stop": start + piece.shape[0],
                    "row_bytes": int(stack8.shape[2]),
                    "sha256": hashlib.sha256(data).hexdigest(),
                }
            )
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "n_points": self.n_points + block.shape[0],
            "n_dims": self.n_dims,
            "n_ranges": self.n_ranges,
            "shard_rows": shard_rows,
            "codes_sha256": digest.hexdigest(),
            "shards": shards,
        }
        atomic_write_json(manifest_path, manifest)
        logger.info(
            "appended %d rows to sharded mask store at %s (%d shards, "
            "%d re-packed)",
            block.shape[0], self.directory, len(shards),
            len(shards) - len(kept),
        )
        return ShardedMaskStore(self.directory, manifest)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedMaskStore(N={self.n_points}, d={self.n_dims}, "
            f"phi={self.n_ranges}, shards={self.n_shards} at "
            f"{self.directory})"
        )


class _ShardGroupProgress:
    """Per-shard completion of one counting group within the stream.

    The stream payload holds *several* groups keyed by digest (a batch
    of mixed-k cubes counts one group per k, sequentially), so a kill
    landing in a later group never clobbers the earlier, already-merged
    ones — on resume those replay wholesale from their recorded counts.
    """

    def __init__(
        self, store: CheckpointStore, name: str, digest: str, n_shards: int
    ):
        self._store = store
        self._name = name
        self._digest = digest
        self._n_shards = n_shards
        self._payload: dict = {
            "format_version": ShardCheckpointer.FORMAT_VERSION,
            "groups": {},
        }
        self.completed: dict[int, np.ndarray] = {}
        if store.exists(name):
            try:
                payload = store.load(name)
            except CheckpointError:
                payload = None
            if (
                isinstance(payload, dict)
                and payload.get("format_version")
                == ShardCheckpointer.FORMAT_VERSION
                and isinstance(payload.get("groups"), dict)
            ):
                self._payload = payload
        entry = self._payload["groups"].get(digest)
        if entry is None or entry.get("n_shards") != n_shards:
            # A different batch (or an older format): the recorded
            # counts do not apply to this group.
            return
        for key, counts in entry.get("completed", {}).items():
            self.completed[int(key)] = np.asarray(counts, dtype=np.int64)

    def record(self, shard_id: int, counts: np.ndarray) -> None:
        """Persist one shard's counts (atomic, with rollback sibling).

        A full disk (:class:`~repro.exceptions.ResourceError`) only
        loses resume granularity — an interrupted run recounts this
        shard — so it degrades to a warning instead of killing the run.
        """
        self.completed[shard_id] = np.asarray(counts, dtype=np.int64)
        groups = self._payload["groups"]
        # Re-insert at the end: insertion order is recency, and the
        # oldest groups fall off once the retention cap is hit.
        groups.pop(self._digest, None)
        groups[self._digest] = {
            "n_shards": self._n_shards,
            "completed": {
                str(sid): arr.tolist()
                for sid, arr in sorted(self.completed.items())
            },
        }
        while len(groups) > ShardCheckpointer.MAX_GROUPS:
            groups.pop(next(iter(groups)))
        try:
            self._store.save(self._name, self._payload)
        except ResourceError as exc:
            logger.warning(
                "shard progress write for %r failed (%s); resume will "
                "recount shard %d", self._name, exc, shard_id,
            )
            if self._store.report is not None:
                self._store.report.record_recovery("atomic_write")


class ShardCheckpointer:
    """Shard-grained progress for out-of-core counting batches.

    One :class:`~repro.run.checkpoint.CheckpointStore` stream holds the
    in-flight batch's counting groups: per group, a digest of (store
    fingerprint, cube batch) plus the counts of every shard already
    merged.  A killed run that re-reaches the same groups — which
    deterministic engines do, since a group is a pure function of the
    search state — replays the recorded counts and continues with the
    first unfinished shard; a digest mismatch simply ignores the entry,
    so stale state can never corrupt counts.  The counter clears the
    stream once a whole batch completes (:meth:`clear`), and the
    retention cap bounds the stream even if batches change between
    kills.
    """

    FORMAT_VERSION = 2
    #: Most-recent counting groups retained in the stream.  A batch
    #: holds one group per distinct cube size k, so anything above the
    #: data dimensionality is effectively unlimited within a batch.
    MAX_GROUPS = 16

    def __init__(self, store: CheckpointStore, name: str = "shard_counts"):
        if not isinstance(store, CheckpointStore):
            raise ValidationError(
                f"store must be a CheckpointStore, got {type(store).__name__}"
            )
        self.store = store
        self.name = name

    def group(self, digest: str, n_shards: int) -> _ShardGroupProgress:
        """Open (or resume) progress for the group identified by *digest*."""
        return _ShardGroupProgress(self.store, self.name, digest, n_shards)

    def clear(self) -> None:
        """Drop the stream (called once a whole batch has merged)."""
        self.store.delete(self.name)


class ShardedCounter(CubeCounter):
    """A :class:`~repro.grid.counter.CubeCounter` over an on-disk store.

    Drop-in for the in-memory counters: every public method behaves
    identically (bit-identical counts, differentially tested), but the
    membership masks live in a :class:`ShardedMaskStore` and batches
    stream one shard at a time — peak memory is one shard's stack plus
    the batch accumulator, independent of N.

    Parameters
    ----------
    store:
        The mask shards to count over.
    cells:
        Optional in-memory :class:`~repro.grid.cells.CellAssignment`
        matching the store.  When provided, the code-dependent paths
        (:meth:`extension_counts`, used by depth-first brute force and
        the optimized crossover) work exactly as on the in-memory
        counters; a pure out-of-core counter (``cells=None``) supports
        every mask-based path and raises a clear error for those two.
    cache_size, backend:
        As on :class:`~repro.grid.counter.CubeCounter`.  Pool backends
        dispatch whole shards to
        :class:`~repro.grid.parallel.ShardedCountingPool` workers that
        open their own mmap views.
    checkpointer:
        Optional :class:`ShardCheckpointer`; when set, every counted
        shard of the in-flight batch is recorded so an interrupted run
        resumes mid-dataset instead of recounting finished shards.
    verify_reads:
        Check every shard against its manifest checksum before
        counting it.  A mismatch (bit rot, torn write outside the
        atomic protocol) triggers quarantine-plus-rebuild when *cells*
        is available — re-packing that one shard from the in-memory
        codes, bit-identical by construction — and a typed
        :class:`~repro.exceptions.ResourceError` otherwise.  Off by
        default: it re-reads each shard once per use.
    """

    _packed_stack = True

    def __init__(
        self,
        store: ShardedMaskStore,
        cells: CellAssignment | None = None,
        cache_size: int = 200_000,
        backend: CountingBackend | None = None,
        checkpointer: ShardCheckpointer | None = None,
        verify_reads: bool = False,
    ):
        if not isinstance(store, ShardedMaskStore):
            raise ValidationError(
                f"store must be a ShardedMaskStore, got {type(store).__name__}"
            )
        if cells is not None:
            if not isinstance(cells, CellAssignment):
                raise ValidationError(
                    f"cells must be a CellAssignment, got {type(cells).__name__}"
                )
            if (
                cells.n_points != store.n_points
                or cells.n_dims != store.n_dims
                or cells.n_ranges != store.n_ranges
            ):
                raise ValidationError(
                    f"cells (N={cells.n_points}, d={cells.n_dims}, "
                    f"phi={cells.n_ranges}) do not match the store "
                    f"(N={store.n_points}, d={store.n_dims}, "
                    f"phi={store.n_ranges})"
                )
        if checkpointer is not None and not isinstance(
            checkpointer, ShardCheckpointer
        ):
            raise ValidationError(
                f"checkpointer must be a ShardCheckpointer, got "
                f"{type(checkpointer).__name__}"
            )
        self.store = store
        self.cells = cells
        self.shard_checkpointer = checkpointer
        self.n_shards_counted = 0
        self.n_shards_resumed = 0
        self._verify_reads = bool(verify_reads)
        self._read_retry = _SHARD_READ_RETRY
        self._init_runtime(cache_size, backend)

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return self.store.n_points

    @property
    def n_dims(self) -> int:
        return self.store.n_dims

    @property
    def n_ranges(self) -> int:
        return self.store.n_ranges

    # ------------------------------------------------------------------
    def _resilient_shard_stack8(self, shard_id: int) -> np.ndarray:
        """One shard's stack, surviving transient errors and corruption.

        Transient ``OSError``\\ s are retried under the shared policy;
        a persistent read failure or checksum mismatch quarantines the
        shard and rebuilds it from the in-memory codes (bit-identical
        by construction).  Without codes to rebuild from, the failure
        surfaces as a typed :class:`~repro.exceptions.ResourceError` —
        never a raw ``OSError``.
        """

        def read() -> np.ndarray:
            if self._verify_reads:
                self.store.verify_shard(shard_id)
            return self.store.shard_stack8(shard_id)

        def on_retry(attempt: int, exc: BaseException) -> None:
            self.resilience.record_retry("shard.read")

        def on_recover(retries: int) -> None:
            self._ladder.recovered("shard_read", shard=shard_id)

        try:
            return self._read_retry.call(
                read,
                describe=f"shard {shard_id} read",
                on_retry=on_retry,
                on_recover=on_recover,
            )
        except (OSError, ValidationError) as exc:
            return self._quarantine_rebuild(shard_id, exc)

    def _resilient_shard_words(self, shard_id: int) -> np.ndarray:
        """The resilient shard stack viewed as uint64 kernel words."""
        return self._resilient_shard_stack8(shard_id).view(np.uint64)

    def _quarantine_rebuild(
        self, shard_id: int, exc: BaseException
    ) -> np.ndarray:
        """Rebuild one bad shard from codes, or fail with a typed error."""
        reason = f"{type(exc).__name__}: {exc}"
        if self.cells is None:
            raise ResourceError(
                f"shard {shard_id} of {self.store.directory} is unreadable "
                f"or corrupt ({reason}) and this counter holds no grid "
                "codes to rebuild it from; rebuild the store from the "
                "source data"
            ) from exc
        self._ladder.quarantine(shard_id, reason)
        self.store.rebuild_shard(shard_id, self.cells.codes)
        try:
            if self._verify_reads:
                self.store.verify_shard(shard_id)
            return self.store.shard_stack8(shard_id)
        except (OSError, ValidationError) as exc2:
            raise ResourceError(
                f"shard {shard_id} of {self.store.directory} is still "
                f"unreadable after a rebuild ({type(exc2).__name__}: "
                f"{exc2}); the storage volume is failing"
            ) from exc2

    def _shard_cube(self, index: int, subspace: Subspace) -> np.ndarray:
        """AND of one shard's packed masks for *subspace* (owned array)."""
        start, stop = self.store.shard_bounds(index)
        n_rows = stop - start
        if not subspace.dims:
            n_bytes = (n_rows + 7) // 8
            out = np.zeros(self.store.shard_row_bytes(index), dtype=np.uint8)
            out[:n_bytes] = 0xFF
            tail = n_rows % 8
            if tail:
                out[n_bytes - 1] = (0xFF << (8 - tail)) & 0xFF
            return out
        stack8 = self._resilient_shard_stack8(index)
        dim0, rng0 = subspace.dims[0], subspace.ranges[0]
        out = np.array(stack8[dim0, rng0])
        for dim, rng in list(subspace)[1:]:
            np.bitwise_and(out, stack8[dim, rng], out=out)
        return out

    def mask(self, subspace: Subspace) -> np.ndarray:
        """Boolean membership mask, reassembled shard by shard."""
        self._check_subspace(subspace)
        out = np.empty(self.n_points, dtype=bool)
        for index in range(self.store.n_shards):
            start, stop = self.store.shard_bounds(index)
            packed = self._shard_cube(index, subspace)
            out[start:stop] = np.unpackbits(
                packed, count=stop - start
            ).view(bool)
        return out

    def _count_uncached(self, subspace: Subspace) -> int:
        total = 0
        for index in range(self.store.n_shards):
            total += int(np.bitwise_count(self._shard_cube(index, subspace)).sum())
        return total

    def extension_counts(self, base_mask: np.ndarray, dim: int) -> np.ndarray:
        if self.cells is None:
            raise ValidationError(
                "extension_counts needs per-point grid codes, which a "
                "pure out-of-core ShardedCounter does not hold; construct "
                "it with cells=..., or use an engine that only counts "
                "cubes (evolutionary with one-point/uniform crossover, "
                "brute_force strategy='level_batch', random search)"
            )
        return super().extension_counts(base_mask, dim)

    def mask_memory_bytes(self) -> int:
        """Resident mask bytes: 0 — the stacks live on disk.

        (:meth:`ShardedMaskStore.nbytes_on_disk` reports the on-disk
        footprint.)
        """
        return 0

    # ------------------------------------------------------------------
    def append_rows(self, codes) -> int:
        """Append rows by extending the on-disk store (tail re-pack only).

        Requires ``cells`` — the store refuses to extend without the
        prior codes proving it is appending onto the data it was built
        from.  Complete shards are untouched; the ragged tail shard is
        re-packed with the new rows and the manifest reinstalled, so
        the extended store is byte-identical to a from-scratch build of
        the concatenated codes.  Memoised counts advance by popcount
        deltas exactly as on the in-memory counters.
        """
        if self.cells is None:
            raise ValidationError(
                "append_rows needs per-point grid codes, which a pure "
                "out-of-core ShardedCounter does not hold; construct it "
                "with cells=..."
            )
        return super().append_rows(codes)

    def _block_stack(self, block: np.ndarray) -> np.ndarray:
        return pack_codes_block(block, self.n_ranges).view(np.uint64)

    def _append_masks(self, block: np.ndarray) -> None:
        # self.cells still holds the pre-append codes here; the base
        # method swaps them after the masks are extended.
        self.store = self.store.append_rows(
            block, prior_codes=self.cells.codes
        )

    # ------------------------------------------------------------------
    def _count_group(self, dims_arr: np.ndarray, rng_arr: np.ndarray) -> np.ndarray:
        """Per-shard counts of one same-k group, merged by summation.

        Shards already recorded by the checkpointer (an interrupted
        earlier attempt at this same group) are replayed; the rest run
        serially — with a cancellation check at every shard boundary —
        or fan out to the mmap worker pool under a pool backend.
        """
        n_cubes = len(dims_arr)
        store = self.store
        total = np.zeros(n_cubes, dtype=np.int64)
        group = None
        if self.shard_checkpointer is not None:
            digest = group_digest(store.fingerprint, dims_arr, rng_arr)
            group = self.shard_checkpointer.group(digest, store.n_shards)
        pending: list[int] = []
        for shard_id in range(store.n_shards):
            recorded = group.completed.get(shard_id) if group is not None else None
            if recorded is not None and recorded.shape == (n_cubes,):
                total += recorded
                self.n_shards_resumed += 1
                emit_event(
                    self.event_sink, "shard_counted",
                    shard=shard_id, action="resumed", cubes=n_cubes,
                )
            else:
                pending.append(shard_id)
        pool = None
        if self._spec.uses_pool and pending:
            pool = self._ensure_pool()
        if pool is not None:
            chunks = [(shard_id, dims_arr, rng_arr) for shard_id in pending]
            results = pool.map_chunks(
                chunks, cancel_token=self.cancel_token,
                event_sink=self.event_sink,
            )
            if pool.is_degraded:
                logger.warning(
                    "sharded counting pool degraded beyond repair (%s); "
                    "remaining batches run serially",
                    self.health.summary(),
                )
                self.close()
                self._pool_failed = True
            self.n_parallel_chunks += len(chunks)
            for shard_id, (counts, words, reuse) in zip(
                pending, results, strict=True
            ):
                counts = np.asarray(counts, dtype=np.int64)
                self.n_words_and += int(words)
                self.n_prefix_reuse += int(reuse)
                total += counts
                self.n_shards_counted += 1
                emit_event(
                    self.event_sink, "shard_counted",
                    shard=shard_id, action="counted", cubes=n_cubes,
                )
                if group is not None:
                    group.record(shard_id, counts)
        else:
            for shard_id in pending:
                self._check_cancelled()
                counts = self._serial_group_counts(
                    self._resilient_shard_words(shard_id), dims_arr, rng_arr
                )
                total += counts
                self.n_shards_counted += 1
                emit_event(
                    self.event_sink, "shard_counted",
                    shard=shard_id, action="counted", cubes=n_cubes,
                )
                if group is not None:
                    group.record(shard_id, counts)
        return total

    def _count_keys(self, keys: list[tuple]) -> np.ndarray:
        counts = super()._count_keys(keys)
        # Every group of the batch merged: the progress stream has
        # served its purpose.  (A kill anywhere above leaves it behind
        # for the resumed run to replay.)
        if self.shard_checkpointer is not None:
            self.shard_checkpointer.clear()
        return counts

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        """The lazy mmap worker pool (no shm copy; see ShardedCountingPool)."""
        if self._pool is not None:
            return self._pool
        if self._pool_failed:
            return None
        try:
            from .parallel import ShardedCountingPool

            self._pool = ShardedCountingPool(
                self.store,
                self.backend,
                self.health,
                kernel=self._spec.kernel,
                report=self.resilience,
                shard_reader=self._resilient_shard_words,
            )
        except Exception as exc:  # repro-lint: disable=RPL009
            logger.warning(
                "sharded process backend unavailable (%s); falling back to "
                "serial",
                exc,
            )
            self.health.pool_unavailable = True
            self._pool_failed = True
            self._ladder.apply(
                "counting-pool", self.backend.kind, "serial",
                f"pool unavailable: {exc}",
            )
            return None
        return self._pool

    # ------------------------------------------------------------------
    def cache_stats(self) -> dict:
        stats = super().cache_stats()
        stats["n_shards"] = self.store.n_shards
        stats["shard_rows"] = self.store.shard_rows
        stats["shards_counted"] = self.n_shards_counted
        stats["shards_resumed"] = self.n_shards_resumed
        stats["store_bytes"] = self.store.nbytes_on_disk()
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedCounter(N={self.n_points}, d={self.n_dims}, "
            f"phi={self.n_ranges}, shards={self.store.n_shards})"
        )
