"""Run telemetry for the counting backend: the ``backend_health`` record.

One :class:`BackendHealth` instance lives on each
:class:`~repro.grid.counter.CubeCounter` for the whole detection run.
The serial backend never touches it (all counters stay zero, which is
itself the signal that nothing degraded); the process backend's
resilient dispatcher (:mod:`repro.grid.parallel`) records every retry,
timeout, pool rebuild and serial-fallback event into it, plus a
log-scale latency histogram of successful parallel chunks.

The record surfaces as ``result.stats["backend_health"]`` so ensemble
drivers and operators can tell a clean run from one that silently
degraded to the (bit-identical) serial kernel.

This module also hosts the grid *occupancy drift* check
(:func:`check_grid_drift`): the serving-time counterpart that tells an
incrementally updated :class:`~repro.model.GridModel` when its frozen
equi-depth grid no longer matches the data flowing through it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "BackendHealth",
    "GridDriftReport",
    "LATENCY_BUCKETS",
    "check_grid_drift",
    "occupancy_divergence",
]

#: Upper edges (seconds) of the per-chunk latency histogram buckets;
#: latencies above the last edge land in the overflow bucket.
LATENCY_BUCKETS = (0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0)


class BackendHealth:
    """Mutable counters describing one run's counting-backend behaviour.

    Attributes
    ----------
    retries:
        Chunk dispatch attempts that failed and were re-queued.
    timeouts:
        Chunks that exceeded the backend's per-chunk ``timeout``.
    rebuilds:
        Times the worker pool was torn down and respawned after
        breaking (worker death, failed initializer, wedged worker).
    fallbacks:
        Chunks whose counts were recovered by the in-process serial
        kernel after the parallel path gave up on them.
    chunks_parallel / chunks_serial:
        Chunks that completed on the pool vs. through the serial
        fallback.
    pool_degraded:
        The pool exhausted ``max_rebuilds`` (or a rebuild itself
        failed) and was abandoned mid-run.
    pool_unavailable:
        The pool could not be constructed at all (no /dev/shm,
        restricted container) and the run was serial from the start.
    """

    __slots__ = (
        "retries",
        "timeouts",
        "rebuilds",
        "fallbacks",
        "chunks_parallel",
        "chunks_serial",
        "pool_degraded",
        "pool_unavailable",
        "latency_count",
        "latency_total",
        "latency_max",
        "_latency_buckets",
    )

    def __init__(self) -> None:
        self.retries = 0
        self.timeouts = 0
        self.rebuilds = 0
        self.fallbacks = 0
        self.chunks_parallel = 0
        self.chunks_serial = 0
        self.pool_degraded = False
        self.pool_unavailable = False
        self.latency_count = 0
        self.latency_total = 0.0
        self.latency_max = 0.0
        self._latency_buckets = [0] * (len(LATENCY_BUCKETS) + 1)

    # ------------------------------------------------------------------
    def record_latency(self, seconds: float) -> None:
        """File one successful parallel chunk's wall latency."""
        self.latency_count += 1
        self.latency_total += seconds
        if seconds > self.latency_max:
            self.latency_max = seconds
        for i, edge in enumerate(LATENCY_BUCKETS):
            if seconds <= edge:
                self._latency_buckets[i] += 1
                return
        self._latency_buckets[-1] += 1

    @property
    def degraded(self) -> bool:
        """True if anything at all went wrong this run."""
        return bool(
            self.retries
            or self.timeouts
            or self.rebuilds
            or self.fallbacks
            or self.pool_degraded
            or self.pool_unavailable
        )

    def merge(self, other: "BackendHealth") -> None:
        """Accumulate *other*'s counters into this record (multi-run)."""
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.rebuilds += other.rebuilds
        self.fallbacks += other.fallbacks
        self.chunks_parallel += other.chunks_parallel
        self.chunks_serial += other.chunks_serial
        self.pool_degraded = self.pool_degraded or other.pool_degraded
        self.pool_unavailable = self.pool_unavailable or other.pool_unavailable
        self.latency_count += other.latency_count
        self.latency_total += other.latency_total
        self.latency_max = max(self.latency_max, other.latency_max)
        for i, n in enumerate(other._latency_buckets):
            self._latency_buckets[i] += n

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-friendly snapshot (what lands in ``result.stats``)."""
        buckets = {
            f"<={edge:g}s": self._latency_buckets[i]
            for i, edge in enumerate(LATENCY_BUCKETS)
        }
        buckets[f">{LATENCY_BUCKETS[-1]:g}s"] = self._latency_buckets[-1]
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "rebuilds": self.rebuilds,
            "fallbacks": self.fallbacks,
            "chunks_parallel": self.chunks_parallel,
            "chunks_serial": self.chunks_serial,
            "pool_degraded": self.pool_degraded,
            "pool_unavailable": self.pool_unavailable,
            "chunk_latency": {
                "count": self.latency_count,
                "total_seconds": self.latency_total,
                "max_seconds": self.latency_max,
                "buckets": buckets,
            },
        }

    def summary(self) -> str:
        """One-line operator summary of the degradation counters."""
        return (
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"{self.rebuilds} rebuilds, {self.fallbacks} fallbacks "
            f"({self.chunks_parallel} chunks parallel, "
            f"{self.chunks_serial} serial)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BackendHealth({self.summary()})"


# ----------------------------------------------------------------------
# Grid occupancy drift: is the fitted grid going stale?
#
# The equi-depth construction guarantees each of the φ ranges holds a
# fraction f = 1/φ of the records *at fit time* (§1.3).  Rows absorbed
# afterwards (GridModel.update) are coded under the frozen cut points,
# so their per-range occupancy measures how far the serving distribution
# has moved from the fitted one — the "grid going stale" signal the
# model layer turns into ``grid_drift_detected`` events and rebins on.

#: Default total-variation divergence past which a dimension counts as
#: drifted.  1/4 means a quarter of the update rows would have to move
#: ranges to restore the equi-depth f = 1/φ occupancy — far outside
#: rounding noise, yet early enough to rebin before scores skew.
DEFAULT_DRIFT_THRESHOLD = 0.25


def occupancy_divergence(occupancy) -> np.ndarray:
    """Per-dimension total-variation distance from equi-depth occupancy.

    *occupancy* is a ``(d, φ)`` count matrix — rows seen per (dimension,
    range), missing values excluded.  Entry ``j`` of the result is
    ``0.5 * Σ_r |p_jr − 1/φ|`` where ``p_jr`` is the observed fraction:
    0 for a perfectly equi-depth dimension, approaching ``1 − 1/φ`` when
    every row piles into one range.  Dimensions with no observed rows
    report 0 (no evidence of drift).
    """
    counts = np.asarray(occupancy, dtype=np.float64)
    if counts.ndim != 2:
        raise ValidationError(
            f"occupancy must be a (d, phi) matrix, got ndim={counts.ndim}"
        )
    phi = counts.shape[1]
    totals = counts.sum(axis=1, keepdims=True)
    uniform = 1.0 / phi
    fractions = np.divide(
        counts, totals, out=np.full_like(counts, uniform), where=totals > 0
    )
    return 0.5 * np.abs(fractions - uniform).sum(axis=1)


@dataclass(frozen=True)
class GridDriftReport:
    """Occupancy drift of post-fit rows against the fitted grid.

    Attributes
    ----------
    divergence:
        Per-dimension total-variation distance from ``f = 1/φ``.
    threshold:
        The configured divergence threshold the check ran with.
    drifted_dims:
        Dimensions whose divergence exceeds the threshold, ascending.
    n_rows:
        Update rows the occupancy was accumulated over (max across
        dimensions; missing values make it uneven per dimension).
    """

    divergence: tuple[float, ...]
    threshold: float
    drifted_dims: tuple[int, ...]
    n_rows: int

    @property
    def drifted(self) -> bool:
        """True when any dimension exceeds the threshold."""
        return bool(self.drifted_dims)

    @property
    def max_divergence(self) -> float:
        """The worst per-dimension divergence (0.0 with no dimensions)."""
        return max(self.divergence, default=0.0)

    def as_dict(self) -> dict:
        """JSON-friendly snapshot (what lands in model stats/events)."""
        return {
            "max_divergence": self.max_divergence,
            "threshold": self.threshold,
            "drifted_dims": list(self.drifted_dims),
            "n_rows": self.n_rows,
        }


def check_grid_drift(
    occupancy, threshold: float = DEFAULT_DRIFT_THRESHOLD
) -> GridDriftReport:
    """Evaluate per-dimension occupancy drift against *threshold*."""
    if not 0.0 < float(threshold) <= 1.0:
        raise ValidationError(
            f"drift threshold must be in (0, 1], got {threshold!r}"
        )
    counts = np.asarray(occupancy, dtype=np.float64)
    divergence = occupancy_divergence(counts)
    drifted = np.nonzero(divergence > float(threshold))[0]
    n_rows = int(counts.sum(axis=1).max(initial=0.0))
    return GridDriftReport(
        divergence=tuple(float(v) for v in divergence),
        threshold=float(threshold),
        drifted_dims=tuple(int(j) for j in drifted),
        n_rows=n_rows,
    )
