"""Vectorized cube counting: ``n(D)`` for arbitrary subspace cubes.

Every algorithm in the paper is ultimately a search over cubes ranked by
the sparsity coefficient, whose only data-dependent input is the number
of points ``n(D)`` inside cube ``D``.  This module makes that count
cheap:

* one boolean *membership mask* per ``(dimension, range)`` pair is
  precomputed at construction (``d × φ`` masks of N bools);
* a cube count is the popcount of the AND of its masks;
* counts are memoised, because the evolutionary algorithm re-evaluates
  the same cubes across generations;
* :meth:`extension_counts` returns the counts for **all φ extensions**
  of a partial cube along one dimension in a single ``bincount`` — the
  inner loop of both brute-force enumeration and the optimized
  crossover's greedy stage.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .._validation import check_positive_int
from ..core.subspace import Subspace
from ..exceptions import ValidationError
from .cells import CellAssignment

__all__ = ["CubeCounter"]


class CubeCounter:
    """Counts data points inside subspace cubes of a fixed grid.

    Parameters
    ----------
    cells:
        The grid assignment produced by a discretizer.
    cache_size:
        Maximum number of memoised cube counts (LRU eviction).  Set to
        0 to disable memoisation.
    """

    def __init__(self, cells: CellAssignment, cache_size: int = 200_000):
        if not isinstance(cells, CellAssignment):
            raise ValidationError(
                f"cells must be a CellAssignment, got {type(cells).__name__}"
            )
        self.cells = cells
        self.cache_size = check_positive_int(cache_size, "cache_size", minimum=0)
        self._cache: OrderedDict[tuple, int] = OrderedDict()
        self.n_count_calls = 0
        self.n_cache_hits = 0
        self._build_masks()

    def _build_masks(self) -> None:
        """Precompute the per-(dimension, range) membership masks.

        ``self._masks[dim]`` is a (φ, N) boolean array; row r marks the
        points whose code on ``dim`` equals r.  Missing codes match no
        row.  Subclasses may store a different representation as long
        as they override the methods that read ``self._masks``.
        """
        codes = self.cells.codes
        phi = self.cells.n_ranges
        self._masks: list[np.ndarray] = []
        for j in range(self.cells.n_dims):
            col = codes[:, j]
            mask = np.zeros((phi, len(col)), dtype=bool)
            observed = col >= 0
            mask[col[observed], np.nonzero(observed)[0]] = True
            self._masks.append(mask)

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Total number of data points N."""
        return self.cells.n_points

    @property
    def n_dims(self) -> int:
        """Total data dimensionality d."""
        return self.cells.n_dims

    @property
    def n_ranges(self) -> int:
        """Grid resolution φ."""
        return self.cells.n_ranges

    # ------------------------------------------------------------------
    def mask(self, subspace: Subspace) -> np.ndarray:
        """Boolean membership mask of the cube (freshly allocated)."""
        self._check_subspace(subspace)
        if not subspace.dims:
            return np.ones(self.n_points, dtype=bool)
        dim0, rng0 = subspace.dims[0], subspace.ranges[0]
        out = self._masks[dim0][rng0].copy()
        for dim, rng in list(subspace)[1:]:
            out &= self._masks[dim][rng]
        return out

    def count(self, subspace: Subspace) -> int:
        """``n(D)``: number of points inside the cube *subspace*."""
        self._check_subspace(subspace)
        self.n_count_calls += 1
        key = (subspace.dims, subspace.ranges)
        if self.cache_size:
            cached = self._cache.get(key)
            if cached is not None:
                self.n_cache_hits += 1
                self._cache.move_to_end(key)
                return cached
        value = self._count_uncached(subspace)
        if self.cache_size:
            self._cache[key] = value
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return value

    def _count_uncached(self, subspace: Subspace) -> int:
        """The raw count (cache handled by :meth:`count`)."""
        return int(np.count_nonzero(self.mask(subspace)))

    def extension_counts(self, base_mask: np.ndarray, dim: int) -> np.ndarray:
        """Counts of all φ single-range extensions along *dim*.

        Parameters
        ----------
        base_mask:
            Membership mask of the partial cube being extended (use
            :meth:`mask`, or ``None``-equivalent all-True for the empty
            cube).
        dim:
            The new dimension; must not already be fixed in the cube.

        Returns
        -------
        numpy.ndarray
            Length-φ integer array; entry ``r`` is the count of the
            cube extended with ``(dim, r)``.  Points missing on *dim*
            contribute to no entry.
        """
        if not 0 <= dim < self.n_dims:
            raise ValidationError(f"dim must be in [0, {self.n_dims}), got {dim}")
        col = self.cells.codes[:, dim]
        selected = col[base_mask]
        selected = selected[selected >= 0]
        return np.bincount(selected, minlength=self.n_ranges)

    def covered_points(self, subspace: Subspace) -> np.ndarray:
        """Indices of the points inside the cube, ascending."""
        return np.nonzero(self.mask(subspace))[0]

    def fraction(self, subspace: Subspace) -> float:
        """``n(D) / N`` — the cube's empirical density."""
        return self.count(subspace) / self.n_points

    # ------------------------------------------------------------------
    def mask_memory_bytes(self) -> int:
        """Total bytes held by the per-range membership masks."""
        return sum(mask.nbytes for mask in self._masks)

    def cache_stats(self) -> dict[str, int]:
        """Counters useful for benchmarking: calls, hits, entries."""
        return {
            "count_calls": self.n_count_calls,
            "cache_hits": self.n_cache_hits,
            "cache_entries": len(self._cache),
        }

    def clear_cache(self) -> None:
        """Drop all memoised counts (e.g. between benchmark rounds)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    def _check_subspace(self, subspace: Subspace) -> None:
        if not isinstance(subspace, Subspace):
            raise ValidationError(
                f"expected a Subspace, got {type(subspace).__name__}"
            )
        if subspace.dims and subspace.dims[-1] >= self.n_dims:
            raise ValidationError(
                f"subspace uses dimension {subspace.dims[-1]} but data has "
                f"{self.n_dims} dimensions"
            )
        if any(r >= self.n_ranges for r in subspace.ranges):
            raise ValidationError(
                f"subspace range out of bounds for φ={self.n_ranges}: "
                f"{subspace.ranges}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CubeCounter(N={self.n_points}, d={self.n_dims}, "
            f"phi={self.n_ranges})"
        )
