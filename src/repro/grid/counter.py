"""Vectorized cube counting: ``n(D)`` for arbitrary subspace cubes.

Every algorithm in the paper is ultimately a search over cubes ranked by
the sparsity coefficient, whose only data-dependent input is the number
of points ``n(D)`` inside cube ``D``.  This module makes that count
cheap:

* one boolean *membership mask* per ``(dimension, range)`` pair is
  precomputed at construction (``d × φ`` masks of N bools, stacked into
  a single ``(d, φ, N)`` array so whole batches can be gathered with one
  fancy index);
* a cube count is the popcount of the AND of its masks;
* counts are memoised, because the evolutionary algorithm re-evaluates
  the same cubes across generations;
* :meth:`count_batch` evaluates an entire GA population (or one
  brute-force level) in one pass: duplicates are folded through the
  memo, the distinct cubes are resolved by a prefix-sharing batch
  kernel (siblings reuse the AND of their common prefix), and — under a
  ``process`` :class:`~repro.core.params.CountingBackend` — chunks of
  the batch run on a worker pool that reads the masks from shared
  memory;
* :meth:`extension_counts` returns the counts for **all φ extensions**
  of a partial cube along one dimension in a single ``bincount`` — the
  inner loop of the depth-first brute-force enumeration and the
  optimized crossover's greedy stage.

The batch kernel itself is pluggable: the counter resolves its
:class:`~repro.core.params.CountingBackend` through the backend
registry (:mod:`repro.grid.backends`), which pairs an execution
strategy (in-process or pool) with a named kernel — the numpy
reference (:mod:`repro.grid.kernels`) or the compiled native kernel
(:mod:`repro.grid.native`).  Every kernel is proven bit-identical to
the reference before it serves counts.
"""

from __future__ import annotations

import logging
import time
from collections import OrderedDict
from contextlib import contextmanager

import numpy as np

from .._validation import check_positive_int
from ..core.params import CountingBackend
from ..core.subspace import Subspace
from ..exceptions import SearchCancelled, ValidationError
from ..resilience.faults import maybe_inject
from ..resilience.ladder import DegradationLadder, ResilienceReport
from .backends import get_backend, resolve_kernel
from .cells import CellAssignment, MISSING_CELL
from .health import BackendHealth
from .kernels import batch_counts

__all__ = ["CubeCounter", "batch_counts"]

logger = logging.getLogger(__name__)

#: Serial batches are split so one chunk's AND accumulator stays below
#: this many words (bools for the dense counter, uint64 for the packed
#: one) — bounds peak memory without changing any count.
_MAX_ACC_WORDS = 1 << 26


class CubeCounter:
    """Counts data points inside subspace cubes of a fixed grid.

    Parameters
    ----------
    cells:
        The grid assignment produced by a discretizer.
    cache_size:
        Maximum number of memoised cube counts (LRU eviction).  Set to
        0 to disable memoisation entirely (no cache structure is
        allocated and the hot path skips every cache lookup).
    backend:
        A :class:`~repro.core.params.CountingBackend` choosing how
        :meth:`count_batch` executes (serial by default).  The process
        backend spins its worker pool up lazily on the first large
        batch; call :meth:`close` to release it.
    """

    #: Whether ``self._stack`` holds bit-packed uint64 words (subclass
    #: override) or one bool per point.
    _packed_stack = False

    def __init__(
        self,
        cells: CellAssignment,
        cache_size: int = 200_000,
        backend: CountingBackend | None = None,
    ):
        if not isinstance(cells, CellAssignment):
            raise ValidationError(
                f"cells must be a CellAssignment, got {type(cells).__name__}"
            )
        self.cells = cells
        self._init_runtime(cache_size, backend)
        self._build_masks()

    def _init_runtime(
        self, cache_size: int, backend: CountingBackend | None
    ) -> None:
        """Backend/cache/telemetry state shared by every counter flavour.

        Factored out of ``__init__`` so counters that do not hold their
        masks in memory (:class:`~repro.grid.sharded.ShardedCounter`)
        can reuse it without a :class:`CellAssignment`-driven mask
        build.
        """
        if backend is not None and not isinstance(backend, CountingBackend):
            raise ValidationError(
                f"backend must be a CountingBackend, got {type(backend).__name__}"
            )
        self.cache_size = check_positive_int(cache_size, "cache_size", minimum=0)
        self.backend = backend or CountingBackend()
        # Resolve the execution strategy now (unknown kinds fail fast
        # with the registry's menu); the kernel itself resolves lazily
        # on the first batch, since resolving the native kernel may
        # JIT/compile.
        self._spec = get_backend(self.backend.kind)
        self._kernel = None
        self._cache: OrderedDict[tuple, int] | None = (
            OrderedDict() if self.cache_size else None
        )
        self.n_count_calls = 0
        self.n_cache_hits = 0
        self.n_appends = 0
        self.n_rows_appended = 0
        self.n_batch_calls = 0
        self.n_batch_cubes = 0
        self.n_words_and = 0
        self.n_prefix_reuse = 0
        self.n_parallel_chunks = 0
        self.batch_seconds = 0.0
        self.health = BackendHealth()
        self._pool = None
        self._pool_failed = False
        self.cancel_token = None
        self.event_sink = None
        # Run-wide resilience bookkeeping: every retry, recovery and
        # downgrade lands here and surfaces in stats["resilience"].
        # The sink provider is a lambda because the event sink is bound
        # per engine run (runtime_binding), after construction.
        self.resilience = ResilienceReport()
        self._ladder = DegradationLadder(
            self.resilience, lambda: self.event_sink
        )

    def _build_masks(self) -> None:
        """Precompute the per-(dimension, range) membership masks.

        ``self._stack`` is a (d, φ, N) boolean array; ``self._masks``
        keeps the per-dimension (φ, N) views for the single-cube paths.
        Subclasses may store a different representation as long as they
        override the methods that read them.
        """
        codes = self.cells.codes
        phi = self.cells.n_ranges
        n = self.cells.n_points
        maybe_inject("packed_alloc", kind="bool", n_points=n)
        stack = np.zeros((self.cells.n_dims, phi, n), dtype=bool)
        for j in range(self.cells.n_dims):
            col = codes[:, j]
            observed = col >= 0
            stack[j, col[observed], np.nonzero(observed)[0]] = True
        self._stack = stack
        self._masks: list[np.ndarray] = [stack[j] for j in range(self.cells.n_dims)]

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Total number of data points N."""
        return self.cells.n_points

    @property
    def n_dims(self) -> int:
        """Total data dimensionality d."""
        return self.cells.n_dims

    @property
    def n_ranges(self) -> int:
        """Grid resolution φ."""
        return self.cells.n_ranges

    # ------------------------------------------------------------------
    def mask(self, subspace: Subspace) -> np.ndarray:
        """Boolean membership mask of the cube (freshly allocated)."""
        self._check_subspace(subspace)
        if not subspace.dims:
            return np.ones(self.n_points, dtype=bool)
        dim0, rng0 = subspace.dims[0], subspace.ranges[0]
        out = self._masks[dim0][rng0].copy()
        for dim, rng in list(subspace)[1:]:
            out &= self._masks[dim][rng]
        return out

    def count(self, subspace: Subspace) -> int:
        """``n(D)``: number of points inside the cube *subspace*."""
        self._check_subspace(subspace)
        self.n_count_calls += 1
        cache = self._cache
        if cache is not None:
            key = (subspace.dims, subspace.ranges)
            cached = cache.get(key)
            if cached is not None:
                self.n_cache_hits += 1
                cache.move_to_end(key)
                return cached
        value = self._count_uncached(subspace)
        if cache is not None:
            cache[key] = value
            if len(cache) > self.cache_size:
                cache.popitem(last=False)
        return value

    def _count_uncached(self, subspace: Subspace) -> int:
        """The raw count (cache handled by :meth:`count`)."""
        return int(np.count_nonzero(self.mask(subspace)))

    # ------------------------------------------------------------------
    def count_batch(self, subspaces) -> np.ndarray:
        """``n(D)`` for a whole batch of cubes in one pass.

        Duplicate cubes in the batch — the normal case for a converging
        GA population — and cubes already memoised are resolved through
        the cache; only the distinct misses hit the batch kernel, which
        shares intermediate AND results across cubes with a common
        prefix.  Under a ``process`` backend, large miss sets are split
        into deterministic chunks and evaluated on the worker pool.

        Returns an ``int64`` array aligned with the input order.
        Results are identical to calling :meth:`count` per cube.
        """
        subspaces = list(subspaces)
        t0 = time.perf_counter()
        self.n_batch_calls += 1
        self.n_batch_cubes += len(subspaces)
        self.n_count_calls += len(subspaces)
        out = np.empty(len(subspaces), dtype=np.int64)
        # ``slot[i]`` is the miss-array index serving input *i* (-1 when
        # the memo answered); the scatter back to ``out`` is one fancy
        # assignment instead of a Python loop.
        slot = np.empty(len(subspaces), dtype=np.intp)
        cache = self._cache
        pending: dict[tuple, int] = {}
        miss_keys: list[tuple] = []
        n_hits = 0
        for i, subspace in enumerate(subspaces):
            # Bounds are validated vectorized in _count_keys; only the
            # type check stays on the per-cube path.
            if not isinstance(subspace, Subspace):
                raise ValidationError(
                    f"expected a Subspace, got {type(subspace).__name__}"
                )
            key = (subspace.dims, subspace.ranges)
            idx = pending.get(key)
            if idx is not None:
                # Duplicate within the batch: counted once, reused here.
                n_hits += 1
                slot[i] = idx
                continue
            if cache is not None:
                cached = cache.get(key)
                if cached is not None:
                    n_hits += 1
                    cache.move_to_end(key)
                    out[i] = cached
                    slot[i] = -1
                    continue
            pending[key] = len(miss_keys)
            slot[i] = len(miss_keys)
            miss_keys.append(key)
        self.n_cache_hits += n_hits
        if miss_keys:
            counts = self._count_keys(miss_keys)
            if cache is not None:
                for key, cnt in zip(miss_keys, counts, strict=True):
                    cache[key] = int(cnt)
                    if len(cache) > self.cache_size:
                        cache.popitem(last=False)
            missed = slot >= 0
            out[missed] = counts[slot[missed]]
        self.batch_seconds += time.perf_counter() - t0
        return out

    def _count_keys(self, keys: list[tuple]) -> np.ndarray:
        """Counts for distinct ``(dims, ranges)`` keys, grouped by k."""
        counts = np.empty(len(keys), dtype=np.int64)
        by_k: dict[int, list[int]] = {}
        for i, (dims, _) in enumerate(keys):
            by_k.setdefault(len(dims), []).append(i)
        for k, idxs in sorted(by_k.items()):
            if k == 0:
                counts[np.asarray(idxs)] = self.n_points
                continue
            dims_arr = np.array([keys[i][0] for i in idxs], dtype=np.intp)
            rng_arr = np.array([keys[i][1] for i in idxs], dtype=np.intp)
            # Subspace guarantees sorted non-negative dims and ranges,
            # so one max per array validates the whole group.
            if int(dims_arr[:, -1].max()) >= self.n_dims:
                raise ValidationError(
                    f"subspace uses dimension {int(dims_arr[:, -1].max())} "
                    f"but data has {self.n_dims} dimensions"
                )
            if int(rng_arr.max()) >= self.n_ranges:
                raise ValidationError(
                    f"subspace range out of bounds for φ={self.n_ranges}"
                )
            counts[np.asarray(idxs)] = self._count_group(dims_arr, rng_arr)
        return counts

    # ------------------------------------------------------------------
    def append_rows(self, codes) -> int:
        """Append already-discretized rows to the counted population.

        *codes* is an ``(m, d)`` integer code block (or a
        :class:`~repro.grid.cells.CellAssignment`) produced by the
        **current** grid's ``transform``.  Only the new rows are packed
        into mask columns; every memoised cube count is advanced by the
        new rows' popcount delta instead of being invalidated.  The
        result is bit-identical to building a fresh counter over the
        concatenated codes (differential-tested): mask stacks match
        byte for byte and cached counts equal from-scratch recounts,
        because cube counts are additive across row blocks.

        Any worker pool is released first (it holds the old masks in
        shared memory) and is rebuilt lazily on the next large batch.
        Returns the number of rows appended.
        """
        block = self._validate_append_codes(codes)
        m = block.shape[0]
        if m == 0:
            return 0
        cache = self._cache
        deltas = None
        if cache:
            delta_stack = self._block_stack(block)
            keys = list(cache.keys())
            deltas = self._keys_on_stack(delta_stack, keys, m)
        self.close()
        self._append_masks(block)
        self.cells = CellAssignment(
            codes=np.concatenate([self.cells.codes, block], axis=0),
            n_ranges=self.cells.n_ranges,
            feature_names=self.cells.feature_names,
            boundaries=self.cells.boundaries,
        )
        if deltas is not None and cache is not None:
            for key, delta in deltas.items():
                cache[key] += delta
        self.n_appends += 1
        self.n_rows_appended += m
        return m

    def _validate_append_codes(self, codes) -> np.ndarray:
        """Normalize appended codes to a contiguous in-range int16 block."""
        if isinstance(codes, CellAssignment):
            if codes.n_ranges != self.n_ranges:
                raise ValidationError(
                    f"appended cells use n_ranges={codes.n_ranges} but the "
                    f"counter's grid has φ={self.n_ranges}"
                )
            block = codes.codes
        else:
            block = np.asarray(codes)
        if block.ndim != 2 or block.shape[1] != self.n_dims:
            raise ValidationError(
                f"appended codes must have shape (m, {self.n_dims}), "
                f"got {block.shape}"
            )
        if not np.issubdtype(block.dtype, np.integer):
            raise ValidationError(
                f"appended codes must be integer-typed, got {block.dtype}"
            )
        block = np.ascontiguousarray(block, dtype=np.int16)
        if block.size:
            lo, hi = int(block.min()), int(block.max())
            if lo < MISSING_CELL or hi >= self.n_ranges:
                raise ValidationError(
                    f"appended codes must be in [0, {self.n_ranges}) or "
                    f"MISSING_CELL, found range [{lo}, {hi}]"
                )
        return block

    def _block_stack(self, block: np.ndarray) -> np.ndarray:
        """Mask stack over *block* only, in this counter's representation."""
        stack = np.zeros((self.n_dims, self.n_ranges, block.shape[0]), dtype=bool)
        for j in range(self.n_dims):
            col = block[:, j]
            observed = col >= 0
            stack[j, col[observed], np.nonzero(observed)[0]] = True
        return stack

    def _append_masks(self, block: np.ndarray) -> None:
        """Extend the in-memory mask stack with *block*'s columns."""
        self._stack = np.concatenate(
            [self._stack, self._block_stack(block)], axis=2
        )
        self._masks = [self._stack[j] for j in range(self.n_dims)]

    def _keys_on_stack(
        self, stack: np.ndarray, keys: list[tuple], n_rows: int
    ) -> dict[tuple, int]:
        """Counts of the *keys* cubes over an arbitrary mask *stack*.

        Used by :meth:`append_rows` to compute per-cube popcount deltas
        from a new-rows-only stack; runs the same serial kernel path as
        a normal batch, so deltas are bit-identical to recounting.
        """
        counts = np.empty(len(keys), dtype=np.int64)
        by_k: dict[int, list[int]] = {}
        for i, (dims, _) in enumerate(keys):
            by_k.setdefault(len(dims), []).append(i)
        for k, idxs in sorted(by_k.items()):
            if k == 0:
                counts[np.asarray(idxs)] = n_rows
                continue
            dims_arr = np.array([keys[i][0] for i in idxs], dtype=np.intp)
            rng_arr = np.array([keys[i][1] for i in idxs], dtype=np.intp)
            counts[np.asarray(idxs)] = self._serial_group_counts(
                stack, dims_arr, rng_arr
            )
        return {key: int(count) for key, count in zip(keys, counts, strict=True)}

    def set_cancel_token(self, token) -> None:
        """Thread a :class:`~repro.run.cancel.CancelToken` into counting.

        A long batch (many serial chunks, or many pool dispatch waves)
        checks the token between chunks and raises
        :class:`~repro.exceptions.SearchCancelled` once it flips, so an
        interrupted search never waits for a full level/generation of
        counting to finish.  Callers that set a token must be prepared
        to catch the exception and discard the partial batch — counts
        already returned are unaffected.  Pass ``None`` to detach.
        """
        self.cancel_token = token

    def set_event_sink(self, sink) -> None:
        """Attach an :class:`~repro.engine.events.EventSink` to counting.

        The fault-tolerant dispatcher reports worker trouble
        (``chunk_retry`` events) through it.  Pass ``None`` to detach.
        """
        self.event_sink = sink

    @contextmanager
    def runtime_binding(self, token, sink=None):
        """Scope a cancel token (and event sink) to one engine run.

        Exception-safe: whatever was bound before is restored on exit
        even when the search raises mid-batch, so a counter shared
        across runs never leaks a stale token into the next one.
        """
        previous_token = self.cancel_token
        previous_sink = self.event_sink
        self.set_cancel_token(token)
        self.set_event_sink(sink)
        try:
            yield self
        finally:
            self.set_cancel_token(previous_token)
            self.set_event_sink(previous_sink)

    def _check_cancelled(self) -> None:
        token = self.cancel_token
        if token is not None and token.cancelled:
            raise SearchCancelled("batched counting interrupted mid-batch")

    @property
    def batch_kernel(self):
        """The batch kernel this counter's backend runs (lazy-resolved).

        Resolution verifies the kernel against the numpy reference the
        first time (see :func:`repro.grid.backends.resolve_kernel`), so
        a native kernel that cannot reproduce the reference counts
        raises here instead of silently serving wrong numbers.
        """
        if self._kernel is None:
            self._kernel = resolve_kernel(self._spec.kernel)
        return self._kernel

    def _invoke_kernel(
        self, stack: np.ndarray, dims_arr: np.ndarray, rng_arr: np.ndarray
    ) -> tuple:
        """One guarded kernel call: non-reference kernels can degrade.

        The numpy reference runs bare (there is nothing below it on the
        ladder).  Any other kernel runs under the degradation ladder:
        if it fails — resolution, verification, or the call itself —
        the same chunk is recomputed by the reference kernel
        (bit-identical by the conformance gate), the counter serves the
        reference from then on, and the downgrade is recorded in
        ``stats["resilience"]``.
        """
        if self._spec.kernel == "numpy":
            return self.batch_kernel(
                stack, dims_arr, rng_arr, self._packed_stack
            )

        def primary() -> tuple:
            return self.batch_kernel(
                stack, dims_arr, rng_arr, self._packed_stack
            )

        def fallback() -> tuple:
            return batch_counts(stack, dims_arr, rng_arr, self._packed_stack)

        return self._ladder.guarded(
            "kernel", self._spec.kernel, "numpy",
            primary, fallback, on_downgrade=self._on_kernel_failure,
        )

    def _on_kernel_failure(self, exc: BaseException) -> None:
        logger.warning(
            "kernel %r failed (%s); serving the numpy reference kernel "
            "for the rest of the run",
            self._spec.kernel, exc,
        )
        self._kernel = batch_counts

    def _count_group(self, dims_arr: np.ndarray, rng_arr: np.ndarray) -> np.ndarray:
        """Counts for one same-k group of distinct cubes."""
        n_cubes = len(dims_arr)
        backend = self.backend
        if self._spec.uses_pool and n_cubes > backend.chunk_size:
            pool = self._ensure_pool()
            if pool is not None:
                return self._count_group_parallel(pool, dims_arr, rng_arr)
        return self._serial_group_counts(self._stack, dims_arr, rng_arr)

    def _serial_group_counts(
        self, stack: np.ndarray, dims_arr: np.ndarray, rng_arr: np.ndarray
    ) -> np.ndarray:
        """The in-process kernel over *stack*, memory-capped by chunking.

        Chunks so the (B, W) accumulator stays bounded; sorting first
        keeps sibling cubes together so prefix sharing survives the
        chunking.  Taking the stack as a parameter lets the sharded
        counter run the identical path over each mmapped shard stack.
        """
        n_cubes = len(dims_arr)
        words = stack.shape[2]
        max_rows = max(1, _MAX_ACC_WORDS // max(1, words))
        if n_cubes <= max_rows:
            counts, stats = self._invoke_kernel(stack, dims_arr, rng_arr)
            self._absorb_kernel_stats(stats)
            return counts
        order = self._sibling_order(dims_arr, rng_arr)
        sorted_counts = np.empty(n_cubes, dtype=np.int64)
        for lo in range(0, n_cubes, max_rows):
            self._check_cancelled()
            sel = order[lo : lo + max_rows]
            counts, stats = self._invoke_kernel(
                stack, dims_arr[sel], rng_arr[sel]
            )
            self._absorb_kernel_stats(stats)
            sorted_counts[lo : lo + max_rows] = counts
        out = np.empty(n_cubes, dtype=np.int64)
        out[order] = sorted_counts
        return out

    def _count_group_parallel(
        self, pool, dims_arr: np.ndarray, rng_arr: np.ndarray
    ) -> np.ndarray:
        """Fan one same-k group out to the worker pool, order-stable."""
        n_cubes = len(dims_arr)
        chunk = self.backend.chunk_size
        order = self._sibling_order(dims_arr, rng_arr)
        sd, sr = dims_arr[order], rng_arr[order]
        chunks = [
            (sd[lo : lo + chunk], sr[lo : lo + chunk])
            for lo in range(0, n_cubes, chunk)
        ]
        results = pool.map_chunks(
            chunks, cancel_token=self.cancel_token, event_sink=self.event_sink
        )
        if pool.is_degraded:
            # The pool exhausted its rebuild budget mid-run; release it
            # and run every later batch on the plain serial path.
            logger.warning(
                "counting pool degraded beyond repair (%s); remaining "
                "batches run serially",
                self.health.summary(),
            )
            self.close()
            self._pool_failed = True
        self.n_parallel_chunks += len(chunks)
        for _, words, reuse in results:
            self.n_words_and += int(words)
            self.n_prefix_reuse += int(reuse)
        sorted_counts = np.concatenate([counts for counts, _, _ in results])
        out = np.empty(n_cubes, dtype=np.int64)
        out[order] = sorted_counts
        return out

    @staticmethod
    def _sibling_order(dims_arr: np.ndarray, rng_arr: np.ndarray) -> np.ndarray:
        """Lexicographic cube order: keeps shared prefixes adjacent."""
        keys = []
        for level in range(dims_arr.shape[1] - 1, -1, -1):
            keys.append(rng_arr[:, level])
            keys.append(dims_arr[:, level])
        return np.lexsort(tuple(keys))

    def _absorb_kernel_stats(self, stats: dict) -> None:
        self.n_words_and += stats["words_and"]
        self.n_prefix_reuse += stats["prefix_reuse"]

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        """The lazy process pool, or None if unavailable (serial fallback)."""
        if self._pool is not None:
            return self._pool
        if self._pool_failed:
            return None
        try:
            from .parallel import CountingPool

            self._pool = CountingPool(
                self._stack,
                self._packed_stack,
                self.backend,
                self.health,
                kernel=self._spec.kernel,
                report=self.resilience,
            )
        except Exception as exc:  # repro-lint: disable=RPL009
            logger.warning(
                "process counting backend unavailable (%s); falling back to serial",
                exc,
            )
            self.health.pool_unavailable = True
            self._pool_failed = True
            self._ladder.apply(
                "counting-pool", self.backend.kind, "serial",
                f"pool unavailable: {exc}",
            )
            return None
        return self._pool

    def close(self) -> None:
        """Release the worker pool and its shared-memory masks, if any.

        Safe to call repeatedly; the pool is recreated lazily if another
        parallel batch arrives later.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown dependent
        try:
            self.close()
        except Exception:  # repro-lint: disable=RPL009
            pass

    # ------------------------------------------------------------------
    def extension_counts(self, base_mask: np.ndarray, dim: int) -> np.ndarray:
        """Counts of all φ single-range extensions along *dim*.

        Parameters
        ----------
        base_mask:
            Membership mask of the partial cube being extended (use
            :meth:`mask`, or ``None``-equivalent all-True for the empty
            cube).
        dim:
            The new dimension; must not already be fixed in the cube.

        Returns
        -------
        numpy.ndarray
            Length-φ integer array; entry ``r`` is the count of the
            cube extended with ``(dim, r)``.  Points missing on *dim*
            contribute to no entry.
        """
        if not 0 <= dim < self.n_dims:
            raise ValidationError(f"dim must be in [0, {self.n_dims}), got {dim}")
        col = self.cells.codes[:, dim]
        selected = col[base_mask]
        selected = selected[selected >= 0]
        return np.bincount(selected, minlength=self.n_ranges)

    def covered_points(self, subspace: Subspace) -> np.ndarray:
        """Indices of the points inside the cube, ascending."""
        return np.nonzero(self.mask(subspace))[0]

    def fraction(self, subspace: Subspace) -> float:
        """``n(D) / N`` — the cube's empirical density."""
        return self.count(subspace) / self.n_points

    # ------------------------------------------------------------------
    def mask_memory_bytes(self) -> int:
        """Total bytes held by the per-range membership masks."""
        return sum(mask.nbytes for mask in self._masks)

    def cache_stats(self) -> dict:
        """Counters useful for benchmarking and backend tuning.

        ``count_calls`` / ``cache_hits`` / ``cache_misses`` cover every
        cube counted, whether through :meth:`count` or
        :meth:`count_batch` (a duplicate within one batch counts as a
        hit).  The ``batch_*`` fields, ``words_and``, ``prefix_reuse``
        and ``parallel_chunks`` describe the batch engine specifically;
        ``batch_seconds`` is the wall time spent inside
        :meth:`count_batch`.
        """
        return {
            "count_calls": self.n_count_calls,
            "cache_hits": self.n_cache_hits,
            "cache_misses": self.n_count_calls - self.n_cache_hits,
            "cache_entries": len(self._cache) if self._cache is not None else 0,
            "appends": self.n_appends,
            "rows_appended": self.n_rows_appended,
            "batch_calls": self.n_batch_calls,
            "batch_cubes": self.n_batch_cubes,
            "words_and": self.n_words_and,
            "prefix_reuse": self.n_prefix_reuse,
            "parallel_chunks": self.n_parallel_chunks,
            "batch_seconds": self.batch_seconds,
            "backend": self.backend.kind,
            "kernel": self._spec.kernel,
        }

    def kernel_info(self) -> dict:
        """Which kernel (and, for native, which tier) serves batches."""
        info = {"backend": self._spec.name, "kernel": self._spec.kernel}
        if self._spec.kernel == "native":
            from .native import kernel_info

            info.update(kernel_info())
        return info

    def backend_health(self) -> dict:
        """Fault-tolerance telemetry for this counter's backend.

        Retries, timeouts, pool rebuilds, serial-fallback events and
        the per-chunk latency histogram recorded by the resilient
        process-pool dispatcher (see
        :class:`~repro.grid.health.BackendHealth`).  A serial backend
        — or a clean parallel run — reports all-zero counters.
        """
        return self.health.as_dict()

    def clear_cache(self) -> None:
        """Drop all memoised counts (e.g. between benchmark rounds)."""
        if self._cache is not None:
            self._cache.clear()

    # ------------------------------------------------------------------
    def _check_subspace(self, subspace: Subspace) -> None:
        if not isinstance(subspace, Subspace):
            raise ValidationError(
                f"expected a Subspace, got {type(subspace).__name__}"
            )
        if subspace.dims and subspace.dims[-1] >= self.n_dims:
            raise ValidationError(
                f"subspace uses dimension {subspace.dims[-1]} but data has "
                f"{self.n_dims} dimensions"
            )
        if any(r >= self.n_ranges for r in subspace.ranges):
            raise ValidationError(
                f"subspace range out of bounds for φ={self.n_ranges}: "
                f"{subspace.ranges}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CubeCounter(N={self.n_points}, d={self.n_dims}, "
            f"phi={self.n_ranges})"
        )
