"""Batch counting kernels: the numpy reference implementation.

A *kernel* is the pure function at the bottom of every counting
backend::

    kernel(stack, dims_arr, rng_arr, packed) -> (counts, stats)

``stack`` is the counter's ``(d, φ, W)`` membership-mask array (boolean
or uint64-packed), ``dims_arr`` / ``rng_arr`` are ``(B, k)`` index
arrays naming one same-k batch of cubes, and ``counts`` is the exact
``int64`` point count per cube.  ``stats`` reports kernel effort
(``words_and``) and prefix sharing (``prefix_reuse``).

This module holds the vectorized numpy reference kernel
(:func:`batch_counts`, the PR-1 prefix-sharing AND/popcount engine);
the compiled tiers live in :mod:`repro.grid.native` and are registered
against this reference by :mod:`repro.grid.backends`, which proves any
kernel bit-identical on a differential fixture before it may serve
counts.  Module-level (rather than methods) so pool workers can run an
identical kernel against a shared-memory view of the stack.
"""

from __future__ import annotations

import numpy as np

__all__ = ["batch_counts"]


def _resolve_batch_masks(
    stack: np.ndarray,
    dims_arr: np.ndarray,
    rng_arr: np.ndarray,
    stats: dict,
) -> np.ndarray:
    """AND-of-masks for a batch of same-k cubes, sharing common prefixes.

    ``stack`` is the ``(d, φ, W)`` mask array; ``dims_arr`` / ``rng_arr``
    are ``(B, k)`` index arrays.  The recursion resolves each *distinct*
    ``(k-1)``-prefix exactly once and broadcasts it to the rows sharing
    it, so sibling cubes (same prefix, different last range) pay for the
    shared AND chain a single time.
    """
    k = dims_arr.shape[1]
    if k == 1:
        # Fancy indexing copies, so callers may AND into the result.
        return stack[dims_arr[:, 0], rng_arr[:, 0]]
    base = stack.shape[0] * stack.shape[1]
    if base ** (k - 1) < 1 << 62:
        # Encode each (k-1)-prefix as a single int64 so the duplicate
        # scan is a 1-D unique — far cheaper than unique(axis=0).
        codes = (dims_arr[:, 0] * stack.shape[1] + rng_arr[:, 0]).astype(
            np.int64
        )
        for level in range(1, k - 1):
            codes = codes * base + (
                dims_arr[:, level] * stack.shape[1] + rng_arr[:, level]
            )
        _, index, inverse = np.unique(
            codes, return_index=True, return_inverse=True
        )
        n_uniq = len(index)
    else:  # pragma: no cover - needs astronomically deep cubes
        prefix = np.concatenate([dims_arr[:, :-1], rng_arr[:, :-1]], axis=1)
        _, index, inverse = np.unique(
            prefix, axis=0, return_index=True, return_inverse=True
        )
        n_uniq = len(index)
    if n_uniq == len(dims_arr):
        # No two cubes share a prefix at this level (a GA population of
        # distinct strings): the unique machinery cannot help deeper
        # either, so AND the chain flat without further sorting.
        acc = stack[dims_arr[:, 0], rng_arr[:, 0]]
        for level in range(1, k):
            np.bitwise_and(
                acc, stack[dims_arr[:, level], rng_arr[:, level]], out=acc
            )
            stats["words_and"] += acc.size
        return acc
    inverse = inverse.reshape(-1)
    parents = _resolve_batch_masks(
        stack, dims_arr[index, :-1], rng_arr[index, :-1], stats
    )
    stats["prefix_reuse"] += len(dims_arr) - n_uniq
    acc = parents[inverse]
    np.bitwise_and(acc, stack[dims_arr[:, -1], rng_arr[:, -1]], out=acc)
    stats["words_and"] += acc.size
    return acc


def batch_counts(
    stack: np.ndarray,
    dims_arr: np.ndarray,
    rng_arr: np.ndarray,
    packed: bool,
) -> tuple[np.ndarray, dict]:
    """Counts for a batch of same-k cubes over a mask ``stack``.

    The numpy reference kernel: vectorized prefix-sharing AND followed
    by one popcount/sum reduction.  Every other registered kernel is
    proven bit-identical to this one (see
    :func:`repro.grid.backends.verify_kernel`).  Returns ``(counts,
    stats)`` with ``stats`` holding the number of words ANDed and the
    prefix reuses.
    """
    stats = {"words_and": 0, "prefix_reuse": 0}
    acc = _resolve_batch_masks(stack, dims_arr, rng_arr, stats)
    if packed:
        counts = np.bitwise_count(acc).sum(axis=1, dtype=np.int64)
    else:
        counts = acc.sum(axis=1, dtype=np.int64)
    return counts, stats
