"""Grid discretization substrate: equi-depth ranges and cube counting."""

from .cells import CellAssignment, MISSING_CELL
from .discretizer import EquiDepthDiscretizer, EquiWidthDiscretizer, GridDiscretizer
from .counter import CubeCounter
from .packed_counter import PackedCubeCounter

__all__ = [
    "CellAssignment",
    "MISSING_CELL",
    "GridDiscretizer",
    "EquiDepthDiscretizer",
    "EquiWidthDiscretizer",
    "CubeCounter",
    "PackedCubeCounter",
]
