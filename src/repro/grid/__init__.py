"""Grid discretization substrate: equi-depth ranges and cube counting."""

from .backends import (
    BackendConformanceError,
    BackendSpec,
    get_backend,
    register_backend,
    register_kernel,
    registered_backends,
    registered_kernels,
    resolve_kernel,
    verify_kernel,
)
from .cells import CellAssignment, MISSING_CELL
from .counter import CubeCounter, batch_counts
from .discretizer import EquiDepthDiscretizer, EquiWidthDiscretizer, GridDiscretizer
from .native import available_tiers, kernel_info, native_batch_counts
from .packed_counter import PackedCubeCounter, pack_codes_block
from .sharded import (
    DEFAULT_SHARD_ROWS,
    ShardCheckpointer,
    ShardedCounter,
    ShardedMaskStore,
)

__all__ = [
    "BackendConformanceError",
    "BackendSpec",
    "CellAssignment",
    "MISSING_CELL",
    "GridDiscretizer",
    "EquiDepthDiscretizer",
    "EquiWidthDiscretizer",
    "CubeCounter",
    "DEFAULT_SHARD_ROWS",
    "PackedCubeCounter",
    "ShardCheckpointer",
    "ShardedCounter",
    "ShardedMaskStore",
    "available_tiers",
    "pack_codes_block",
    "batch_counts",
    "get_backend",
    "kernel_info",
    "native_batch_counts",
    "register_backend",
    "register_kernel",
    "registered_backends",
    "registered_kernels",
    "resolve_kernel",
    "verify_kernel",
]
