"""Cell assignments: each data point mapped to a grid range per attribute.

The discretizers in :mod:`repro.grid.discretizer` reduce a real-valued
``(N, d)`` matrix to an integer matrix of the same shape whose entry
``(i, j)`` is the 0-based grid range of point ``i`` on attribute ``j``,
or :data:`MISSING_CELL` when the value was missing (NaN).  This compact
form is all the searchers ever touch — the raw floats are only needed
again when *explaining* an outlier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from ..exceptions import ValidationError

__all__ = ["CellAssignment", "MISSING_CELL"]

#: Sentinel cell code for a missing attribute value.  Negative so it can
#: never collide with a real 0-based range index.
MISSING_CELL = -1


@dataclass(frozen=True)
class CellAssignment:
    """Grid-range codes for a dataset, plus the grid metadata.

    Attributes
    ----------
    codes:
        ``(N, d)`` ``int16`` array of 0-based range indices;
        :data:`MISSING_CELL` marks missing values.
    n_ranges:
        The grid resolution φ (ranges per attribute).
    feature_names:
        Optional attribute names used by explanation rendering.
    boundaries:
        Per-attribute arrays of the φ−1 interior cut points used to
        assign codes (useful to describe a range in data units).
    """

    codes: np.ndarray
    n_ranges: int
    feature_names: tuple[str, ...] | None = None
    boundaries: tuple[np.ndarray, ...] | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        codes = np.asarray(self.codes)
        if codes.ndim != 2:
            raise ValidationError(f"codes must be 2-dimensional, got ndim={codes.ndim}")
        if not np.issubdtype(codes.dtype, np.integer):
            raise ValidationError(f"codes must be integer-typed, got {codes.dtype}")
        phi = int(self.n_ranges)
        if phi < 1:
            raise ValidationError(f"n_ranges must be >= 1, got {phi}")
        valid = (codes == MISSING_CELL) | ((codes >= 0) & (codes < phi))
        if not valid.all():
            bad = codes[~valid][0]
            raise ValidationError(
                f"cell codes must be in [0, {phi}) or MISSING_CELL, found {bad}"
            )
        if self.feature_names is not None:
            names = tuple(str(n) for n in self.feature_names)
            if len(names) != codes.shape[1]:
                raise ValidationError(
                    f"feature_names has {len(names)} entries for {codes.shape[1]} columns"
                )
            object.__setattr__(self, "feature_names", names)
        object.__setattr__(self, "codes", codes)
        object.__setattr__(self, "n_ranges", phi)

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        """Number of data points N."""
        return self.codes.shape[0]

    @property
    def n_dims(self) -> int:
        """Total dimensionality d of the data."""
        return self.codes.shape[1]

    @property
    def missing_fraction(self) -> float:
        """Fraction of all cells that are missing."""
        return float(np.mean(self.codes == MISSING_CELL))

    def column(self, dim: int) -> np.ndarray:
        """The code column for attribute *dim* (a view, do not mutate)."""
        if not 0 <= dim < self.n_dims:
            raise ValidationError(f"dim must be in [0, {self.n_dims}), got {dim}")
        return self.codes[:, dim]

    def range_counts(self, dim: int) -> np.ndarray:
        """Occupancy of each of the φ ranges on attribute *dim*.

        For an equi-depth grid with no ties or missing values every
        entry is N/φ up to rounding; skewed occupancy signals heavy
        ties on that attribute.
        """
        col = self.column(dim)
        return np.bincount(col[col >= 0], minlength=self.n_ranges)

    def describe_range(self, dim: int, range_index: int) -> str:
        """Describe grid range *range_index* of *dim* in data units."""
        if not 0 <= range_index < self.n_ranges:
            raise ValidationError(
                f"range_index must be in [0, {self.n_ranges}), got {range_index}"
            )
        name = (
            self.feature_names[dim]
            if self.feature_names is not None
            else f"dim{dim}"
        )
        if self.boundaries is None:
            return f"{name} in range {range_index + 1}/{self.n_ranges}"
        cuts = self.boundaries[dim]
        lo = "-inf" if range_index == 0 else f"{cuts[range_index - 1]:.4g}"
        hi = "+inf" if range_index == self.n_ranges - 1 else f"{cuts[range_index]:.4g}"
        return f"{name} in ({lo}, {hi}]"

    def subset(self, rows: Sequence[int] | np.ndarray) -> "CellAssignment":
        """A new assignment restricted to the given row indices."""
        rows = np.asarray(rows)
        return CellAssignment(
            codes=self.codes[rows],
            n_ranges=self.n_ranges,
            feature_names=self.feature_names,
            boundaries=self.boundaries,
        )
