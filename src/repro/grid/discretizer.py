"""Grid discretizers: map real attributes to φ grid ranges each.

The paper (§1.3) discretizes every attribute into φ **equi-depth**
ranges so each range holds a fraction ``f = 1/φ`` of the records —
equi-depth rather than equi-width because "different localities of the
data have different densities".  :class:`EquiDepthDiscretizer` is that
construction; :class:`EquiWidthDiscretizer` is provided for ablations.

Both are fit/transform estimators: ``fit`` learns per-attribute cut
points from training data (ignoring NaN), ``transform`` maps any
conforming matrix to a :class:`~repro.grid.cells.CellAssignment`.
Missing values map to :data:`~repro.grid.cells.MISSING_CELL` and are
excluded from boundary estimation, which is what lets the method mine
projections from incompletely observed records (§1.2).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..exceptions import DiscretizationError, NotFittedError
from .cells import CellAssignment, MISSING_CELL

__all__ = [
    "GridDiscretizer",
    "EquiDepthDiscretizer",
    "EquiWidthDiscretizer",
    "StreamingReservoir",
]

#: Default reservoir size for the streamed fit: large enough that the
#: sampled quantiles sit within a fraction of a percent of the exact
#: ones (the equi-depth construction only needs cut points that split
#: the data into roughly equal ranges), small enough to always fit in
#: memory.
DEFAULT_SAMPLE_SIZE = 1 << 17


class StreamingReservoir:
    """Deterministic row reservoir over a stream of matrix chunks.

    Vectorized Algorithm R with a seeded generator: row *t* (0-based,
    counted across all chunks) replaces a uniformly drawn slot once the
    reservoir is full.  Exactly one variate is drawn per row beyond the
    fill — never per chunk — so the sampled rows are **invariant to how
    the stream is chunked**: any split of the same row sequence yields
    the same reservoir (property-tested).  While ``n_seen <= capacity``
    the reservoir holds every row in arrival order, making the streamed
    fit *exactly* equal to the in-memory fit on small data.
    """

    def __init__(self, capacity: int, random_state: int = 0):
        self.capacity = check_positive_int(capacity, "capacity")
        self._rng = np.random.default_rng(random_state)
        self._rows: np.ndarray | None = None
        self.n_seen = 0

    def update(self, chunk: np.ndarray) -> "StreamingReservoir":
        """Feed one ``(m, d)`` chunk of rows through the reservoir.

        Zero-row chunks are skipped — streaming readers routinely
        produce them (an empty final read, a filtered-out block) and
        they carry no information.
        """
        if np.asarray(chunk).ndim == 2 and np.asarray(chunk).shape[0] == 0:
            return self
        block = check_matrix(chunk, "chunk")
        if self._rows is None:
            self._rows = np.empty((self.capacity, block.shape[1]))
        elif block.shape[1] != self._rows.shape[1]:
            raise DiscretizationError(
                f"chunk has {block.shape[1]} columns, previous chunks had "
                f"{self._rows.shape[1]}"
            )
        m = block.shape[0]
        fill = min(max(self.capacity - self.n_seen, 0), m)
        if fill:
            self._rows[self.n_seen : self.n_seen + fill] = block[:fill]
        if m > fill:
            tail = block[fill:]
            # Row t (global index) survives into slot j ~ U{0..t} iff
            # j < capacity; later rows overwrite earlier winners of the
            # same slot, exactly as the scalar algorithm does.
            t = self.n_seen + fill + np.arange(tail.shape[0], dtype=np.int64)
            slots = (self._rng.random(tail.shape[0]) * (t + 1)).astype(np.int64)
            for i in np.nonzero(slots < self.capacity)[0]:
                self._rows[slots[i]] = tail[i]
        self.n_seen += m
        return self

    @property
    def rows(self) -> np.ndarray:
        """The sampled rows (a copy; ``min(n_seen, capacity)`` of them)."""
        if self._rows is None or self.n_seen == 0:
            raise DiscretizationError("reservoir has seen no rows")
        return self._rows[: min(self.n_seen, self.capacity)].copy()


class GridDiscretizer(abc.ABC):
    """Base class for per-attribute grid discretizers.

    Parameters
    ----------
    n_ranges:
        The grid resolution φ — number of ranges per attribute.  The
        paper's guidance (§2.4): pick φ large enough that a range is a
        "reasonable notion of locality" but small enough that a
        k-dimensional cube still expects multiple points.
    """

    def __init__(self, n_ranges: int = 10):
        self.n_ranges = check_positive_int(n_ranges, "n_ranges")
        self._boundaries: tuple[np.ndarray, ...] | None = None
        self._feature_names: tuple[str, ...] | None = None
        self._n_dims: int | None = None

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _compute_cuts(self, finite_column: np.ndarray) -> np.ndarray:
        """Return the φ−1 interior cut points for one attribute.

        *finite_column* contains only the finite (non-missing) values of
        the attribute and is guaranteed non-empty.
        """

    # ------------------------------------------------------------------
    @classmethod
    def from_cut_points(
        cls,
        boundaries: Sequence,
        feature_names: Sequence[str] | None = None,
    ) -> "GridDiscretizer":
        """Rebuild a fitted discretizer from stored cut points.

        *boundaries* is one array of φ−1 sorted interior cut points per
        attribute (what :attr:`boundaries` returns); this is how a
        persisted model restores its grid without the training data.
        """
        arrays = [np.asarray(cuts, dtype=np.float64) for cuts in boundaries]
        if not arrays:
            raise DiscretizationError("boundaries must cover at least one attribute")
        lengths = {a.shape for a in arrays}
        if len(lengths) != 1 or arrays[0].ndim != 1:
            raise DiscretizationError(
                "every attribute must have the same 1-D cut-point array"
            )
        for j, cuts in enumerate(arrays):
            if np.any(np.diff(cuts) < 0):
                raise DiscretizationError(f"cut points for column {j} are not sorted")
        instance = cls(n_ranges=arrays[0].size + 1)
        instance._boundaries = tuple(arrays)
        instance._n_dims = len(arrays)
        if feature_names is not None:
            names = tuple(str(n) for n in feature_names)
            if len(names) != len(arrays):
                raise DiscretizationError(
                    f"feature_names has {len(names)} entries for "
                    f"{len(arrays)} attributes"
                )
            instance._feature_names = names
        return instance

    def fit(self, data, feature_names: Sequence[str] | None = None) -> "GridDiscretizer":
        """Learn per-attribute cut points from *data*.

        NaN entries are treated as missing and excluded.  A column with
        no observed values at all is allowed (every transformed code
        will be missing); a constant column collapses to a single
        occupied range, which the counter handles gracefully.
        """
        array = check_matrix(data, "data")
        boundaries = []
        for j in range(array.shape[1]):
            column = array[:, j]
            finite = column[~np.isnan(column)]
            if finite.size == 0:
                cuts = np.zeros(self.n_ranges - 1)
            else:
                cuts = np.asarray(self._compute_cuts(finite), dtype=np.float64)
                if cuts.shape != (self.n_ranges - 1,):
                    raise DiscretizationError(
                        f"discretizer produced {cuts.shape} cuts for column {j}, "
                        f"expected ({self.n_ranges - 1},)"
                    )
                if np.any(np.diff(cuts) < 0):
                    raise DiscretizationError(
                        f"cut points for column {j} are not sorted: {cuts}"
                    )
            boundaries.append(cuts)
        self._boundaries = tuple(boundaries)
        self._n_dims = array.shape[1]
        if feature_names is not None:
            names = tuple(str(n) for n in feature_names)
            if len(names) != array.shape[1]:
                raise DiscretizationError(
                    f"feature_names has {len(names)} entries for "
                    f"{array.shape[1]} columns"
                )
            self._feature_names = names
        else:
            self._feature_names = None
        return self

    def fit_from_chunks(
        self,
        chunks,
        feature_names: Sequence[str] | None = None,
        *,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        random_state: int = 0,
    ) -> "GridDiscretizer":
        """Learn cut points from streamed row chunks, never the full array.

        The chunks flow through a :class:`StreamingReservoir` of
        *sample_size* rows (seeded by *random_state*; deterministic and
        invariant to chunk boundaries) and the cut points are computed
        by the ordinary :meth:`fit` on the sample.  When the stream has
        at most *sample_size* rows the result is **exactly** the
        in-memory fit; beyond that the cut points are the sample's
        quantiles — statistically indistinguishable for the equi-depth
        construction at the default size, and crucially never
        materializing more than the reservoir.

        This is the out-of-core fit path: pair it with
        :meth:`transform` per chunk and
        :meth:`~repro.grid.sharded.ShardedMaskStore.build_from_chunks`
        to take a dataset from disk to a countable store in bounded
        memory (see ``docs/scaling.md``).
        """
        reservoir = StreamingReservoir(sample_size, random_state=random_state)
        for chunk in chunks:
            reservoir.update(chunk)
        return self.fit(reservoir.rows, feature_names=feature_names)

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._boundaries is not None

    @property
    def boundaries(self) -> tuple[np.ndarray, ...]:
        """Per-attribute interior cut points (after fitting)."""
        if self._boundaries is None:
            raise NotFittedError("discretizer must be fitted before reading boundaries")
        return self._boundaries

    def transform(self, data) -> CellAssignment:
        """Map *data* to grid-range codes using the fitted cut points.

        Values outside the fitted range clamp to the first/last range;
        NaN maps to :data:`~repro.grid.cells.MISSING_CELL`.
        """
        if self._boundaries is None:
            raise NotFittedError("discretizer must be fitted before transform")
        array = check_matrix(data, "data")
        if array.shape[1] != self._n_dims:
            raise DiscretizationError(
                f"data has {array.shape[1]} columns but discretizer was "
                f"fitted on {self._n_dims}"
            )
        codes = np.empty(array.shape, dtype=np.int16)
        for j, cuts in enumerate(self._boundaries):
            column = array[:, j]
            missing = np.isnan(column)
            # A value v lands in range r = #{cuts < v}: ranges are the
            # half-open intervals (cut[r-1], cut[r]] plus open tails.
            col_codes = np.searchsorted(cuts, column, side="left").astype(np.int16)
            col_codes[missing] = MISSING_CELL
            codes[:, j] = col_codes
        return CellAssignment(
            codes=codes,
            n_ranges=self.n_ranges,
            feature_names=self._feature_names,
            boundaries=self._boundaries,
        )

    def fit_transform(self, data, feature_names: Sequence[str] | None = None) -> CellAssignment:
        """Convenience: :meth:`fit` then :meth:`transform` on *data*."""
        return self.fit(data, feature_names=feature_names).transform(data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_ranges={self.n_ranges})"


class EquiDepthDiscretizer(GridDiscretizer):
    """Equi-depth (quantile) grid: each range holds ~N/φ records.

    This is the paper's construction.  Cut points sit at the
    ``i/φ`` quantiles of the observed values.  Heavily tied attributes
    can produce duplicate cut points, leaving some ranges empty — the
    sparsity coefficient still behaves sensibly because it compares
    against the idealized expectation ``N·f^k`` exactly as the paper
    defines it.
    """

    def _compute_cuts(self, finite_column: np.ndarray) -> np.ndarray:
        probs = np.arange(1, self.n_ranges) / self.n_ranges
        return np.quantile(finite_column, probs)


class EquiWidthDiscretizer(GridDiscretizer):
    """Equi-width grid: ranges of equal length over the observed span.

    Provided as an ablation of the paper's equi-depth choice; with
    skewed data most records pile into a few ranges and the sparsity
    coefficient loses its locality interpretation.
    """

    def _compute_cuts(self, finite_column: np.ndarray) -> np.ndarray:
        lo = float(finite_column.min())
        hi = float(finite_column.max())
        if lo == hi:
            return np.full(self.n_ranges - 1, lo)
        return np.linspace(lo, hi, self.n_ranges + 1)[1:-1]
