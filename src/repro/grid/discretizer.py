"""Grid discretizers: map real attributes to φ grid ranges each.

The paper (§1.3) discretizes every attribute into φ **equi-depth**
ranges so each range holds a fraction ``f = 1/φ`` of the records —
equi-depth rather than equi-width because "different localities of the
data have different densities".  :class:`EquiDepthDiscretizer` is that
construction; :class:`EquiWidthDiscretizer` is provided for ablations.

Both are fit/transform estimators: ``fit`` learns per-attribute cut
points from training data (ignoring NaN), ``transform`` maps any
conforming matrix to a :class:`~repro.grid.cells.CellAssignment`.
Missing values map to :data:`~repro.grid.cells.MISSING_CELL` and are
excluded from boundary estimation, which is what lets the method mine
projections from incompletely observed records (§1.2).

Incremental fitting
-------------------
The equi-depth construction is algebraically mergeable: cut points are
order statistics, so a :class:`StreamingReservoir` sketch of the rows
determines them.  :meth:`GridDiscretizer.partial_fit` absorbs chunks
into the sketch, :meth:`GridDiscretizer.merge` folds another
discretizer's sketch in, and :meth:`GridDiscretizer.rebin` lazily
recomputes cut points from the sketch.  While the total row count fits
the sketch capacity the reservoir holds *every* row in arrival order,
so any interleaving of ``partial_fit``/``merge`` followed by ``rebin``
is **bit-identical** to a one-shot :meth:`GridDiscretizer.fit` on the
concatenated data (``np.quantile`` sorts its input, so equal multisets
give equal cuts).  Beyond capacity the sketch degrades gracefully to a
seeded uniform sample and the equality becomes statistical — the
documented sketch tolerance (see ``docs/streaming.md``).
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from typing import Any

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..exceptions import DiscretizationError, NotFittedError
from .cells import CellAssignment, MISSING_CELL

__all__ = [
    "GridDiscretizer",
    "EquiDepthDiscretizer",
    "EquiWidthDiscretizer",
    "StreamingReservoir",
    "DEFAULT_SAMPLE_SIZE",
]

#: Default reservoir size for the streamed fit: large enough that the
#: sampled quantiles sit within a fraction of a percent of the exact
#: ones (the equi-depth construction only needs cut points that split
#: the data into roughly equal ranges), small enough to always fit in
#: memory.
DEFAULT_SAMPLE_SIZE = 1 << 17


class StreamingReservoir:
    """Deterministic row reservoir over a stream of matrix chunks.

    Vectorized Algorithm R with a seeded generator: row *t* (0-based,
    counted across all chunks) replaces a uniformly drawn slot once the
    reservoir is full.  Exactly one variate is drawn per row beyond the
    fill — never per chunk — so the sampled rows are **invariant to how
    the stream is chunked**: any split of the same row sequence yields
    the same reservoir (property-tested).  While ``n_seen <= capacity``
    the reservoir holds every row in arrival order, making the streamed
    fit *exactly* equal to the in-memory fit on small data.
    """

    def __init__(self, capacity: int, random_state: int = 0):
        self.capacity = check_positive_int(capacity, "capacity")
        self._rng = np.random.default_rng(random_state)
        self._rows: np.ndarray | None = None
        self.n_seen = 0

    def update(self, chunk: np.ndarray) -> "StreamingReservoir":
        """Feed one ``(m, d)`` chunk of rows through the reservoir.

        Zero-row chunks are skipped — streaming readers routinely
        produce them (an empty final read, a filtered-out block) and
        they carry no information.
        """
        if np.asarray(chunk).ndim == 2 and np.asarray(chunk).shape[0] == 0:
            return self
        block = check_matrix(chunk, "chunk")
        if self._rows is None:
            self._rows = np.empty((self.capacity, block.shape[1]))
        elif block.shape[1] != self._rows.shape[1]:
            raise DiscretizationError(
                f"chunk has {block.shape[1]} columns, previous chunks had "
                f"{self._rows.shape[1]}"
            )
        m = block.shape[0]
        fill = min(max(self.capacity - self.n_seen, 0), m)
        if fill:
            self._rows[self.n_seen : self.n_seen + fill] = block[:fill]
        if m > fill:
            tail = block[fill:]
            # Row t (global index) survives into slot j ~ U{0..t} iff
            # j < capacity; later rows overwrite earlier winners of the
            # same slot, exactly as the scalar algorithm does.
            t = self.n_seen + fill + np.arange(tail.shape[0], dtype=np.int64)
            slots = (self._rng.random(tail.shape[0]) * (t + 1)).astype(np.int64)
            for i in np.nonzero(slots < self.capacity)[0]:
                self._rows[slots[i]] = tail[i]
        self.n_seen += m
        return self

    @property
    def rows(self) -> np.ndarray:
        """The sampled rows (a copy; ``min(n_seen, capacity)`` of them)."""
        if self._rows is None or self.n_seen == 0:
            raise DiscretizationError("reservoir has seen no rows")
        return self._rows[: min(self.n_seen, self.capacity)].copy()

    # -- persistence -----------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the full reservoir state.

        Restoring via :meth:`from_state_dict` and continuing the stream
        is bit-identical to never having paused: the sampled rows, the
        global row counter, and the generator state all round-trip.
        """
        held = min(self.n_seen, self.capacity)
        return {
            "capacity": int(self.capacity),
            "n_seen": int(self.n_seen),
            "n_cols": None if self._rows is None else int(self._rows.shape[1]),
            "rows": [] if self._rows is None else self._rows[:held].tolist(),
            "rng_state": self._rng.bit_generator.state,
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> "StreamingReservoir":
        """Rebuild a reservoir from :meth:`state_dict` output."""
        try:
            reservoir = cls(int(state["capacity"]))
            reservoir._rng.bit_generator.state = state["rng_state"]
            reservoir.n_seen = int(state["n_seen"])
            n_cols = state.get("n_cols")
        except (KeyError, TypeError, ValueError) as exc:
            raise DiscretizationError(f"malformed reservoir state: {exc}") from exc
        if n_cols is not None:
            reservoir._rows = np.empty((reservoir.capacity, int(n_cols)))
            rows = np.asarray(state.get("rows", []), dtype=np.float64)
            if rows.size:
                rows = rows.reshape(-1, int(n_cols))
                if rows.shape[0] > reservoir.capacity:
                    raise DiscretizationError(
                        f"reservoir state holds {rows.shape[0]} rows for "
                        f"capacity {reservoir.capacity}"
                    )
                reservoir._rows[: rows.shape[0]] = rows
        return reservoir


class GridDiscretizer(abc.ABC):
    """Base class for per-attribute grid discretizers.

    Parameters
    ----------
    n_ranges:
        The grid resolution φ — number of ranges per attribute.  The
        paper's guidance (§2.4): pick φ large enough that a range is a
        "reasonable notion of locality" but small enough that a
        k-dimensional cube still expects multiple points.
    sketch_size:
        When given, :meth:`fit` additionally seeds a
        :class:`StreamingReservoir` of this capacity with the training
        rows, making the discretizer incrementally updatable via
        :meth:`partial_fit` / :meth:`merge` / :meth:`rebin`.  ``None``
        (the default) keeps the classic zero-overhead batch behaviour;
        ``partial_fit`` on a *fresh* discretizer still auto-enables a
        default-sized sketch.
    sketch_random_state:
        Seed for the sketch reservoir.
    """

    def __init__(
        self,
        n_ranges: int = 10,
        *,
        sketch_size: int | None = None,
        sketch_random_state: int = 0,
    ):
        self.n_ranges = check_positive_int(n_ranges, "n_ranges")
        self._boundaries: tuple[np.ndarray, ...] | None = None
        self._feature_names: tuple[str, ...] | None = None
        self._n_dims: int | None = None
        self._sketch_size = (
            None if sketch_size is None else check_positive_int(sketch_size, "sketch_size")
        )
        self._sketch_seed = sketch_random_state
        self._sketch: StreamingReservoir | None = None
        self._sketch_stale = False

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _compute_cuts(self, finite_column: np.ndarray) -> np.ndarray:
        """Return the φ−1 interior cut points for one attribute.

        *finite_column* contains only the finite (non-missing) values of
        the attribute and is guaranteed non-empty.
        """

    # ------------------------------------------------------------------
    @classmethod
    def from_cut_points(
        cls,
        boundaries: Sequence,
        feature_names: Sequence[str] | None = None,
    ) -> "GridDiscretizer":
        """Rebuild a fitted discretizer from stored cut points.

        *boundaries* is one array of φ−1 sorted interior cut points per
        attribute (what :attr:`boundaries` returns); this is how a
        persisted model restores its grid without the training data.
        """
        arrays = [np.asarray(cuts, dtype=np.float64) for cuts in boundaries]
        if not arrays:
            raise DiscretizationError("boundaries must cover at least one attribute")
        lengths = {a.shape for a in arrays}
        if len(lengths) != 1 or arrays[0].ndim != 1:
            raise DiscretizationError(
                "every attribute must have the same 1-D cut-point array"
            )
        for j, cuts in enumerate(arrays):
            if np.any(np.diff(cuts) < 0):
                raise DiscretizationError(f"cut points for column {j} are not sorted")
        instance = cls(n_ranges=arrays[0].size + 1)
        instance._boundaries = tuple(arrays)
        instance._n_dims = len(arrays)
        if feature_names is not None:
            names = tuple(str(n) for n in feature_names)
            if len(names) != len(arrays):
                raise DiscretizationError(
                    f"feature_names has {len(names)} entries for "
                    f"{len(arrays)} attributes"
                )
            instance._feature_names = names
        return instance

    # -- fitting helpers -----------------------------------------------
    def _column_cuts(self, finite: np.ndarray, j: int) -> np.ndarray:
        """Validated cut points for one column's finite values."""
        if finite.size == 0:
            return np.zeros(self.n_ranges - 1)
        cuts = np.asarray(self._compute_cuts(finite), dtype=np.float64)
        if cuts.shape != (self.n_ranges - 1,):
            raise DiscretizationError(
                f"discretizer produced {cuts.shape} cuts for column {j}, "
                f"expected ({self.n_ranges - 1},)"
            )
        if np.any(np.diff(cuts) < 0):
            raise DiscretizationError(
                f"cut points for column {j} are not sorted: {cuts}"
            )
        return cuts

    def _install_names(
        self, n_cols: int, feature_names: Sequence[str] | None
    ) -> None:
        if feature_names is not None:
            names = tuple(str(n) for n in feature_names)
            if len(names) != n_cols:
                raise DiscretizationError(
                    f"feature_names has {len(names)} entries for "
                    f"{n_cols} columns"
                )
            self._feature_names = names
        else:
            self._feature_names = None

    def _fit_cuts(self, array: np.ndarray) -> None:
        """Compute and install boundaries from *array*, nothing else."""
        boundaries = []
        for j in range(array.shape[1]):
            column = array[:, j]
            boundaries.append(self._column_cuts(column[~np.isnan(column)], j))
        self._boundaries = tuple(boundaries)
        self._n_dims = array.shape[1]

    def _seed_sketch(self, array: np.ndarray) -> None:
        """Reset the sketch (when enabled) to exactly the fitted rows."""
        if self._sketch_size is not None:
            self._sketch = StreamingReservoir(
                self._sketch_size, random_state=self._sketch_seed
            )
            self._sketch.update(array)
            self._sketch_stale = False

    def fit(self, data, feature_names: Sequence[str] | None = None) -> "GridDiscretizer":
        """Learn per-attribute cut points from *data*.

        NaN entries are treated as missing and excluded.  A column with
        no observed values at all is allowed (every transformed code
        will be missing); a constant column collapses to a single
        occupied range, which the counter handles gracefully.
        """
        array = check_matrix(data, "data")
        self._fit_cuts(array)
        self._install_names(array.shape[1], feature_names)
        self._seed_sketch(array)
        return self

    # -- incremental fitting -------------------------------------------
    @property
    def sketch(self) -> StreamingReservoir | None:
        """The row sketch backing incremental fits (``None`` when disabled)."""
        return self._sketch

    @property
    def sketch_stale(self) -> bool:
        """True when the sketch has absorbed rows the cut points haven't."""
        return self._sketch_stale

    def enable_sketch(
        self,
        data=None,
        *,
        capacity: int | None = None,
        random_state: int | None = None,
    ) -> "GridDiscretizer":
        """Attach a fresh row sketch, optionally pre-seeded with *data*.

        Use this to make an already-fitted discretizer incremental:
        pass the rows the current cut points were computed from so the
        sketch stays consistent with the grid.  Replaces any existing
        sketch.
        """
        if capacity is not None:
            self._sketch_size = check_positive_int(capacity, "capacity")
        elif self._sketch_size is None:
            self._sketch_size = DEFAULT_SAMPLE_SIZE
        if random_state is not None:
            self._sketch_seed = random_state
        self._sketch = StreamingReservoir(
            self._sketch_size, random_state=self._sketch_seed
        )
        if data is not None:
            self._sketch.update(check_matrix(data, "data"))
        self._sketch_stale = False
        return self

    def restore_sketch(self, state: dict[str, Any]) -> "GridDiscretizer":
        """Re-attach a sketch persisted via ``sketch.state_dict()``."""
        self._sketch = StreamingReservoir.from_state_dict(state)
        self._sketch_size = self._sketch.capacity
        self._sketch_stale = False
        return self

    def partial_fit(
        self, chunk, feature_names: Sequence[str] | None = None
    ) -> "GridDiscretizer":
        """Absorb one chunk of rows into the sketch (cut points unchanged).

        The cut points do **not** move until :meth:`rebin` — transforms
        between updates stay on the current grid, which is what keeps
        appended cube counts comparable.  On a fresh discretizer this
        auto-enables a default-sized sketch; on one fitted *without* a
        sketch it raises (call :meth:`enable_sketch` with the original
        rows first, or construct with ``sketch_size=``).
        """
        if self._sketch is None:
            if self.is_fitted and self._sketch_size is None:
                raise DiscretizationError(
                    "discretizer was fitted without a sketch; call "
                    "enable_sketch(original_rows) or construct with "
                    "sketch_size= before partial_fit"
                )
            self.enable_sketch()
        assert self._sketch is not None
        self._sketch.update(chunk)
        if feature_names is not None:
            block = np.asarray(chunk)
            n_cols = block.shape[1] if block.ndim == 2 else (self._n_dims or 0)
            self._install_names(n_cols, feature_names)
        self._sketch_stale = True
        return self

    def merge(self, other: "GridDiscretizer") -> "GridDiscretizer":
        """Fold another discretizer's sketched rows into this sketch.

        Both sides must share the concrete class and φ.  The merge is
        **exact** — ``rebin()`` afterwards equals a one-shot fit on the
        concatenated rows — whenever both sketches are under capacity
        and their combined row count still fits this sketch.  Beyond
        that it is a deterministic approximation: the other side's
        sampled rows stream through this reservoir (the documented
        sketch tolerance, see ``docs/streaming.md``).
        """
        if type(other) is not type(self):
            raise DiscretizationError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        if other.n_ranges != self.n_ranges:
            raise DiscretizationError(
                f"cannot merge discretizers with n_ranges {other.n_ranges} "
                f"and {self.n_ranges}"
            )
        if other._sketch is None:
            if other.is_fitted:
                raise DiscretizationError(
                    "cannot merge a discretizer fitted without a sketch"
                )
            return self
        if self._sketch is None:
            if self.is_fitted and self._sketch_size is None:
                raise DiscretizationError(
                    "discretizer was fitted without a sketch; call "
                    "enable_sketch(original_rows) before merge"
                )
            self.enable_sketch()
        assert self._sketch is not None
        if other._sketch.n_seen > 0:
            self._sketch.update(other._sketch.rows)
            self._sketch_stale = True
        if self._feature_names is None and other._feature_names is not None:
            self._feature_names = other._feature_names
        return self

    def rebin(self, *, force: bool = False) -> "GridDiscretizer":
        """Recompute cut points from the sketch (lazy: no-op when fresh).

        Returns ``self``.  Raises when no sketched rows exist to rebin
        from.  ``force=True`` recomputes even when the sketch is not
        stale.
        """
        if self._sketch is None or self._sketch.n_seen == 0:
            raise DiscretizationError(
                "nothing to rebin from: the sketch holds no rows "
                "(feed partial_fit/merge first)"
            )
        if self.is_fitted and not self._sketch_stale and not force:
            return self
        self._fit_cuts(self._sketch.rows)
        self._sketch_stale = False
        return self

    def fit_from_chunks(
        self,
        chunks,
        feature_names: Sequence[str] | None = None,
        *,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        random_state: int = 0,
    ) -> "GridDiscretizer":
        """Learn cut points from streamed row chunks, never the full array.

        The chunks flow through a :class:`StreamingReservoir` of
        *sample_size* rows (seeded by *random_state*; deterministic and
        invariant to chunk boundaries) and the cut points are computed
        from the sample.  When the stream has at most *sample_size*
        rows the result is **exactly** the in-memory fit; beyond that
        the cut points are the sample's quantiles — statistically
        indistinguishable for the equi-depth construction at the
        default size, and crucially never materializing more than the
        reservoir.  The reservoir is retained as the discretizer's
        sketch, so the streamed fit is immediately continuable via
        :meth:`partial_fit` / :meth:`merge`.

        This is the out-of-core fit path: pair it with
        :meth:`transform` per chunk and
        :meth:`~repro.grid.sharded.ShardedMaskStore.build_from_chunks`
        to take a dataset from disk to a countable store in bounded
        memory (see ``docs/scaling.md``).
        """
        self._sketch_size = check_positive_int(sample_size, "sample_size")
        self._sketch_seed = random_state
        self._sketch = StreamingReservoir(sample_size, random_state=random_state)
        for chunk in chunks:
            self._sketch.update(chunk)
        if self._sketch.n_seen == 0:
            raise DiscretizationError("reservoir has seen no rows")
        self._fit_cuts(self._sketch.rows)
        self._install_names(int(self._n_dims or 0), feature_names)
        self._sketch_stale = False
        return self

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return self._boundaries is not None

    @property
    def boundaries(self) -> tuple[np.ndarray, ...]:
        """Per-attribute interior cut points (after fitting)."""
        if self._boundaries is None:
            raise NotFittedError("discretizer must be fitted before reading boundaries")
        return self._boundaries

    def transform(self, data) -> CellAssignment:
        """Map *data* to grid-range codes using the fitted cut points.

        Values outside the fitted range clamp to the first/last range;
        NaN maps to :data:`~repro.grid.cells.MISSING_CELL`.
        """
        if self._boundaries is None:
            raise NotFittedError("discretizer must be fitted before transform")
        array = check_matrix(data, "data")
        if array.shape[1] != self._n_dims:
            raise DiscretizationError(
                f"data has {array.shape[1]} columns but discretizer was "
                f"fitted on {self._n_dims}"
            )
        codes = np.empty(array.shape, dtype=np.int16)
        for j, cuts in enumerate(self._boundaries):
            column = array[:, j]
            codes[:, j] = self._column_codes(column, cuts, np.isnan(column))
        return CellAssignment(
            codes=codes,
            n_ranges=self.n_ranges,
            feature_names=self._feature_names,
            boundaries=self._boundaries,
        )

    @staticmethod
    def _column_codes(
        column: np.ndarray, cuts: np.ndarray, missing: np.ndarray
    ) -> np.ndarray:
        """Range codes for one column under fixed cut points.

        A value v lands in range r = #{cuts < v}: ranges are the
        half-open intervals (cut[r-1], cut[r]] plus open tails.
        *missing* is the column's precomputed NaN mask.
        """
        col_codes = np.searchsorted(cuts, column, side="left").astype(np.int16)
        col_codes[missing] = MISSING_CELL
        return col_codes

    def fit_transform(self, data, feature_names: Sequence[str] | None = None) -> CellAssignment:
        """Fit on *data* and return its codes in a single pass.

        Bit-identical to ``fit(data).transform(data)`` but each column
        is scanned once: the NaN mask computed for boundary estimation
        is reused for the code assignment instead of a second full
        :meth:`transform` pass (regression-tested).
        """
        array = check_matrix(data, "data")
        codes = np.empty(array.shape, dtype=np.int16)
        boundaries = []
        for j in range(array.shape[1]):
            column = array[:, j]
            missing = np.isnan(column)
            cuts = self._column_cuts(column[~missing], j)
            boundaries.append(cuts)
            codes[:, j] = self._column_codes(column, cuts, missing)
        self._boundaries = tuple(boundaries)
        self._n_dims = array.shape[1]
        self._install_names(array.shape[1], feature_names)
        self._seed_sketch(array)
        return CellAssignment(
            codes=codes,
            n_ranges=self.n_ranges,
            feature_names=self._feature_names,
            boundaries=self._boundaries,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n_ranges={self.n_ranges})"


class EquiDepthDiscretizer(GridDiscretizer):
    """Equi-depth (quantile) grid: each range holds ~N/φ records.

    This is the paper's construction.  Cut points sit at the
    ``i/φ`` quantiles of the observed values.  Heavily tied attributes
    can produce duplicate cut points, leaving some ranges empty — the
    sparsity coefficient still behaves sensibly because it compares
    against the idealized expectation ``N·f^k`` exactly as the paper
    defines it.
    """

    def _compute_cuts(self, finite_column: np.ndarray) -> np.ndarray:
        probs = np.arange(1, self.n_ranges) / self.n_ranges
        return np.quantile(finite_column, probs)


class EquiWidthDiscretizer(GridDiscretizer):
    """Equi-width grid: ranges of equal length over the observed span.

    Provided as an ablation of the paper's equi-depth choice; with
    skewed data most records pile into a few ranges and the sparsity
    coefficient loses its locality interpretation.
    """

    def _compute_cuts(self, finite_column: np.ndarray) -> np.ndarray:
        lo = float(finite_column.min())
        hi = float(finite_column.max())
        if lo == hi:
            return np.full(self.n_ranges - 1, lo)
        return np.linspace(lo, hi, self.n_ranges + 1)[1:-1]
