"""Bit-packed cube counting: 8x less mask memory, popcount counting.

:class:`~repro.grid.counter.CubeCounter` stores one boolean byte per
point per (dimension, range) pair — ``d·φ·N`` bytes.  At the paper's
scale that is nothing, but the same system applied to millions of rows
and hundreds of attributes pays real memory (1 GB at N = 10⁶, d = 100,
φ = 10).  :class:`PackedCubeCounter` packs each membership mask into
bits (``numpy.packbits``) and counts cubes with AND + popcount over
``uint8`` words, cutting mask storage by 8x while returning *exactly*
the same counts (equivalence is property-tested).

It is a drop-in subclass: every public method of ``CubeCounter`` —
``count``, ``mask``, ``extension_counts``, ``covered_points`` — behaves
identically, so the searchers accept it unchanged.
"""

from __future__ import annotations

import numpy as np

from ..core.subspace import Subspace
from .counter import CubeCounter

__all__ = ["PackedCubeCounter"]


class PackedCubeCounter(CubeCounter):
    """A :class:`CubeCounter` with bit-packed membership masks.

    Same constructor, same behaviour; the only observable differences
    are memory footprint (masks shrink 8x) and the per-count cost
    profile (AND + popcount over packed words instead of boolean
    reduction).
    """

    def _build_masks(self) -> None:
        codes = self.cells.codes
        phi = self.cells.n_ranges
        n = self.cells.n_points
        self._n_words = (n + 7) // 8
        # packed[dim] is a (phi, n_words) uint8 array: bit j of word w
        # marks point 8*w + j (big-endian bit order, numpy default).
        self._masks: list[np.ndarray] = []
        for j in range(self.cells.n_dims):
            col = codes[:, j]
            dense = np.zeros((phi, n), dtype=bool)
            observed = col >= 0
            dense[col[observed], np.nonzero(observed)[0]] = True
            self._masks.append(np.packbits(dense, axis=1))

    # ------------------------------------------------------------------
    def _packed_cube(self, subspace: Subspace) -> np.ndarray:
        """AND of the cube's packed masks (all-ones for the empty cube)."""
        if not subspace.dims:
            out = np.full(self._n_words, 0xFF, dtype=np.uint8)
            # Mask off the padding bits past N.
            tail = self.cells.n_points % 8
            if tail:
                out[-1] = (0xFF << (8 - tail)) & 0xFF
            return out
        dim0, rng0 = subspace.dims[0], subspace.ranges[0]
        out = self._masks[dim0][rng0].copy()
        for dim, rng in list(subspace)[1:]:
            np.bitwise_and(out, self._masks[dim][rng], out=out)
        return out

    def _count_uncached(self, subspace: Subspace) -> int:
        return int(np.bitwise_count(self._packed_cube(subspace)).sum())

    def mask(self, subspace: Subspace) -> np.ndarray:
        """Boolean membership mask (unpacked from the bit representation)."""
        self._check_subspace(subspace)
        packed = self._packed_cube(subspace)
        return np.unpackbits(packed, count=self.cells.n_points).view(bool)

    def mask_memory_bytes(self) -> int:
        """Total bytes held by the packed per-range masks."""
        return sum(mask.nbytes for mask in self._masks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PackedCubeCounter(N={self.n_points}, d={self.n_dims}, "
            f"phi={self.n_ranges}, masks={self.mask_memory_bytes()}B)"
        )
