"""Bit-packed cube counting: 8x less mask memory, popcount counting.

:class:`~repro.grid.counter.CubeCounter` stores one boolean byte per
point per (dimension, range) pair — ``d·φ·N`` bytes.  At the paper's
scale that is nothing, but the same system applied to millions of rows
and hundreds of attributes pays real memory (1 GB at N = 10⁶, d = 100,
φ = 10).  :class:`PackedCubeCounter` packs each membership mask into
bits (``numpy.packbits``) and counts cubes with AND + popcount, cutting
mask storage by 8x while returning *exactly* the same counts
(equivalence is property-tested).

The packed rows are zero-padded to a multiple of 8 bytes so the batch
engine (:meth:`~repro.grid.counter.CubeCounter.count_batch`) can view
them as **uint64 words**: a population-sized batch then reduces to a
handful of vectorized word-wise AND + ``bitwise_count`` passes over a
``(batch, N/64)`` array — the fast path the GA and the level-batched
brute force run on.

It is a drop-in subclass: every public method of ``CubeCounter`` —
``count``, ``count_batch``, ``mask``, ``extension_counts``,
``covered_points`` — behaves identically, so the searchers accept it
unchanged.
"""

from __future__ import annotations

import numpy as np

from ..core.subspace import Subspace
from ..resilience.faults import maybe_inject
from .counter import CubeCounter

__all__ = ["PackedCubeCounter", "pack_codes_block", "packed_row_bytes"]


def packed_row_bytes(n_points: int) -> int:
    """Bytes per packed mask row for *n_points*, padded to uint64 words."""
    n_bytes = (n_points + 7) // 8
    return ((n_bytes + 7) // 8) * 8


def pack_codes_block(codes: np.ndarray, n_ranges: int) -> np.ndarray:
    """Bit-pack one block of grid codes into a ``(d, φ, W8)`` mask stack.

    *codes* is an ``(n, d)`` integer code block (``MISSING_CELL`` rows
    set no bit); the result holds one packed membership row per
    ``(dimension, range)`` pair, each zero-padded to a uint64 boundary
    so it can be viewed as ``uint64`` words (padding bits are inert
    under AND and popcount).  Packing a row *shard* of a dataset with
    this function and summing per-shard popcounts is bit-identical to
    packing the whole dataset at once — counts are additive across row
    shards — which is what the out-of-core store
    (:mod:`repro.grid.sharded`) relies on.
    """
    n, n_dims = codes.shape
    n_bytes = (n + 7) // 8
    padded = packed_row_bytes(n)
    maybe_inject("packed_alloc", kind="packed", n_points=n)
    stack8 = np.zeros((n_dims, n_ranges, padded), dtype=np.uint8)
    for j in range(n_dims):
        col = codes[:, j]
        dense = np.zeros((n_ranges, n), dtype=bool)
        observed = col >= 0
        dense[col[observed], np.nonzero(observed)[0]] = True
        # packed[r] bit j of byte w marks point 8*w + j (big-endian
        # bit order, the numpy default).
        stack8[j, :, :n_bytes] = np.packbits(dense, axis=1)
    return stack8


class PackedCubeCounter(CubeCounter):
    """A :class:`CubeCounter` with bit-packed membership masks.

    Same constructor, same behaviour; the only observable differences
    are memory footprint (masks shrink 8x) and the per-count cost
    profile (AND + popcount over packed words instead of boolean
    reduction).
    """

    _packed_stack = True

    def _build_masks(self) -> None:
        stack8 = pack_codes_block(self.cells.codes, self.cells.n_ranges)
        self._n_words = stack8.shape[2]
        # Byte view for the single-cube paths (unpackbits), word view
        # for the batch kernel.  Word byte-order is irrelevant to AND
        # and popcount, so the reinterpret cast is safe.
        self._stack8 = stack8
        self._stack = stack8.view(np.uint64)
        self._masks: list[np.ndarray] = [
            stack8[j] for j in range(self.cells.n_dims)
        ]

    # ------------------------------------------------------------------
    def _block_stack(self, block: np.ndarray) -> np.ndarray:
        """Packed mask stack over *block* only (own zero-based padding)."""
        return pack_codes_block(block, self.cells.n_ranges).view(np.uint64)

    def _append_masks(self, block: np.ndarray) -> None:
        """Stitch *block*'s packed columns onto the existing stack.

        The first ``N0 // 8`` bytes of every mask row are complete and
        survive untouched; the boundary byte (when N0 is not a multiple
        of 8) mixes old-tail and new rows, so the tail region is
        re-packed from the concatenation of the old tail codes and the
        new block.  The stitched stack is byte-identical to packing the
        concatenated codes from scratch, because ``np.packbits`` packs
        row ``i`` into bit ``i % 8`` of byte ``i // 8`` independent of
        everything outside that byte.
        """
        n0 = self.cells.n_points
        n1 = n0 + block.shape[0]
        keep_bytes = n0 // 8
        tail_codes = np.concatenate(
            [self.cells.codes[keep_bytes * 8 :], block], axis=0
        )
        tail8 = pack_codes_block(tail_codes, self.cells.n_ranges)
        new_width = packed_row_bytes(n1)
        stack8 = np.zeros(
            (self.cells.n_dims, self.cells.n_ranges, new_width), dtype=np.uint8
        )
        stack8[:, :, :keep_bytes] = self._stack8[:, :, :keep_bytes]
        tail_bytes = (n1 + 7) // 8 - keep_bytes
        stack8[:, :, keep_bytes : keep_bytes + tail_bytes] = tail8[:, :, :tail_bytes]
        self._n_words = new_width
        self._stack8 = stack8
        self._stack = stack8.view(np.uint64)
        self._masks = [stack8[j] for j in range(self.cells.n_dims)]

    def _packed_cube(self, subspace: Subspace) -> np.ndarray:
        """AND of the cube's packed masks (all-ones for the empty cube)."""
        if not subspace.dims:
            out = np.zeros(self._n_words, dtype=np.uint8)
            n_bytes = (self.cells.n_points + 7) // 8
            out[:n_bytes] = 0xFF
            # Mask off the padding bits past N.
            tail = self.cells.n_points % 8
            if tail:
                out[n_bytes - 1] = (0xFF << (8 - tail)) & 0xFF
            return out
        dim0, rng0 = subspace.dims[0], subspace.ranges[0]
        out = self._masks[dim0][rng0].copy()
        for dim, rng in list(subspace)[1:]:
            np.bitwise_and(out, self._masks[dim][rng], out=out)
        return out

    def _count_uncached(self, subspace: Subspace) -> int:
        return int(np.bitwise_count(self._packed_cube(subspace)).sum())

    def mask(self, subspace: Subspace) -> np.ndarray:
        """Boolean membership mask (unpacked from the bit representation)."""
        self._check_subspace(subspace)
        packed = self._packed_cube(subspace)
        return np.unpackbits(packed, count=self.cells.n_points).view(bool)

    def mask_memory_bytes(self) -> int:
        """Total bytes held by the packed per-range masks."""
        return sum(mask.nbytes for mask in self._masks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PackedCubeCounter(N={self.n_points}, d={self.n_dims}, "
            f"phi={self.n_ranges}, masks={self.mask_memory_bytes()}B)"
        )
