"""Compiled counting kernel: AND + popcount at native speed.

The sparsity search spends essentially all of its time inside one loop
— AND k membership masks together and popcount the result.  The numpy
reference kernel (:func:`repro.grid.kernels.batch_counts`) pays several
full passes over a ``(B, W)`` accumulator plus per-op dispatch; a fused
native loop reads each word once, ANDs in registers and popcounts with
the hardware instruction.  This module provides that kernel behind a
tier ladder, best first:

``numba``
    A JIT-compiled byte-wise kernel (used when :mod:`numba` is
    importable).  Preferred because it needs no compiler toolchain at
    runtime.
``c``
    A tiny C kernel compiled on demand with the system C compiler
    (``cc``/``gcc``/``clang``; override with ``$REPRO_CC``) into a
    content-addressed shared library under the system temp directory,
    loaded through :mod:`ctypes`.  Word-wise ``__builtin_popcountll``
    with cache-blocked mask traversal.
``numpy``
    A pure-numpy row-blocked kernel — always available, so the native
    backend degrades gracefully when neither numba nor a C compiler
    exists.

Tier selection is automatic (first available wins) and can be forced
with ``$REPRO_NATIVE_KERNEL`` (``auto``/``numba``/``c``/``numpy``) or,
in tests, the :func:`forced_tier` context manager.  Every tier consumes
the same inputs — the counter's mask stack viewed as raw bytes — and
returns exact integer counts, so results are bit-identical across
tiers by construction; :mod:`repro.grid.backends` additionally *proves*
it against the reference kernel on a differential fixture before the
kernel may serve counts.

All three tiers operate on the stack's uint8 byte view, which unifies
the boolean counter (one 0/1 byte per point) and the packed counter
(8 points per byte): AND distributes over both layouts and popcount of
a 0/1 byte is its value, so one kernel serves both counters, including
ragged final words (padding bytes are zero, hence inert).
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import shutil
import subprocess
import tempfile
from collections.abc import Callable, Iterator
from contextlib import contextmanager

import numpy as np

from .._atomic import atomic_write_text
from ..exceptions import ValidationError

__all__ = [
    "KERNEL_TIERS",
    "available_tiers",
    "forced_tier",
    "kernel_info",
    "native_batch_counts",
    "resolve_tier",
]

logger = logging.getLogger(__name__)

#: Tier ladder, best first.  ``numpy`` is always available.
KERNEL_TIERS = ("numba", "c", "numpy")

#: Words per cache block for the C tier: 512 uint64 = 4 KiB per mask
#: row segment, so one block of every mask in a k-chain stays resident
#: in L1/L2 while all cubes traverse it.
_BLOCK_WORDS = 512

#: Rows per block for the numpy fallback: bounds the (rows, row_bytes)
#: accumulator so it stays cache-resident on wide stacks.
_BLOCK_ROWS = 128

#: An impl consumes ``(flat, rows, counts)``: ``flat`` is the
#: ``(n_masks, row_bytes)`` uint8 byte view of the mask stack, ``rows``
#: the ``(B, k)`` int64 flat mask indices, ``counts`` the ``(B,)``
#: int64 output.
_KernelImpl = Callable[[np.ndarray, np.ndarray, np.ndarray], None]

_C_SOURCE = """\
#include <stdint.h>
#include <string.h>

/* AND k mask rows, popcount the result: counts[b] = |AND_l rows[b][l]|.
 *
 * stack:     n_masks rows of row_bytes bytes each (C-contiguous)
 * rows:      n_cubes * k flat row indices
 * block:     words per cache block (<=0 means unblocked)
 *
 * Full 8-byte words go through __builtin_popcountll via memcpy loads
 * (safe for any alignment); a ragged tail (row_bytes % 8, only the
 * boolean counter at N % 8 != 0) is finished byte-wise.
 */
void repro_count_batch(const uint8_t *stack, int64_t row_bytes,
                       const int64_t *rows, int64_t n_cubes, int64_t k,
                       int64_t block, int64_t *counts)
{
    int64_t n_words = row_bytes / 8;
    int64_t tail = n_words * 8;
    if (block <= 0 || block > n_words) block = n_words;
    for (int64_t b = 0; b < n_cubes; b++) counts[b] = 0;
    for (int64_t lo = 0; lo < n_words; lo += block) {
        int64_t hi = lo + block < n_words ? lo + block : n_words;
        for (int64_t b = 0; b < n_cubes; b++) {
            const int64_t *r = rows + b * k;
            const uint8_t *m0 = stack + r[0] * row_bytes;
            int64_t acc = 0;
            if (k == 1) {
                for (int64_t w = lo; w < hi; w++) {
                    uint64_t v;
                    memcpy(&v, m0 + w * 8, 8);
                    acc += __builtin_popcountll(v);
                }
            } else if (k == 2) {
                const uint8_t *m1 = stack + r[1] * row_bytes;
                for (int64_t w = lo; w < hi; w++) {
                    uint64_t v, u;
                    memcpy(&v, m0 + w * 8, 8);
                    memcpy(&u, m1 + w * 8, 8);
                    acc += __builtin_popcountll(v & u);
                }
            } else if (k == 3) {
                const uint8_t *m1 = stack + r[1] * row_bytes;
                const uint8_t *m2 = stack + r[2] * row_bytes;
                for (int64_t w = lo; w < hi; w++) {
                    uint64_t v, u, t;
                    memcpy(&v, m0 + w * 8, 8);
                    memcpy(&u, m1 + w * 8, 8);
                    memcpy(&t, m2 + w * 8, 8);
                    acc += __builtin_popcountll(v & u & t);
                }
            } else if (k == 4) {
                const uint8_t *m1 = stack + r[1] * row_bytes;
                const uint8_t *m2 = stack + r[2] * row_bytes;
                const uint8_t *m3 = stack + r[3] * row_bytes;
                for (int64_t w = lo; w < hi; w++) {
                    uint64_t v, u, t, s;
                    memcpy(&v, m0 + w * 8, 8);
                    memcpy(&u, m1 + w * 8, 8);
                    memcpy(&t, m2 + w * 8, 8);
                    memcpy(&s, m3 + w * 8, 8);
                    acc += __builtin_popcountll(v & u & t & s);
                }
            } else {
                for (int64_t w = lo; w < hi; w++) {
                    uint64_t v;
                    memcpy(&v, m0 + w * 8, 8);
                    for (int64_t l = 1; l < k; l++) {
                        uint64_t m;
                        memcpy(&m, stack + r[l] * row_bytes + w * 8, 8);
                        v &= m;
                    }
                    acc += __builtin_popcountll(v);
                }
            }
            counts[b] += acc;
        }
    }
    if (tail < row_bytes) {
        for (int64_t b = 0; b < n_cubes; b++) {
            const int64_t *r = rows + b * k;
            int64_t acc = 0;
            for (int64_t t = tail; t < row_bytes; t++) {
                uint8_t v = stack[r[0] * row_bytes + t];
                for (int64_t l = 1; l < k; l++)
                    v &= stack[r[l] * row_bytes + t];
                acc += __builtin_popcount((unsigned)v);
            }
            counts[b] += acc;
        }
    }
}
"""

#: Per-tier impl cache: ``False`` = not yet probed, ``None`` =
#: unavailable in this environment.
_TIER_IMPLS: dict[str, _KernelImpl | None | bool] = {
    tier: False for tier in KERNEL_TIERS
}

#: Test override installed by :func:`forced_tier` (beats the env var).
_FORCED_TIER: str | None = None


# ----------------------------------------------------------------------
# tier implementations
# ----------------------------------------------------------------------
def _build_numba_impl() -> _KernelImpl | None:
    """The numba tier, or None when numba is not importable."""
    try:
        from numba import njit  # type: ignore[import-not-found]
    # A half-installed numba can raise beyond ImportError at import
    # time; any failure just means "no numba tier".
    except Exception:  # repro-lint: disable=RPL009
        return None
    popcount8 = np.array(
        [int(value).bit_count() for value in range(256)], dtype=np.int64
    )

    @njit(nogil=True, cache=False)
    def _kernel(
        flat: np.ndarray, rows: np.ndarray, counts: np.ndarray
    ) -> None:  # pragma: no cover - requires numba
        n_cubes, k = rows.shape
        row_bytes = flat.shape[1]
        for b in range(n_cubes):
            r0 = rows[b, 0]
            acc = 0
            for w in range(row_bytes):
                v = flat[r0, w]
                for level in range(1, k):
                    v &= flat[rows[b, level], w]
                acc += popcount8[v]
            counts[b] = acc

    # Warm the JIT on a trivial input so compilation errors surface at
    # resolution time (and are reported as tier-unavailable), not in
    # the middle of a search.
    probe_counts = np.zeros(1, dtype=np.int64)
    _kernel(
        np.ones((2, 8), dtype=np.uint8),
        np.array([[0, 1]], dtype=np.int64),
        probe_counts,
    )
    if int(probe_counts[0]) != 8:  # pragma: no cover - broken toolchain
        raise RuntimeError("numba kernel self-probe returned a wrong count")
    return _kernel


def _find_compiler() -> str | None:
    """The system C compiler executable, or None."""
    override = os.environ.get("REPRO_CC")
    if override:
        return shutil.which(override) or override
    for candidate in ("cc", "gcc", "clang"):
        found = shutil.which(candidate)
        if found:
            return found
    return None


def _compile_c_library(compiler: str) -> str:
    """Compile the C kernel into a content-addressed cached .so.

    The cache key digests the source, the compiler and the flag set, so
    a source or toolchain change recompiles instead of loading a stale
    library.  Concurrent builders (e.g. pool workers racing on a cold
    cache) are safe: each compiles to a private temp name and installs
    with an atomic :func:`os.replace`.
    """
    flags = ["-O3", "-shared", "-fPIC", "-funroll-loops"]
    digest = hashlib.sha256(
        "\x00".join([_C_SOURCE, compiler, *flags]).encode()
    ).hexdigest()[:16]
    cache_dir = os.environ.get("REPRO_NATIVE_CACHE") or os.path.join(
        tempfile.gettempdir(), "repro-native"
    )
    os.makedirs(cache_dir, exist_ok=True)
    lib_path = os.path.join(cache_dir, f"kernel-{digest}.so")
    if os.path.exists(lib_path):
        return lib_path
    src_path = os.path.join(cache_dir, f"kernel-{digest}.c")
    atomic_write_text(src_path, _C_SOURCE)
    build_path = f"{lib_path}.{os.getpid()}.tmp"
    # -march=native unlocks the hardware popcount instruction; retry
    # portably if this toolchain rejects it.
    for extra in (["-march=native"], []):
        proc = subprocess.run(
            [compiler, *flags, *extra, "-o", build_path, src_path],
            capture_output=True,
            text=True,
            check=False,
        )
        if proc.returncode == 0:
            os.replace(build_path, lib_path)
            return lib_path
    raise RuntimeError(
        f"C kernel compilation failed with {compiler}: {proc.stderr.strip()}"
    )


def _build_c_impl() -> _KernelImpl | None:
    """The compiled-C tier, or None without a working compiler."""
    compiler = _find_compiler()
    if compiler is None:
        return None
    lib = ctypes.CDLL(_compile_c_library(compiler))
    fn = lib.repro_count_batch
    fn.argtypes = [
        ctypes.c_void_p,  # stack bytes
        ctypes.c_int64,  # row_bytes
        ctypes.c_void_p,  # rows
        ctypes.c_int64,  # n_cubes
        ctypes.c_int64,  # k
        ctypes.c_int64,  # block words
        ctypes.c_void_p,  # counts out
    ]
    fn.restype = None

    def _impl(flat: np.ndarray, rows: np.ndarray, counts: np.ndarray) -> None:
        fn(
            flat.ctypes.data,
            flat.shape[1],
            rows.ctypes.data,
            rows.shape[0],
            rows.shape[1],
            _BLOCK_WORDS,
            counts.ctypes.data,
        )

    # Self-probe: 2 all-ones byte rows ANDed must popcount to 64.
    probe_counts = np.zeros(1, dtype=np.int64)
    _impl(
        np.full((2, 8), 0xFF, dtype=np.uint8),
        np.array([[0, 1]], dtype=np.int64),
        probe_counts,
    )
    if int(probe_counts[0]) != 64:  # pragma: no cover - broken toolchain
        raise RuntimeError("C kernel self-probe returned a wrong count")
    return _impl


def _numpy_impl(flat: np.ndarray, rows: np.ndarray, counts: np.ndarray) -> None:
    """Pure-numpy row-blocked fallback (always available)."""
    n_cubes, k = rows.shape
    for lo in range(0, n_cubes, _BLOCK_ROWS):
        hi = min(lo + _BLOCK_ROWS, n_cubes)
        acc = flat[rows[lo:hi, 0]]  # fancy indexing copies
        for level in range(1, k):
            np.bitwise_and(acc, flat[rows[lo:hi, level]], out=acc)
        counts[lo:hi] = np.bitwise_count(acc).sum(axis=1, dtype=np.int64)


_BUILDERS: dict[str, Callable[[], _KernelImpl | None]] = {
    "numba": _build_numba_impl,
    "c": _build_c_impl,
    "numpy": lambda: _numpy_impl,
}


# ----------------------------------------------------------------------
# tier resolution
# ----------------------------------------------------------------------
def _tier_impl(tier: str) -> _KernelImpl | None:
    """Build (once) and return the impl for *tier*, or None."""
    cached = _TIER_IMPLS[tier]
    if cached is not False:
        return cached  # type: ignore[return-value]
    try:
        impl = _BUILDERS[tier]()
    # Tier builders shell out to compilers and dlopen artifacts — any
    # failure downgrades to the next tier rather than crashing.
    except Exception as exc:  # repro-lint: disable=RPL009
        logger.warning("native kernel tier %r unavailable: %s", tier, exc)
        impl = None
    _TIER_IMPLS[tier] = impl
    return impl


def _preference() -> str:
    if _FORCED_TIER is not None:
        return _FORCED_TIER
    return os.environ.get("REPRO_NATIVE_KERNEL", "auto")


def resolve_tier(preference: str | None = None) -> str:
    """The kernel tier the native backend will run on.

    *preference* (default: ``$REPRO_NATIVE_KERNEL`` or ``auto``) may
    name a tier to force; forcing an unavailable tier raises rather
    than silently substituting, so a misconfigured deployment fails
    loudly.  ``auto`` walks the ladder numba → c → numpy and always
    succeeds (the numpy fallback has no requirements).
    """
    pref = preference if preference is not None else _preference()
    if pref == "auto":
        for tier in KERNEL_TIERS:
            if _tier_impl(tier) is not None:
                return tier
        raise RuntimeError(  # pragma: no cover - numpy tier never fails
            "no native kernel tier available"
        )
    if pref not in KERNEL_TIERS:
        raise ValidationError(
            f"unknown native kernel tier {pref!r}; expected one of "
            f"{('auto', *KERNEL_TIERS)}"
        )
    if _tier_impl(pref) is None:
        raise RuntimeError(
            f"native kernel tier {pref!r} is unavailable in this "
            "environment (set REPRO_NATIVE_KERNEL=auto to fall back)"
        )
    return pref


def available_tiers() -> tuple[str, ...]:
    """The tiers usable in this environment (numpy always included)."""
    return tuple(tier for tier in KERNEL_TIERS if _tier_impl(tier) is not None)


def kernel_info() -> dict:
    """Resolution report: active tier plus per-tier availability."""
    return {
        "tier": resolve_tier(),
        "available": list(available_tiers()),
        "preference": _preference(),
    }


@contextmanager
def forced_tier(tier: str | None) -> Iterator[None]:
    """Force a specific kernel tier within the ``with`` block (tests).

    Beats ``$REPRO_NATIVE_KERNEL``; pass ``None`` to restore automatic
    resolution.  The previous forcing is reinstated on exit even when
    the body raises.
    """
    global _FORCED_TIER
    if tier is not None and tier != "auto" and tier not in KERNEL_TIERS:
        raise ValidationError(
            f"unknown native kernel tier {tier!r}; expected one of "
            f"{('auto', *KERNEL_TIERS)}"
        )
    previous = _FORCED_TIER
    _FORCED_TIER = tier
    try:
        yield
    finally:
        _FORCED_TIER = previous


# ----------------------------------------------------------------------
# the kernel entry point
# ----------------------------------------------------------------------
def native_batch_counts(
    stack: np.ndarray,
    dims_arr: np.ndarray,
    rng_arr: np.ndarray,
    packed: bool,
) -> tuple[np.ndarray, dict]:
    """Counts for a batch of same-k cubes via the native kernel.

    Drop-in for :func:`repro.grid.kernels.batch_counts`: same inputs,
    bit-identical ``counts`` (exact integer popcounts), same ``stats``
    keys.  The mask stack is consumed through its uint8 byte view, so
    boolean and packed stacks share one code path; *packed* only
    documents the layout (it does not change the arithmetic).
    """
    del packed  # AND + popcount of the byte view is layout-agnostic
    tier = resolve_tier()
    impl = _tier_impl(tier)
    assert impl is not None  # resolve_tier guarantees availability
    n_masks = stack.shape[0] * stack.shape[1]
    flat = np.ascontiguousarray(stack).view(np.uint8).reshape(n_masks, -1)
    rows = dims_arr * stack.shape[1] + rng_arr
    rows = np.ascontiguousarray(rows, dtype=np.int64)
    counts = np.empty(rows.shape[0], dtype=np.int64)
    impl(flat, rows, counts)
    n_cubes, k = rows.shape
    n_words = -(-flat.shape[1] // 8)
    stats = {
        "words_and": (k - 1) * n_cubes * n_words,
        "prefix_reuse": 0,
        "kernel_tier": tier,
    }
    return counts, stats
