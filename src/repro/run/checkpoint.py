"""Atomic checkpoints with manifest validation and corrupt-file recovery.

A checkpoint is one JSON file per named stream (``search``, ``sweep``,
``result_k3``, ...) inside a checkpoint directory.  Writes are
crash-safe at two levels:

* every file lands via the shared atomic-write helper (temp file in the
  directory + fsync + ``os.replace``), so a kill mid-write never leaves
  a partial file;
* :meth:`CheckpointStore.save` rotates the previous checkpoint to a
  ``.prev.json`` sibling *before* installing the new one, so even if the
  new file is somehow corrupted (torn disk, truncation outside our
  control) :meth:`CheckpointStore.load` can fall back one boundary.

Every checkpoint embeds a **run manifest** — a fingerprint of the run
parameters and of the discretized data — and loading validates it, so a
checkpoint from a different dataset, different seed, or different
hyper-parameters is rejected as *stale* instead of silently resuming
incompatible state.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from collections.abc import Callable, Mapping

import numpy as np

from .._atomic import atomic_write_json
from ..exceptions import CheckpointError, ResourceError
from ..resilience.faults import maybe_inject
from ..resilience.ladder import ResilienceReport
from ..resilience.retry import RetryPolicy

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "data_fingerprint",
    "params_fingerprint",
    "encode_rng_state",
    "CheckpointStore",
    "SearchCheckpointer",
]

logger = logging.getLogger(__name__)

CHECKPOINT_FORMAT_VERSION = 1


def encode_rng_state(state: Mapping[str, object]) -> dict[str, object]:
    """Make a ``Generator.bit_generator.state`` dict JSON-serializable.

    PCG64 (the default) already uses plain Python ints; MT19937 carries
    a uint32 ndarray key that must become a list.  The decoded form
    round-trips through ``bit_generator.state = ...`` unchanged because
    numpy coerces sequences back on assignment.
    """

    def convert(value: object) -> object:
        if isinstance(value, Mapping):
            return {key: convert(item) for key, item in value.items()}
        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, np.integer):
            return int(value)
        return value

    converted = convert(state)
    assert isinstance(converted, dict)
    return converted


def data_fingerprint(codes: np.ndarray) -> str:
    """Stable fingerprint of a discretized dataset (grid cell codes).

    Hashing the *grid codes* (rather than the raw floats) captures
    exactly what the searches consume: two byte-identical code matrices
    produce identical search trajectories.
    """
    array = np.ascontiguousarray(codes)
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode())
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


def params_fingerprint(params: Mapping) -> str:
    """Order-independent fingerprint of a parameter mapping."""
    text = json.dumps(params, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()


#: Default policy for checkpoint reads: a couple of quick retries over
#: transient I/O errors before falling back to the previous boundary.
_READ_RETRY = RetryPolicy(max_attempts=3, backoff=0.02, backoff_cap=0.25)


class CheckpointStore:
    """Named atomic JSON checkpoints in one directory, with rollback.

    Reads go through the shared :class:`RetryPolicy` (transient I/O
    errors are retried before the one-boundary-older fallback kicks
    in), and pass the ``checkpoint_load`` fault point so chaos tests
    can corrupt the read path deterministically.  When a
    :class:`ResilienceReport` is attached, every retry and recovery is
    recorded there.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        *,
        retry: RetryPolicy | None = None,
        report: ResilienceReport | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.retry = retry if retry is not None else _READ_RETRY
        self.report = report

    # ------------------------------------------------------------------
    def path(self, name: str) -> Path:
        """The current checkpoint file for *name*."""
        return self.directory / f"{name}.json"

    def prev_path(self, name: str) -> Path:
        """The one-boundary-older fallback file for *name*."""
        return self.directory / f"{name}.prev.json"

    def exists(self, name: str) -> bool:
        """Whether a (current or fallback) checkpoint exists for *name*."""
        return self.path(name).exists() or self.prev_path(name).exists()

    # ------------------------------------------------------------------
    def save(self, name: str, payload: Mapping) -> Path:
        """Atomically install *payload*, keeping the previous checkpoint.

        The new payload is fully written (to a staging file) before the
        old checkpoint is rotated to ``.prev.json``, so every instant in
        time has at least one complete checkpoint on disk.
        """
        current = self.path(name)
        staging = self.directory / f"{name}.new.json"
        atomic_write_json(staging, payload)
        if current.exists():
            os.replace(current, self.prev_path(name))
        os.replace(staging, current)
        return current

    def load(self, name: str) -> dict:
        """The most recent *readable* checkpoint for *name*.

        A corrupt or truncated current file falls back to the previous
        boundary's file with a warning; if neither parses (or none
        exists) a :class:`~repro.exceptions.CheckpointError` is raised.
        """
        tried = []
        for path in (self.path(name), self.prev_path(name)):
            if not path.exists():
                continue
            tried.append(path)
            try:
                payload = json.loads(self._read_with_retry(path))
            except (json.JSONDecodeError, OSError) as exc:
                logger.warning(
                    "checkpoint %s is corrupt (%s); trying the previous "
                    "boundary", path, exc,
                )
                continue
            if not isinstance(payload, dict):
                logger.warning("checkpoint %s is malformed; skipping", path)
                continue
            if path == self.prev_path(name):
                logger.warning(
                    "recovered from fallback checkpoint %s (one boundary "
                    "older than the corrupt current file)", path,
                )
            return payload
        if tried:
            raise CheckpointError(
                f"all checkpoint files for {name!r} are corrupt: "
                f"{', '.join(str(p) for p in tried)}"
            )
        raise CheckpointError(
            f"no checkpoint named {name!r} in {self.directory}"
        )

    def _read_with_retry(self, path: Path) -> str:
        """Read one checkpoint file under the store's retry policy."""

        def read() -> str:
            maybe_inject("checkpoint_load", path=str(path))
            return path.read_text()

        def on_retry(attempt: int, exc: BaseException) -> None:
            logger.warning(
                "checkpoint read %s failed (%s); retry %d/%d",
                path, exc, attempt, self.retry.max_attempts - 1,
            )
            if self.report is not None:
                self.report.record_retry("checkpoint.load")

        def on_recover(retries: int) -> None:
            if self.report is not None:
                self.report.record_recovery("checkpoint_load")

        return self.retry.call(
            read,
            describe=f"checkpoint read {path}",
            on_retry=on_retry,
            on_recover=on_recover,
        )

    def delete(self, name: str) -> None:
        """Remove a stream's files (e.g. after a run completes cleanly)."""
        for path in (self.path(name), self.prev_path(name)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass


class SearchCheckpointer:
    """One search's checkpoint stream: store + name + interval + manifest.

    Parameters
    ----------
    store:
        The :class:`CheckpointStore` files go through.
    name:
        Stream name within the store (one search = one stream).
    every:
        Checkpoint every this-many safe boundaries (1 = every GA
        generation / brute-force level).
    manifest:
        Identity of the run (parameter + data fingerprints).  Saved
        into every checkpoint and required to match on load.
    """

    def __init__(
        self,
        store: CheckpointStore,
        name: str = "search",
        *,
        every: int = 1,
        manifest: Mapping | None = None,
    ) -> None:
        if every < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1, got {every}")
        self.store = store
        self.name = name
        self.every = int(every)
        self.manifest = dict(manifest or {})

    # ------------------------------------------------------------------
    def save(self, state: Mapping) -> None:
        """Persist *state* (wrapped with version + manifest) now."""
        self.store.save(
            self.name,
            {
                "format_version": CHECKPOINT_FORMAT_VERSION,
                "manifest": self.manifest,
                "state": dict(state),
            },
        )

    def maybe_save(self, boundary: int, build_state: Callable[[], Mapping]) -> bool:
        """Checkpoint if *boundary* is due under the interval policy.

        *build_state* is only invoked when a write actually happens, so
        a sparse interval pays no serialization cost on skipped
        boundaries.  A full disk (:class:`ResourceError`) at a periodic
        boundary is survivable — checkpoints only accelerate resume,
        they never affect the result — so it is logged, recorded on the
        store's resilience report, and the search continues; an explicit
        :meth:`save` stays strict.
        """
        if boundary % self.every != 0:
            return False
        try:
            self.save(build_state())
        except ResourceError as exc:
            logger.warning(
                "checkpoint write for %r failed (%s); continuing without "
                "this boundary", self.name, exc,
            )
            if self.store.report is not None:
                self.store.report.record_recovery("atomic_write")
            return False
        return True

    def exists(self) -> bool:
        """Whether this stream has anything to resume from."""
        return self.store.exists(self.name)

    def load(self) -> dict:
        """The saved state, after version and manifest validation."""
        payload = self.store.load(self.name)
        version = payload.get("format_version")
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.name!r} has format version {version!r}; "
                f"this library reads version {CHECKPOINT_FORMAT_VERSION}"
            )
        saved = payload.get("manifest", {})
        if self.manifest and saved != self.manifest:
            diff = sorted(
                key
                for key in set(saved) | set(self.manifest)
                if saved.get(key) != self.manifest.get(key)
            )
            raise CheckpointError(
                f"stale checkpoint {self.name!r}: manifest mismatch on "
                f"{', '.join(diff) or 'structure'} — it was written by a "
                "run with different parameters or data"
            )
        state = payload.get("state")
        if not isinstance(state, dict):
            raise CheckpointError(f"checkpoint {self.name!r} has no state body")
        return state

    def delete(self) -> None:
        """Drop the stream (clean-completion housekeeping)."""
        self.store.delete(self.name)
