"""Run-wide lifecycle: one budget, one cancel token, one checkpoint dir.

A :class:`RunController` owns everything that outlives a single search
inside a long job:

* a **wall-clock budget** shared across all the searches of a multi-k
  sweep (each successive k sees only the time that is left),
* the **cancel token** that SIGINT/SIGTERM handlers flip,
* the **checkpoint store** every component writes through, plus the
  checkpoint interval policy.

Typical use::

    controller = RunController(max_seconds=3600, checkpoint_dir="ckpt")
    with controller.signal_handlers():
        result = detect_across_dimensionalities(
            data, [2, 3, 4], controller=controller
        )
    sys.exit(controller.exit_code())
"""

from __future__ import annotations

import os
import time
from collections.abc import Mapping
from contextlib import AbstractContextManager
from typing import TYPE_CHECKING

from ..exceptions import ValidationError
from ..resilience.ladder import ResilienceReport
from .cancel import CancelToken
from .checkpoint import CheckpointStore, SearchCheckpointer
from .signals import exit_code_for_signal, installed_signal_handlers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.context import RunContext
    from ..engine.events import EventSink
    from ..grid.counter import CubeCounter

__all__ = ["RunController"]


class RunController:
    """Shared lifecycle state for one (possibly multi-search) run.

    Parameters
    ----------
    max_seconds:
        Wall-clock budget for the *whole* run; ``None`` disables.  The
        clock starts at construction (or at an explicit :meth:`start`).
    checkpoint_dir:
        Directory for crash-safe checkpoints; ``None`` disables
        checkpointing.
    checkpoint_every:
        Safe boundaries (GA generations / brute-force levels) between
        checkpoint writes.
    token:
        An externally-owned :class:`~repro.run.cancel.CancelToken`
        (e.g. a chaos-injection token in tests); a fresh one by default.
    sink:
        An :class:`~repro.engine.events.EventSink` receiving every
        engine event of the run (e.g. a
        :class:`~repro.engine.events.JsonlTraceSink` for the CLI's
        ``--trace-file``); ``None`` disables run-wide tracing.
    """

    def __init__(
        self,
        *,
        max_seconds: float | None = None,
        checkpoint_dir: str | os.PathLike[str] | None = None,
        checkpoint_every: int = 1,
        token: CancelToken | None = None,
        sink: "EventSink | None" = None,
    ) -> None:
        if max_seconds is not None and max_seconds <= 0:
            raise ValidationError(
                f"max_seconds must be positive, got {max_seconds}"
            )
        if checkpoint_every < 1:
            raise ValidationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.max_seconds = max_seconds
        self.checkpoint_every = int(checkpoint_every)
        self.token = token if token is not None else CancelToken()
        # Run-wide resilience ledger: checkpoint-read retries land here;
        # the detector merges it into result.stats["resilience"].
        self.resilience = ResilienceReport()
        self.store: CheckpointStore | None = (
            CheckpointStore(checkpoint_dir, report=self.resilience)
            if checkpoint_dir is not None
            else None
        )
        self.sink = sink
        self._started_at = time.perf_counter()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Restart the budget clock (e.g. right before the first search)."""
        self._started_at = time.perf_counter()

    def elapsed_seconds(self) -> float:
        """Seconds since the budget clock started."""
        return time.perf_counter() - self._started_at

    def remaining_seconds(self) -> float | None:
        """Budget left, ``None`` when unbudgeted (never negative)."""
        if self.max_seconds is None:
            return None
        return max(0.0, self.max_seconds - self.elapsed_seconds())

    def deadline_passed(self) -> bool:
        """True once the run-wide budget is spent."""
        remaining = self.remaining_seconds()
        return remaining is not None and remaining <= 0.0

    def should_stop(self) -> str | None:
        """``"cancelled"`` / ``"deadline"`` when the run must wind down."""
        if self.token.poll():
            return "cancelled"
        if self.deadline_passed():
            return "deadline"
        return None

    # ------------------------------------------------------------------
    def signal_handlers(self) -> AbstractContextManager[CancelToken]:
        """Context manager routing SIGINT/SIGTERM into the cancel token."""
        return installed_signal_handlers(self.token)

    def exit_code(self) -> int:
        """0, or ``128 + signum`` if a signal cancelled the run."""
        return exit_code_for_signal(self.token.signal_number)

    # ------------------------------------------------------------------
    def checkpointer(
        self, name: str, manifest: Mapping | None = None
    ) -> SearchCheckpointer | None:
        """A checkpoint stream bound to this run, or None if disabled."""
        if self.store is None:
            return None
        return SearchCheckpointer(
            self.store, name, every=self.checkpoint_every, manifest=manifest
        )

    def build_context(
        self,
        *,
        counter: "CubeCounter | None" = None,
        checkpointer: SearchCheckpointer | None = None,
        sink: "EventSink | None" = None,
        resume_from: object = None,
    ) -> "RunContext":
        """A :class:`~repro.engine.context.RunContext` for one engine run.

        Bundles this controller's cancel token, *remaining* wall-clock
        budget and event sink (composed with *sink* when both are set)
        so the engine sees one coherent injection point.  The budget is
        clamped to a tiny positive value when already spent: the engine
        must still construct, then stop at its first boundary with
        reason ``deadline`` rather than raise.
        """
        from ..engine.context import RunContext
        from ..engine.events import CompositeSink

        remaining = self.remaining_seconds()
        if remaining is not None:
            remaining = max(remaining, 1e-9)
        sinks = [s for s in (self.sink, sink) if s is not None]
        if not sinks:
            resolved_sink = None
        elif len(sinks) == 1:
            resolved_sink = sinks[0]
        else:
            resolved_sink = CompositeSink(*sinks)
        context = RunContext(
            counter=counter,
            cancel_token=self.token,
            checkpointer=checkpointer,
            max_seconds=remaining,
            resume_from=resume_from,
        )
        if resolved_sink is not None:
            context.sink = resolved_sink
        return context

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunController(max_seconds={self.max_seconds}, "
            f"checkpoint_dir={self.store.directory if self.store else None}, "
            f"token={self.token!r})"
        )
