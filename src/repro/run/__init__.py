"""Run lifecycle: cooperative cancellation, budgets, checkpoint/resume.

This package makes long-running searches survivable:

* :mod:`repro.run.cancel` — :class:`CancelToken` and the structured
  ``stopped_reason`` vocabulary;
* :mod:`repro.run.signals` — SIGINT/SIGTERM handlers that flip a token
  instead of killing the process mid-write;
* :mod:`repro.run.checkpoint` — atomic, manifest-validated checkpoints
  with corrupt-file rollback;
* :mod:`repro.run.controller` — :class:`RunController`, tying one
  budget + token + checkpoint directory across a whole multi-k sweep.
"""

from .cancel import (
    STOP_REASONS,
    CancelAfterBoundaries,
    CancelToken,
    check_stop_reason,
)
from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointStore,
    SearchCheckpointer,
    data_fingerprint,
    encode_rng_state,
    params_fingerprint,
)
from .controller import RunController
from .signals import exit_code_for_signal, installed_signal_handlers

__all__ = [
    "STOP_REASONS",
    "CancelAfterBoundaries",
    "CancelToken",
    "check_stop_reason",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointStore",
    "SearchCheckpointer",
    "data_fingerprint",
    "encode_rng_state",
    "params_fingerprint",
    "RunController",
    "exit_code_for_signal",
    "installed_signal_handlers",
]
