"""SIGINT/SIGTERM → cooperative cancellation.

``installed_signal_handlers`` temporarily routes the interrupt signals
into a :class:`~repro.run.cancel.CancelToken` so a running search exits
at its next safe boundary with best-so-far results (and a flushed
checkpoint) instead of dying mid-write.

The *first* signal flips the token; a *second* signal of the same kind
restores the previous handler and re-raises it, so an operator can
always force-kill a run that is stuck before reaching a boundary
(standard double-Ctrl-C semantics).

Signal handlers can only be installed from the main thread of the main
interpreter; elsewhere (e.g. a worker thread running a search) the
context manager degrades to a no-op — cancellation then only happens
programmatically, which is exactly what embedded callers want.
"""

from __future__ import annotations

import contextlib
import logging
import os
import signal
import threading
from types import FrameType
from collections.abc import Iterator
from typing import Any

from .cancel import CancelToken

__all__ = ["installed_signal_handlers", "exit_code_for_signal"]

logger = logging.getLogger(__name__)

_HANDLED_SIGNALS = (signal.SIGINT, signal.SIGTERM)


def exit_code_for_signal(signal_number: int | None) -> int:
    """Conventional process exit code for a signal-driven stop.

    ``128 + signum`` — 130 for SIGINT, 143 for SIGTERM — or 0 when the
    run was not signal-cancelled.
    """
    if signal_number is None:
        return 0
    return 128 + int(signal_number)


@contextlib.contextmanager
def installed_signal_handlers(token: CancelToken) -> Iterator[CancelToken]:
    """Route SIGINT/SIGTERM into *token* for the duration of the block."""
    if threading.current_thread() is not threading.main_thread():
        logger.debug("not the main thread; signal handlers not installed")
        yield token
        return

    previous: dict[int, Any] = {}

    def _handle(signum: int, frame: FrameType | None) -> None:
        if token.cancelled:
            # Second signal: the operator means it. Restore the old
            # disposition and re-deliver so default semantics apply.
            logger.warning("second signal %d: forcing immediate exit", signum)
            signal.signal(signum, previous[signum])
            os.kill(os.getpid(), signum)
            return
        logger.warning(
            "signal %d received: finishing the current boundary, then "
            "stopping with partial results (repeat to force-kill)",
            signum,
        )
        token.cancel(reason="signal", signal_number=signum)

    try:
        for sig in _HANDLED_SIGNALS:
            previous[sig] = signal.signal(sig, _handle)
    except (ValueError, OSError):  # pragma: no cover - exotic embedding
        logger.debug("could not install signal handlers; continuing without")
        yield token
        return
    try:
        yield token
    finally:
        for sig, handler in previous.items():
            with contextlib.suppress(ValueError, OSError):
                signal.signal(sig, handler)
