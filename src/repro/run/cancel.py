"""Cooperative cancellation and structured stop reasons.

The paper's searches are long-running by design — brute force is
exponential in k, the GA is bounded only by convergence or a wall-clock
cap — so an operator must be able to interrupt a run and get the
best-so-far results instead of a stack trace.  Cancellation here is
*cooperative*: a :class:`CancelToken` is a thread-safe flag that signal
handlers (or tests) flip, and every search loop polls it at its safe
boundaries (GA generation, brute-force level, counting-pool dispatch
wave) and exits cleanly.

:data:`STOP_REASONS` enumerates the structured ``stopped_reason`` every
:class:`~repro.search.outcome.SearchOutcome` now carries:

``converged``
    Natural termination: De Jong convergence (GA, including the
    stall-generations early stop) or exhaustive enumeration completing
    (brute force).
``generation_cap``
    The GA hit ``max_generations`` without converging.
``deadline``
    The wall-clock budget (``max_seconds`` or a run-wide
    :class:`~repro.run.controller.RunController` budget) expired.
``evaluation_cap``
    The evaluation budget was consumed (brute force
    ``max_evaluations``; also the natural terminus of the
    single-solution searchers, which run *until* their budget).
``cancelled``
    A :class:`CancelToken` was flipped — operator interrupt
    (SIGINT/SIGTERM) or programmatic cancellation.
"""

from __future__ import annotations

import threading

from ..exceptions import ValidationError

__all__ = [
    "STOP_REASONS",
    "check_stop_reason",
    "CancelToken",
    "CancelAfterBoundaries",
]

#: The vocabulary of ``SearchOutcome.stopped_reason``.
STOP_REASONS = (
    "converged",
    "generation_cap",
    "deadline",
    "evaluation_cap",
    "cancelled",
)


def check_stop_reason(reason: str) -> str:
    """Validate a ``stopped_reason`` value."""
    if reason not in STOP_REASONS:
        raise ValidationError(
            f"stopped_reason must be one of {STOP_REASONS}, got {reason!r}"
        )
    return reason


class CancelToken:
    """A thread-safe cooperative cancellation flag.

    Signal handlers (any thread) call :meth:`cancel`; search loops call
    :meth:`poll` at their safe boundaries and unwind when it returns
    True.  The token records *why* it was flipped (e.g. the signal
    number) so the CLI can translate a cooperative exit back into the
    conventional ``128 + signum`` process exit code.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.signal_number: int | None = None
        self.reason: str | None = None

    def cancel(self, *, reason: str | None = None, signal_number: int | None = None) -> None:
        """Flip the token (idempotent; first cause wins)."""
        if not self._event.is_set():
            self.reason = reason
            self.signal_number = signal_number
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()

    def poll(self) -> bool:
        """Boundary check used by the search loops.

        Subclasses may override this to *inject* cancellation at a
        chosen boundary — the chaos seam the interruption test suite is
        built on (see :class:`CancelAfterBoundaries`).
        """
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "cancelled" if self.cancelled else "live"
        return f"CancelToken({state}, reason={self.reason!r})"


class CancelAfterBoundaries(CancelToken):
    """Chaos token: flips itself after *n* boundary polls.

    Deterministic cancellation injection for tests — ``n=0`` cancels at
    the very first safe boundary, ``n=3`` lets three boundaries pass
    first.  Because every search polls exactly once per boundary, the
    kill lands on a precise, reproducible generation/level.
    """

    def __init__(self, n: int) -> None:
        super().__init__()
        if n < 0:
            raise ValidationError(f"n must be >= 0, got {n}")
        self.remaining = n

    def poll(self) -> bool:
        if not self.cancelled:
            if self.remaining <= 0:
                self.cancel(reason="injected")
            else:
                self.remaining -= 1
        return self.cancelled
