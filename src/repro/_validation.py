"""Shared argument-validation helpers.

These helpers centralize the checks that every public entry point needs:
positive integers, probabilities, 2-D float matrices, and random-state
coercion.  They raise :class:`repro.exceptions.ValidationError` with
messages that name the offending parameter, which keeps the call sites
one-liners.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from .exceptions import ValidationError

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_probability",
    "check_in_range",
    "check_matrix",
    "check_rng",
    "check_dimension_subset",
]


def check_positive_int(value: Any, name: str, *, minimum: int = 1) -> int:
    """Validate that *value* is an integer >= *minimum* and return it.

    Booleans are rejected even though they subclass ``int`` because a
    ``True`` passed where a count was expected is almost always a bug.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_non_negative_int(value: Any, name: str) -> int:
    """Validate that *value* is an integer >= 0 and return it."""
    return check_positive_int(value, name, minimum=0)


def check_probability(value: Any, name: str) -> float:
    """Validate that *value* is a float in [0, 1] and return it."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be a number in [0, 1], got {value!r}") from None
    if not 0.0 <= value <= 1.0 or np.isnan(value):
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(
    value: Any,
    name: str,
    *,
    low: float | None = None,
    high: float | None = None,
) -> float:
    """Validate that *value* is a finite number within [low, high]."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be a number, got {value!r}") from None
    if np.isnan(value):
        raise ValidationError(f"{name} must not be NaN")
    if low is not None and value < low:
        raise ValidationError(f"{name} must be >= {low}, got {value}")
    if high is not None and value > high:
        raise ValidationError(f"{name} must be <= {high}, got {value}")
    return value


def check_matrix(
    data: Any,
    name: str = "data",
    *,
    allow_nan: bool = True,
    min_rows: int = 1,
    min_cols: int = 1,
) -> np.ndarray:
    """Coerce *data* to a 2-D ``float64`` array and validate its shape.

    NaN entries encode missing values throughout the library; they are
    accepted unless *allow_nan* is False.  Infinities are always
    rejected because they break equi-depth quantile boundaries.
    """
    try:
        array = np.asarray(data, dtype=np.float64)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be convertible to a float array") from None
    if array.ndim != 2:
        raise ValidationError(f"{name} must be 2-dimensional, got ndim={array.ndim}")
    rows, cols = array.shape
    if rows < min_rows:
        raise ValidationError(f"{name} must have at least {min_rows} row(s), got {rows}")
    if cols < min_cols:
        raise ValidationError(f"{name} must have at least {min_cols} column(s), got {cols}")
    inf_mask = np.isinf(array)
    if inf_mask.any():
        bad_cols = np.nonzero(inf_mask.any(axis=0))[0]
        shown = ", ".join(str(c) for c in bad_cols[:8])
        if bad_cols.size > 8:
            shown += f", … ({bad_cols.size} columns total)"
        raise ValidationError(
            f"{name} must not contain infinities (found inf/-inf in "
            f"column(s) {shown}); clip or drop these values before "
            "fitting — infinities break equi-depth quantile boundaries"
        )
    if not allow_nan and np.isnan(array).any():
        raise ValidationError(f"{name} must not contain NaN values")
    return array


def check_rng(random_state: Any) -> np.random.Generator:
    """Coerce *random_state* into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh default generator), an integer seed, an
    existing ``Generator`` (returned as-is), or a ``SeedSequence``.
    """
    if random_state is None:
        # random_state=None is the documented "fresh entropy" escape
        # hatch of the public API; every deterministic path seeds it.
        return np.random.default_rng()  # repro-lint: disable=RPL001
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(random_state)
    raise ValidationError(
        "random_state must be None, an int seed, a SeedSequence, or a "
        f"numpy Generator, got {type(random_state).__name__}"
    )


def check_dimension_subset(dims: Sequence[int], n_dims: int, name: str = "dims") -> tuple[int, ...]:
    """Validate a sequence of distinct dimension indices in [0, n_dims)."""
    try:
        out = tuple(int(d) for d in dims)
    except (TypeError, ValueError):
        raise ValidationError(f"{name} must be a sequence of integers") from None
    if len(set(out)) != len(out):
        raise ValidationError(f"{name} must not contain duplicate dimensions: {out}")
    for d in out:
        if not 0 <= d < n_dims:
            raise ValidationError(f"{name} entries must be in [0, {n_dims}), got {d}")
    return out
