"""``# repro-lint: disable=RPLxxx`` pragma parsing.

Two scopes:

* **line** — ``# repro-lint: disable=RPL002`` suppresses the named
  codes (comma-separated; bare ``disable`` suppresses everything) for
  violations reported on that physical line.  Put the pragma on the
  line the violation points at, with a neighbouring comment saying
  *why* — pragmas without justification defeat the purpose.
* **file** — ``# repro-lint: disable-file=RPL001`` anywhere in the file
  suppresses the named codes for the whole module.

Pragmas are parsed textually (not from the AST) so they work on any
line, including continuation lines and lines inside multi-line calls.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .violations import Violation

__all__ = ["PragmaIndex", "ALL_CODES_SENTINEL"]

#: Marker meaning "every code" (a bare ``disable`` with no ``=RPL...``).
ALL_CODES_SENTINEL = "*"

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable-file|disable)"
    r"(?:\s*=\s*(?P<codes>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*))?"
)


@dataclass
class PragmaIndex:
    """Parsed suppression pragmas for one source file."""

    line_codes: dict[int, set[str]] = field(default_factory=dict)
    file_codes: set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, text: str) -> "PragmaIndex":
        index = cls()
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _PRAGMA_RE.search(line)
            if match is None:
                continue
            codes_text = match.group("codes")
            codes = (
                {code.strip() for code in codes_text.split(",")}
                if codes_text
                else {ALL_CODES_SENTINEL}
            )
            if match.group("scope") == "disable-file":
                index.file_codes |= codes
            else:
                index.line_codes.setdefault(lineno, set()).update(codes)
        return index

    def suppresses(self, violation: Violation) -> bool:
        """Whether this file's pragmas silence *violation*."""
        for scope in (self.file_codes, self.line_codes.get(violation.line, set())):
            if ALL_CODES_SENTINEL in scope or violation.code in scope:
                return True
        return False
