"""The project-wide semantic index behind the cross-module rules.

The single-file rules (RPL001-RPL009) deliberately see one module at a
time, but the contracts they cannot check are exactly the ones that
span modules: an event type registered in ``repro/engine/events.py``
and emitted from a dozen files, a fault point named in
``repro/resilience/faults.py`` and injected in ``repro/_atomic.py``, a
``ReproError`` guarantee made by ``repro/exceptions.py`` and broken by
a ``raise ValueError`` four calls deep.  This module builds the index
those rules run against:

* :class:`FileFacts` — everything the project rules need from one
  module, extracted in a single AST pass and **JSON-serializable** so
  the incremental cache (:class:`FactsCache`) can persist it per file;
* :class:`ProjectGraph` — the whole-program view assembled from all
  file facts: module/import graph (with cycle detection), symbol table
  with re-export resolution, a qualified call graph with reachability,
  and the contract indexes (event types registered/emitted, fault
  points declared/injected, kernels and backends registered/resolved);
* :class:`FactsCache` — per-file ``sha256(source) -> facts`` storage
  keyed by a run fingerprint (rule set + config + format version), so
  a warm lint run re-parses only the files that actually changed.

Facts are *syntactic*: string literals at known contract call sites,
dotted call names as written, one-hop assignment taint for RNG seeds.
No type inference — the same trade the single-file rules make, for the
same reason (speed, predictability, zero dependencies).
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any

from .._atomic import atomic_write_json
from .pragmas import PragmaIndex
from .sources import ModuleSource

__all__ = [
    "CACHE_VERSION",
    "CallFact",
    "ContractSite",
    "FactsCache",
    "FileFacts",
    "FunctionFacts",
    "ProjectGraph",
    "RaiseFact",
    "ResourceSite",
    "RngSite",
    "extract_facts",
    "file_digest",
]

CACHE_VERSION = 1

#: Contract-site kinds (the ``kind`` field of :class:`ContractSite`).
#: ``*_register`` sites *define* a name; ``*_use`` sites consume one.
#: ``event_emit`` with ``argument=None`` is a dynamic emission (the
#: type flows through a variable) — visible but unverifiable.
_CONTRACT_KINDS = (
    "event_register",
    "event_emit",
    "fault_register",
    "fault_use",
    "kernel_register",
    "kernel_use",
    "backend_register",
    "backend_use",
)

#: Identifier fragments that mark a value as seed-derived for the RNG
#: taint classification (RPL013).
_SEED_NAME_RE = re.compile(r"seed|rng|random_state|entropy", re.IGNORECASE)

#: numpy.random constructors whose argument is a seed.
_RNG_CONSTRUCTORS = frozenset(
    {"default_rng", "RandomState", "SeedSequence", "PCG64", "Philox",
     "SFC64", "MT19937", "Generator"}
)

#: Calls considered seed-*transforms* when classifying a seed argument:
#: feeding them a tainted value yields a tainted value.
_SEED_TRANSFORMS = _RNG_CONSTRUCTORS | frozenset({"check_rng", "spawn", "int"})

#: Resource-constructor tails tracked by the lifecycle facts, mapped to
#: the module that must provide them (``None`` = project-specific name,
#: matched by tail alone).
_RESOURCE_TAILS: dict[str, str | None] = {
    "memmap": "numpy",
    "TemporaryDirectory": "tempfile",
    "NamedTemporaryFile": "tempfile",
    "mkdtemp": "tempfile",
    "ProcessPoolExecutor": "concurrent.futures",
    "ThreadPoolExecutor": "concurrent.futures",
    "SharedMemory": "multiprocessing.shared_memory",
    "CountingPool": None,
    "ShardedCountingPool": None,
}

#: Method names that release a tracked resource.
_CLOSERS = frozenset(
    {"close", "cleanup", "shutdown", "terminate", "unlink", "__exit__"}
)


def file_digest(data: bytes) -> str:
    """Content digest used as the incremental-cache key."""
    return hashlib.sha256(data).hexdigest()


# ----------------------------------------------------------------------
# fact records — all JSON round-trippable via to_json / from_json
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ContractSite:
    """One string-literal argument to a known contract function."""

    kind: str
    argument: str | None  # None = dynamic (non-literal) argument
    line: int
    column: int
    qualname: str

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "argument": self.argument,
            "line": self.line,
            "column": self.column,
            "qualname": self.qualname,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ContractSite":
        return cls(
            kind=str(data["kind"]),
            argument=None if data["argument"] is None else str(data["argument"]),
            line=int(data["line"]),
            column=int(data["column"]),
            qualname=str(data["qualname"]),
        )


@dataclass(frozen=True)
class RaiseFact:
    """One ``raise X(...)`` statement inside a function body."""

    exception: str  # dotted name as written ("ValueError", "exc.Wrapped")
    line: int
    column: int

    def to_json(self) -> dict[str, Any]:
        return {"exception": self.exception, "line": self.line,
                "column": self.column}

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "RaiseFact":
        return cls(str(data["exception"]), int(data["line"]), int(data["column"]))


@dataclass(frozen=True)
class CallFact:
    """One call site inside a function body (dotted name as written)."""

    target: str
    line: int

    def to_json(self) -> dict[str, Any]:
        return {"target": self.target, "line": self.line}

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "CallFact":
        return cls(str(data["target"]), int(data["line"]))


@dataclass(frozen=True)
class FunctionFacts:
    """One function or method: identity, calls out, raises."""

    qualname: str  # dotted within the module ("Class.method", "helper")
    line: int
    is_public: bool
    params: tuple[str, ...]
    calls: tuple[CallFact, ...]
    raises: tuple[RaiseFact, ...]

    def to_json(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "is_public": self.is_public,
            "params": list(self.params),
            "calls": [c.to_json() for c in self.calls],
            "raises": [r.to_json() for r in self.raises],
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FunctionFacts":
        return cls(
            qualname=str(data["qualname"]),
            line=int(data["line"]),
            is_public=bool(data["is_public"]),
            params=tuple(str(p) for p in data["params"]),
            calls=tuple(CallFact.from_json(c) for c in data["calls"]),
            raises=tuple(RaiseFact.from_json(r) for r in data["raises"]),
        )


@dataclass(frozen=True)
class ResourceSite:
    """One resource-creation site with its lifecycle classification.

    ``management`` is one of:

    ``with``
        created as (part of) a ``with`` context expression, or the
        bound name is later entered via ``with``;
    ``finally``
        a closer method on the bound name runs in a ``finally`` block;
    ``finalizer``
        the bound name is handed to ``weakref.finalize`` /
        ``atexit.register``;
    ``escapes``
        the object leaves the creating scope (returned, yielded, stored
        on an attribute/container, passed to another call) — lifecycle
        owned elsewhere, out of intraprocedural reach;
    ``closed_unprotected``
        a closer is called, but not on all paths (plain statement, no
        ``try/finally``);
    ``unmanaged``
        nothing above applies — the resource leaks on any exception.
    """

    kind: str
    management: str
    line: int
    column: int
    qualname: str

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "management": self.management,
            "line": self.line,
            "column": self.column,
            "qualname": self.qualname,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ResourceSite":
        return cls(
            kind=str(data["kind"]),
            management=str(data["management"]),
            line=int(data["line"]),
            column=int(data["column"]),
            qualname=str(data["qualname"]),
        )


@dataclass(frozen=True)
class RngSite:
    """One RNG-constructor call with its seed-argument classification.

    ``seed_kind``: ``int`` (literal), ``param`` (flows from a
    seed/rng-named parameter or attribute), ``derived`` (arithmetic or
    a seed transform over tainted inputs), ``entropy`` (explicit
    ``None`` or a zero-argument nested constructor), ``no-arg``
    (zero-argument call — RPL001's territory), ``opaque`` (cannot be
    traced to a seed).
    """

    seed_kind: str
    detail: str
    line: int
    column: int
    qualname: str

    def to_json(self) -> dict[str, Any]:
        return {
            "seed_kind": self.seed_kind,
            "detail": self.detail,
            "line": self.line,
            "column": self.column,
            "qualname": self.qualname,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "RngSite":
        return cls(
            seed_kind=str(data["seed_kind"]),
            detail=str(data["detail"]),
            line=int(data["line"]),
            column=int(data["column"]),
            qualname=str(data["qualname"]),
        )


@dataclass
class FileFacts:
    """Everything the project rules need from one module."""

    path: str
    module: str
    digest: str
    module_imports: dict[str, str] = field(default_factory=dict)
    from_imports: dict[str, list[str]] = field(default_factory=dict)
    exports: list[str] | None = None
    classes: dict[str, int] = field(default_factory=dict)  # qualname -> line
    functions: list[FunctionFacts] = field(default_factory=list)
    contracts: list[ContractSite] = field(default_factory=list)
    resources: list[ResourceSite] = field(default_factory=list)
    rng_sites: list[RngSite] = field(default_factory=list)
    pragma_file_codes: list[str] = field(default_factory=list)
    pragma_line_codes: dict[str, list[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def pragma_index(self) -> PragmaIndex:
        """Rebuild the pragma index for project-rule suppression."""
        index = PragmaIndex()
        index.file_codes = set(self.pragma_file_codes)
        index.line_codes = {
            int(line): set(codes)
            for line, codes in self.pragma_line_codes.items()
        }
        return index

    def to_json(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "digest": self.digest,
            "module_imports": dict(self.module_imports),
            "from_imports": {k: list(v) for k, v in self.from_imports.items()},
            "exports": None if self.exports is None else list(self.exports),
            "classes": dict(self.classes),
            "functions": [f.to_json() for f in self.functions],
            "contracts": [c.to_json() for c in self.contracts],
            "resources": [r.to_json() for r in self.resources],
            "rng_sites": [r.to_json() for r in self.rng_sites],
            "pragma_file_codes": sorted(self.pragma_file_codes),
            "pragma_line_codes": {
                line: sorted(codes)
                for line, codes in self.pragma_line_codes.items()
            },
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "FileFacts":
        return cls(
            path=str(data["path"]),
            module=str(data["module"]),
            digest=str(data["digest"]),
            module_imports={
                str(k): str(v) for k, v in data["module_imports"].items()
            },
            from_imports={
                str(k): [str(x) for x in v]
                for k, v in data["from_imports"].items()
            },
            exports=(
                None if data["exports"] is None
                else [str(x) for x in data["exports"]]
            ),
            classes={str(k): int(v) for k, v in data["classes"].items()},
            functions=[FunctionFacts.from_json(f) for f in data["functions"]],
            contracts=[ContractSite.from_json(c) for c in data["contracts"]],
            resources=[ResourceSite.from_json(r) for r in data["resources"]],
            rng_sites=[RngSite.from_json(r) for r in data["rng_sites"]],
            pragma_file_codes=[str(c) for c in data["pragma_file_codes"]],
            pragma_line_codes={
                str(k): [str(c) for c in v]
                for k, v in data["pragma_line_codes"].items()
            },
        )


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _resolve_relative(module: str, is_package: bool, node: ast.ImportFrom) -> str:
    """Absolute module path for a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    # For a package __init__, level 1 means the package itself.
    drop = node.level if is_package else node.level
    base = parts[: len(parts) - drop + (1 if is_package else 0)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def _value_escapes(expr: ast.expr | None, name: str) -> bool:
    """Whether the object bound to *name* can leave via *expr*.

    Only value positions count: the name itself, container elements,
    call arguments, conditional branches.  ``int(view.sum())`` reads
    through the name but escapes only a scalar — not a match.
    """
    if expr is None:
        return False
    if isinstance(expr, ast.Name):
        return expr.id == name
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        return any(_value_escapes(elt, name) for elt in expr.elts)
    if isinstance(expr, ast.Dict):
        return any(
            _value_escapes(value, name)
            for value in expr.values
            if value is not None
        )
    if isinstance(expr, ast.IfExp):
        return _value_escapes(expr.body, name) or _value_escapes(
            expr.orelse, name
        )
    if isinstance(expr, ast.Call):
        return any(_value_escapes(a, name) for a in expr.args) or any(
            _value_escapes(kw.value, name) for kw in expr.keywords
        )
    if isinstance(expr, ast.Starred):
        return _value_escapes(expr.value, name)
    if isinstance(expr, ast.Await):
        return _value_escapes(expr.value, name)
    return False


def _str_const(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _argument(
    call: ast.Call, position: int, keyword: str | None = None
) -> ast.expr | None:
    if keyword is not None:
        for kw in call.keywords:
            if kw.arg == keyword:
                return kw.value
    if len(call.args) > position:
        return call.args[position]
    return None


class _FactExtractor(ast.NodeVisitor):
    """Single-pass fact extraction over one module's AST."""

    def __init__(self, module: ModuleSource, digest: str) -> None:
        is_package = module.path.endswith("/__init__.py")
        self.facts = FileFacts(
            path=module.path, module=module.module_name, digest=digest
        )
        self._module_name = module.module_name
        self._is_package = is_package
        self._scope: list[str] = []
        self._function_stack: list[dict[str, Any]] = []

    # -- scope bookkeeping ---------------------------------------------
    def _qualname(self) -> str:
        return ".".join(self._scope) or "<module>"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(node.name)
        self.facts.classes[".".join(self._scope)] = node.lineno
        try:
            self.generic_visit(node)
        finally:
            self._scope.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._scope.append(node.name)
        qualname = ".".join(self._scope)
        is_public = all(
            not part.startswith("_") or part == "__init__"
            for part in self._scope
        )
        args = node.args
        params = [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        record: dict[str, Any] = {
            "qualname": qualname,
            "line": node.lineno,
            "is_public": is_public,
            "params": tuple(params),
            "calls": [],
            "raises": [],
        }
        self._function_stack.append(record)
        try:
            self.generic_visit(node)
        finally:
            self._function_stack.pop()
            self._scope.pop()
        self.facts.functions.append(
            FunctionFacts(
                qualname=record["qualname"],
                line=record["line"],
                is_public=record["is_public"],
                params=record["params"],
                calls=tuple(record["calls"]),
                raises=tuple(record["raises"]),
            )
        )
        self._analyze_resources(node, qualname)
        self._analyze_rng(node, qualname, record["params"])

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.facts.module_imports[local] = target
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = _resolve_relative(self._module_name, self._is_package, node)
        for alias in node.names:
            if alias.name == "*":
                continue
            self.facts.from_imports[alias.asname or alias.name] = [
                target,
                alias.name,
            ]
        self.generic_visit(node)

    # -- __all__ / vocabulary literals ---------------------------------
    def _record_assignment(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        if target.id == "__all__" and isinstance(value, (ast.List, ast.Tuple)):
            self.facts.exports = [
                v for elt in value.elts if (v := _str_const(elt)) is not None
            ]
        elif target.id == "EVENT_TYPES" and isinstance(value, (ast.Set, ast.Call)):
            elts = (
                value.elts
                if isinstance(value, ast.Set)
                else self._frozenset_elts(value)
            )
            for elt in elts:
                name = _str_const(elt)
                if name is not None:
                    self._contract("event_register", name, elt)
        elif target.id == "FAULT_POINTS" and isinstance(value, ast.Dict):
            for key in value.keys:
                name = _str_const(key)
                if name is not None and key is not None:
                    self._contract("fault_register", name, key)

    @staticmethod
    def _frozenset_elts(call: ast.Call) -> list[ast.expr]:
        if (
            isinstance(call.func, ast.Name)
            and call.func.id in ("frozenset", "set")
            and call.args
            and isinstance(call.args[0], (ast.Set, ast.List, ast.Tuple))
        ):
            return list(call.args[0].elts)
        return []

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_assignment(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_assignment(node.target, node.value)
        self.generic_visit(node)

    # -- calls / raises -------------------------------------------------
    def _contract(self, kind: str, argument: str | None, node: ast.AST) -> None:
        self.facts.contracts.append(
            ContractSite(
                kind=kind,
                argument=argument,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                qualname=self._qualname(),
            )
        )

    def _contract_arg(
        self, kind: str, call: ast.Call, position: int, keyword: str | None
    ) -> None:
        arg = _argument(call, position, keyword)
        if arg is None:
            return
        self._contract(kind, _str_const(arg), call)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            if self._function_stack:
                self._function_stack[-1]["calls"].append(
                    CallFact(target=dotted, line=node.lineno)
                )
            tail = dotted.split(".")[-1]
            if tail == "register_event_type":
                self._contract_arg("event_register", node, 0, "name")
            elif tail == "emit_event":
                if len(node.args) >= 2 or any(
                    kw.arg == "type" for kw in node.keywords
                ):
                    self._contract_arg("event_emit", node, 1, "type")
            elif tail == "emit" and node.args:
                # context.emit("type", ...) / local emit("type", ...);
                # sink.emit(Event(...)) passes a non-literal and is
                # recorded as a dynamic emission.
                self._contract("event_emit", _str_const(node.args[0]), node)
            elif tail == "maybe_inject":
                self._contract_arg("fault_use", node, 0, "point")
            elif tail == "FaultSpec":
                self._contract_arg("fault_use", node, 0, "point")
            elif tail == "register_fault_point":
                self._contract_arg("fault_register", node, 0, "name")
            elif tail == "register_kernel":
                self._contract_arg("kernel_register", node, 0, "name")
            elif tail == "resolve_kernel":
                self._contract_arg("kernel_use", node, 0, "name")
            elif tail == "BackendSpec":
                self._contract_arg("backend_register", node, 0, "name")
                self._contract_arg("kernel_use", node, 1, "kernel")
                fallback = _argument(node, 4, "fallback")
                if fallback is not None and _str_const(fallback) is not None:
                    self._contract("backend_use", _str_const(fallback), node)
            elif tail in ("get_backend", "degradation_chain"):
                self._contract_arg("backend_use", node, 0, "name")
            elif tail == "CountingBackend":
                kind_arg = _argument(node, 0, "kind")
                if kind_arg is not None and _str_const(kind_arg) is not None:
                    self._contract("backend_use", _str_const(kind_arg), node)
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        if self._function_stack and node.exc is not None:
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            dotted = _dotted(exc)
            if dotted is not None:
                self._function_stack[-1]["raises"].append(
                    RaiseFact(
                        exception=dotted,
                        line=node.lineno,
                        column=node.col_offset,
                    )
                )
        self.generic_visit(node)

    # -- resource lifecycle --------------------------------------------
    def _resource_kind(self, call: ast.Call) -> str | None:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        tail = parts[-1]
        if tail not in _RESOURCE_TAILS:
            return None
        required = _RESOURCE_TAILS[tail]
        if required is None:
            return tail
        if len(parts) > 1:
            head = ".".join(parts[:-1])
            alias = self.facts.module_imports.get(parts[0])
            resolved = (
                head.replace(parts[0], alias, 1) if alias is not None else head
            )
            if resolved == required or required.startswith(resolved + "."):
                return f"{required}.{tail}"
            # ``np.memmap`` with np -> numpy handled above; anything
            # else with the same tail is not the tracked constructor.
            return None
        origin = self.facts.from_imports.get(tail)
        if origin is not None and origin[0] == required:
            return f"{required}.{tail}"
        return None

    def _analyze_resources(self, scope: ast.AST, qualname: str) -> None:
        """Classify resource-creation sites in one function body."""
        parents: dict[ast.AST, ast.AST] = {}
        nested: set[ast.AST] = set()

        def walk(node: ast.AST, inside_nested: bool) -> None:
            for child in ast.iter_child_nodes(node):
                parents[child] = node
                is_def = isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                )
                if inside_nested or (is_def and child is not scope):
                    nested.add(child)
                walk(child, inside_nested or (is_def and child is not scope))

        walk(scope, False)

        creations: list[tuple[ast.Call, str]] = []
        for node in parents:
            if node in nested or not isinstance(node, ast.Call):
                continue
            kind = self._resource_kind(node)
            if kind is not None:
                creations.append((node, kind))

        for call, kind in creations:
            management = self._classify_resource(call, scope, parents, nested)
            self.facts.resources.append(
                ResourceSite(
                    kind=kind,
                    management=management,
                    line=call.lineno,
                    column=call.col_offset,
                    qualname=qualname,
                )
            )

    def _classify_resource(
        self,
        call: ast.Call,
        scope: ast.AST,
        parents: dict[ast.AST, ast.AST],
        nested: set[ast.AST],
    ) -> str:
        # 1. immediate syntactic context of the creation call
        node: ast.AST = call
        while node in parents:
            parent = parents[node]
            if isinstance(parent, ast.withitem):
                return "with"
            if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
                return "escapes"
            if isinstance(parent, ast.Call) and node is not parent.func:
                return "escapes"  # argument to another call
            if isinstance(parent, ast.Attribute):
                return "escapes"  # method chained off the fresh object
            if isinstance(parent, ast.Assign):
                targets = parent.targets
                if len(targets) == 1 and isinstance(targets[0], ast.Name):
                    return self._classify_binding(
                        targets[0].id, scope, parents, nested
                    )
                return "escapes"  # tuple unpack / attribute target
            if isinstance(parent, (ast.stmt, ast.ExceptHandler)):
                break
            node = parent
        return "unmanaged"

    def _classify_binding(
        self,
        name: str,
        scope: ast.AST,
        parents: dict[ast.AST, ast.AST],
        nested: set[ast.AST],
    ) -> str:
        """Lifecycle of a resource bound to local *name* in *scope*."""
        closed_in_finally = False
        closed_plain = False
        escapes = False
        entered_with = False
        finalized = False

        finally_nodes: set[ast.AST] = set()
        for node in parents:
            if isinstance(node, ast.Try) and node not in nested:
                for stmt in node.finalbody:
                    finally_nodes.add(stmt)
                    for sub in ast.walk(stmt):
                        finally_nodes.add(sub)

        for node in parents:
            if node in nested:
                continue
            if isinstance(node, ast.withitem):
                expr = node.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    entered_with = True
                elif (
                    isinstance(expr, ast.Call)
                    and any(
                        isinstance(a, ast.Name) and a.id == name
                        for a in expr.args
                    )
                ):
                    entered_with = True  # with closing(res): ...
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func) or ""
                tail = dotted.split(".")[-1]
                arg_names = {
                    a.id for a in node.args if isinstance(a, ast.Name)
                }
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _CLOSERS
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                ):
                    if node in finally_nodes:
                        closed_in_finally = True
                    else:
                        closed_plain = True
                elif name in arg_names:
                    if tail in ("finalize", "register"):
                        finalized = True
                    else:
                        escapes = True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if _value_escapes(getattr(node, "value", None), name):
                    escapes = True
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        if _value_escapes(node.value, name):
                            escapes = True

        if entered_with:
            return "with"
        if finalized:
            return "finalizer"
        if closed_in_finally:
            return "finally"
        if escapes:
            return "escapes"
        if closed_plain:
            return "closed_unprotected"
        return "unmanaged"

    # -- RNG taint ------------------------------------------------------
    def _analyze_rng(
        self, scope: ast.AST, qualname: str, params: tuple[str, ...]
    ) -> None:
        tainted = {p for p in params if _SEED_NAME_RE.search(p)}
        body = getattr(scope, "body", [])
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and node is not scope:
                    break
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and (
                            _SEED_NAME_RE.search(target.id)
                            or self._seed_class(node.value, tainted)
                            in ("int", "param", "derived")
                        ):
                            tainted.add(target.id)
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted(node.func)
                if dotted is None:
                    continue
                tail = dotted.split(".")[-1]
                if tail not in _RNG_CONSTRUCTORS:
                    continue
                if not node.args and not node.keywords:
                    kind, detail = "no-arg", f"{tail}()"
                else:
                    seed = _argument(node, 0, "seed")
                    if seed is None:
                        seed = next(
                            (kw.value for kw in node.keywords), None
                        )
                    if seed is None:
                        kind, detail = "no-arg", f"{tail}()"
                    else:
                        kind = self._seed_class(seed, tainted)
                        detail = f"{tail}({ast.unparse(seed)})"
                self.facts.rng_sites.append(
                    RngSite(
                        seed_kind=kind,
                        detail=detail,
                        line=node.lineno,
                        column=node.col_offset,
                        qualname=qualname,
                    )
                )

    def _seed_class(self, expr: ast.expr, tainted: set[str]) -> str:
        if isinstance(expr, ast.Constant):
            if expr.value is None:
                return "entropy"
            if isinstance(expr.value, (int, bool)) or isinstance(
                expr.value, str
            ):
                return "int"
            return "opaque"
        if isinstance(expr, ast.Name):
            if expr.id in tainted or _SEED_NAME_RE.search(expr.id):
                return "param"
            return "opaque"
        if isinstance(expr, ast.Attribute):
            if _SEED_NAME_RE.search(expr.attr):
                return "param"
            return "opaque"
        if isinstance(expr, ast.Call):
            dotted = _dotted(expr.func) or ""
            tail = dotted.split(".")[-1]
            if tail in _SEED_TRANSFORMS or _SEED_NAME_RE.search(dotted):
                if not expr.args and not expr.keywords:
                    return "entropy"
                kinds = [
                    self._seed_class(a, tainted)
                    for a in (*expr.args, *(kw.value for kw in expr.keywords))
                ]
                if any(k in ("int", "param", "derived") for k in kinds):
                    return "derived"
                if all(k == "entropy" for k in kinds):
                    return "entropy"
                return "opaque"
            return "opaque"
        if isinstance(expr, ast.BinOp):
            left = self._seed_class(expr.left, tainted)
            right = self._seed_class(expr.right, tainted)
            if "param" in (left, right) or "derived" in (left, right):
                return "derived"
            if left == "int" and right == "int":
                return "int"
            return "opaque"
        if isinstance(expr, ast.UnaryOp):
            return self._seed_class(expr.operand, tainted)
        if isinstance(expr, ast.Subscript):
            return self._seed_class(expr.value, tainted)
        if isinstance(expr, ast.IfExp):
            body = self._seed_class(expr.body, tainted)
            orelse = self._seed_class(expr.orelse, tainted)
            ranked = ("entropy", "opaque", "derived", "param", "int")
            return min((body, orelse), key=ranked.index)
        return "opaque"


def extract_facts(module: ModuleSource, digest: str | None = None) -> FileFacts:
    """One-pass fact extraction for *module*."""
    if digest is None:
        digest = file_digest(module.text.encode("utf-8"))
    extractor = _FactExtractor(module, digest)
    extractor.visit(module.tree)
    pragmas = PragmaIndex.from_source(module.text)
    extractor.facts.pragma_file_codes = sorted(pragmas.file_codes)
    extractor.facts.pragma_line_codes = {
        str(line): sorted(codes)
        for line, codes in pragmas.line_codes.items()
    }
    return extractor.facts


# ----------------------------------------------------------------------
# the project graph
# ----------------------------------------------------------------------
class ProjectGraph:
    """Whole-program view assembled from per-file facts."""

    def __init__(self, files: dict[str, FileFacts]) -> None:
        #: normalized path -> facts, insertion order irrelevant (all
        #: derived structures sort).
        self.files = dict(sorted(files.items()))
        self._modules: dict[str, str] = {}
        for path, facts in self.files.items():
            self._modules[facts.module] = path
        self._functions: dict[tuple[str, str], FunctionFacts] = {}
        for path, facts in self.files.items():
            for fn in facts.functions:
                self._functions[(facts.module, fn.qualname)] = fn

    # -- modules & imports ---------------------------------------------
    @property
    def modules(self) -> dict[str, str]:
        """Dotted module name -> normalized path."""
        return dict(self._modules)

    def facts_for_module(self, module: str) -> FileFacts | None:
        path = self._modules.get(module)
        return None if path is None else self.files[path]

    def import_edges(self) -> dict[str, set[str]]:
        """Project-internal import edges, module -> imported modules."""
        edges: dict[str, set[str]] = {}
        for facts in self.files.values():
            targets: set[str] = set()
            for target in facts.module_imports.values():
                if target in self._modules:
                    targets.add(target)
            for target, _orig in facts.from_imports.values():
                if target in self._modules:
                    targets.add(target)
                else:
                    # ``from pkg import name`` where pkg.name is a module
                    for local, (mod, orig) in facts.from_imports.items():
                        dotted = f"{mod}.{orig}"
                        if dotted in self._modules:
                            targets.add(dotted)
            edges[facts.module] = targets
        return edges

    def import_cycles(self) -> list[list[str]]:
        """Strongly connected components with more than one module (or a
        self-loop), each sorted, the list sorted — deterministic."""
        edges = self.import_edges()
        index_counter = [0]
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        index: dict[str, int] = {}
        on_stack: set[str] = set()
        cycles: list[list[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(edges.get(node, ())):
                if succ not in index:
                    strongconnect(succ)
                    lowlink[node] = min(lowlink[node], lowlink[succ])
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in edges.get(node, ()):
                    cycles.append(sorted(component))

        for node in sorted(edges):
            if node not in index:
                strongconnect(node)
        return sorted(cycles)

    def exports(self, module: str) -> list[str] | None:
        """The module's ``__all__``, or None when it declares none."""
        facts = self.facts_for_module(module)
        return None if facts is None else facts.exports

    # -- symbols --------------------------------------------------------
    def resolve_symbol(
        self, module: str, name: str, _depth: int = 0
    ) -> tuple[str, str] | None:
        """Resolve *name* in *module* to its defining ``(module, qualname)``.

        Follows re-export chains (``from .impl import Thing`` in an
        ``__init__``) up to a bounded depth.  Returns None for external
        or unresolvable names.
        """
        if _depth > 16:
            return None
        facts = self.facts_for_module(module)
        if facts is None:
            return None
        head = name.split(".")[0]
        rest = name[len(head):]
        if (module, name) in self._functions or name in facts.classes:
            return (module, name)
        if head in facts.classes or (module, head) in self._functions:
            return (module, name)
        origin = facts.from_imports.get(head)
        if origin is not None:
            target_module, orig = origin
            # ``from pkg import submodule`` binds a module, not a symbol
            submodule = f"{target_module}.{orig}"
            if submodule in self._modules:
                if rest:
                    return self.resolve_symbol(
                        submodule, rest.lstrip("."), _depth + 1
                    )
                return None
            return self.resolve_symbol(
                target_module, orig + rest, _depth + 1
            )
        alias = facts.module_imports.get(head)
        if alias is not None and alias in self._modules and rest:
            return self.resolve_symbol(alias, rest.lstrip("."), _depth + 1)
        return None

    # -- call graph -----------------------------------------------------
    def function(self, module: str, qualname: str) -> FunctionFacts | None:
        return self._functions.get((module, qualname))

    def _as_function_key(
        self, module: str, qualname: str
    ) -> tuple[str, str] | None:
        """Snap a resolved symbol to a function key.

        A call to a class resolves to its ``__init__`` or — for
        dataclasses, whose generated ``__init__`` invokes it — to
        ``__post_init__``.
        """
        if (module, qualname) in self._functions:
            return (module, qualname)
        for implicit in ("__init__", "__post_init__"):
            candidate = f"{qualname}.{implicit}"
            if (module, candidate) in self._functions:
                return (module, candidate)
        return None

    def resolve_call(
        self, module: str, caller: str, target: str
    ) -> tuple[str, str] | None:
        """Resolve one call site to a project function key, or None."""
        facts = self.facts_for_module(module)
        if facts is None:
            return None
        parts = target.split(".")
        if parts[0] in ("self", "cls") and len(parts) >= 2:
            # method call within the enclosing class
            caller_parts = caller.split(".")
            for cut in range(len(caller_parts) - 1, 0, -1):
                prefix = caller_parts[:cut]
                candidate = ".".join(prefix + parts[1:])
                key = self._as_function_key(module, candidate)
                if key is not None:
                    return key
            return None
        resolved = self.resolve_symbol(module, target)
        if resolved is None:
            return None
        return self._as_function_key(*resolved)

    def entry_points(self, patterns: tuple[str, ...]) -> list[tuple[str, str]]:
        """Public functions of the modules matching *patterns*, sorted."""
        entries: list[tuple[str, str]] = []
        for path, facts in self.files.items():
            if not any(fnmatch(path, pattern) for pattern in patterns):
                continue
            for fn in facts.functions:
                if fn.is_public:
                    entries.append((facts.module, fn.qualname))
        return sorted(entries)

    def reachable_from(
        self, entries: list[tuple[str, str]]
    ) -> dict[tuple[str, str], tuple[str, str]]:
        """BFS over resolvable call edges.

        Returns ``{function key: entry key it was first reached from}``
        with deterministic tie-breaking (entries processed in sorted
        order, queue FIFO).
        """
        origin: dict[tuple[str, str], tuple[str, str]] = {}
        queue: list[tuple[str, str]] = []
        for entry in sorted(entries):
            if entry in self._functions and entry not in origin:
                origin[entry] = entry
                queue.append(entry)
        head = 0
        while head < len(queue):
            key = queue[head]
            head += 1
            module, qualname = key
            fn = self._functions[key]
            for call in fn.calls:
                callee = self.resolve_call(module, qualname, call.target)
                if callee is not None and callee not in origin:
                    origin[callee] = origin[key]
                    queue.append(callee)
        return origin

    # -- contract indexes ----------------------------------------------
    def contract_sites(
        self, kind: str, *, literal_only: bool = False
    ) -> list[tuple[str, ContractSite]]:
        """All ``(path, site)`` pairs of one contract kind, sorted."""
        if kind not in _CONTRACT_KINDS:
            raise ValueError(f"unknown contract kind {kind!r}")
        sites = [
            (path, site)
            for path, facts in self.files.items()
            for site in facts.contracts
            if site.kind == kind
            and (site.argument is not None or not literal_only)
        ]
        sites.sort(key=lambda item: (item[0], item[1].line, item[1].column))
        return sites

    def contract_names(self, kind: str) -> set[str]:
        """The distinct literal names at sites of one contract kind."""
        return {
            site.argument
            for _path, site in self.contract_sites(kind, literal_only=True)
            if site.argument is not None
        }


# ----------------------------------------------------------------------
# incremental cache
# ----------------------------------------------------------------------
class FactsCache:
    """Per-file ``digest -> (facts, file-rule violations)`` storage.

    The cache file carries a *fingerprint* — cache format version, the
    selected rule codes, and the config digest — so any change to the
    rule set or configuration invalidates everything at once; a change
    to one source file invalidates exactly that file.  File-rule
    violations are stored post-pragma but **pre-baseline** (the
    baseline changes between runs without touching sources); project
    rules are always recomputed because their inputs span files.
    """

    def __init__(self, fingerprint: str) -> None:
        self.fingerprint = fingerprint
        self._entries: dict[str, dict[str, Any]] = {}
        #: paths served from cache / re-parsed during this run
        self.hits: list[str] = []
        self.misses: list[str] = []

    # ------------------------------------------------------------------
    @staticmethod
    def make_fingerprint(rule_codes: list[str], config_digest: str) -> str:
        payload = json.dumps(
            {
                "cache_version": CACHE_VERSION,
                "rules": sorted(rule_codes),
                "config": config_digest,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def lookup(
        self, path: str, digest: str
    ) -> tuple[FileFacts, list[dict[str, Any]], int] | None:
        """Cached ``(facts, violation payloads, suppressed count)``."""
        entry = self._entries.get(path)
        if entry is None or entry["digest"] != digest:
            self.misses.append(path)
            return None
        self.hits.append(path)
        return (
            FileFacts.from_json(entry["facts"]),
            list(entry["violations"]),
            int(entry["suppressed"]),
        )

    def store(
        self,
        path: str,
        facts: FileFacts,
        violations: list[dict[str, Any]],
        suppressed: int,
    ) -> None:
        self._entries[path] = {
            "digest": facts.digest,
            "facts": facts.to_json(),
            "violations": violations,
            "suppressed": suppressed,
        }

    def prune(self, live_paths: set[str]) -> None:
        """Drop entries for files no longer part of the lint set."""
        for path in list(self._entries):
            if path not in live_paths:
                del self._entries[path]

    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "cache_version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "entries": {
                path: self._entries[path] for path in sorted(self._entries)
            },
        }

    def save(self, path: Path) -> None:
        atomic_write_json(path, self.to_json())

    @classmethod
    def load(cls, path: Path, fingerprint: str) -> "FactsCache":
        """Load the cache, returning an empty one on any mismatch.

        A missing file, unreadable JSON, stale cache version, or a
        fingerprint that no longer matches the current rule set and
        config all mean the same thing: start cold.
        """
        cache = cls(fingerprint)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(data, dict)
            or data.get("cache_version") != CACHE_VERSION
            or data.get("fingerprint") != fingerprint
        ):
            return cache
        entries = data.get("entries")
        if isinstance(entries, dict):
            for file_path, entry in entries.items():
                if (
                    isinstance(entry, dict)
                    and isinstance(entry.get("digest"), str)
                    and isinstance(entry.get("facts"), dict)
                    and isinstance(entry.get("violations"), list)
                ):
                    cache._entries[str(file_path)] = {
                        "digest": entry["digest"],
                        "facts": entry["facts"],
                        "violations": entry["violations"],
                        "suppressed": int(entry.get("suppressed", 0)),
                    }
        return cache
