"""Drive the rules over a file tree and fold in pragmas + baseline.

Two rule families share one run:

* **file rules** (RPL001-RPL009) check one module AST at a time and
  their post-pragma findings are cacheable per file;
* **project rules** (RPL010-RPL014) run against the
  :class:`~repro.analysis.graph.ProjectGraph` assembled from every
  file's extracted facts, and are recomputed on every run (their
  inputs span files, so no single digest covers them).

With a cache attached (``cache_path``), a warm run re-parses only the
files whose content digest changed; everything else — facts *and*
file-rule findings — is served from the cache, and the graph is built
from the mix.  ``LintResult.files_parsed`` / ``cache_hits`` make the
split observable (and testable).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence

from ..exceptions import ValidationError
from .baseline import Baseline
from .config import LintConfig
from .graph import FactsCache, FileFacts, ProjectGraph, extract_facts, file_digest
from .pragmas import PragmaIndex
from .project_rules import ALL_PROJECT_RULES, ProjectRule
from .rules import RuleVisitor, rules_by_code
from .sources import ModuleSource, iter_python_files, normalize_path
from .violations import Violation

__all__ = [
    "LintResult",
    "all_rule_classes",
    "lint_paths",
    "lint_source",
    "select_rules",
]


@dataclass
class LintResult:
    """Everything one lint run produced.

    ``violations`` are the *actionable* findings (not suppressed, not
    grandfathered); ``baselined`` are matches absorbed by the baseline;
    ``errors`` are files that could not be parsed (reported as
    violations of pseudo-code ``RPL000`` so they still fail the gate).
    ``stale_baseline`` lists baseline keys that matched nothing this
    run — entries whose violation has been fixed and that should be
    pruned (``--update-baseline``) or failed on (``--check-baseline``).
    """

    violations: list[Violation] = field(default_factory=list)
    baselined: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    #: files actually parsed this run (= cache misses when caching).
    files_parsed: int = 0
    #: files served from the incremental cache.
    cache_hits: int = 0
    #: baseline keys (code, path, qualname, message) that matched nothing.
    stale_baseline: list[tuple[str, str, str, str]] = field(
        default_factory=list
    )

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0


def all_rule_classes() -> dict[str, type]:
    """Every known rule class — file and project — keyed by code."""
    registry: dict[str, type] = dict(rules_by_code())
    for rule in ALL_PROJECT_RULES:
        registry[rule.code] = type(rule)
    return registry


def select_rules(
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[RuleVisitor | ProjectRule]:
    """Instantiate the rule set, honouring ``--select`` / ``--ignore``."""
    registry = all_rule_classes()
    for code in list(select or []) + list(ignore or []):
        if code not in registry:
            raise ValidationError(
                f"unknown rule code {code!r}; known: {', '.join(sorted(registry))}"
            )
    chosen = list(select) if select else sorted(registry)
    if ignore:
        chosen = [code for code in chosen if code not in set(ignore)]
    return [registry[code]() for code in chosen]


def lint_source(
    module: ModuleSource,
    rules: Sequence[RuleVisitor],
    config: LintConfig,
) -> tuple[list[Violation], int]:
    """All un-suppressed violations in one module + suppressed count."""
    pragmas = PragmaIndex.from_source(module.text)
    kept: list[Violation] = []
    suppressed = 0
    for rule in rules:
        if getattr(rule, "scope", "file") != "file":
            continue  # project rules need the graph, not one module
        for violation in rule.check(module, config):
            if pragmas.suppresses(violation):
                suppressed += 1
            else:
                kept.append(violation)
    return kept, suppressed


def lint_paths(
    paths: Sequence[Path | str],
    *,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    cache_path: Path | None = None,
) -> LintResult:
    """Lint every python file under *paths* (file + project rules).

    Parse failures become ``RPL000`` violations rather than crashes, so
    one broken file cannot hide findings in the rest of the tree.
    """
    config = config if config is not None else LintConfig()
    rules = select_rules(select, ignore)
    file_rules = [r for r in rules if getattr(r, "scope", "file") == "file"]
    project_rules = [r for r in rules if getattr(r, "scope", "file") == "project"]

    cache: FactsCache | None = None
    if cache_path is not None:
        fingerprint = FactsCache.make_fingerprint(
            [r.code for r in rules], config.digest()
        )
        cache = FactsCache.load(cache_path, fingerprint)

    result = LintResult()
    facts_by_path: dict[str, FileFacts] = {}
    found: list[Violation] = []

    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            raw = file_path.read_bytes()
            text = raw.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.violations.append(
                Violation(
                    path=str(file_path),
                    line=1,
                    column=0,
                    code="RPL000",
                    message=f"file does not parse: {exc.__class__.__name__}",
                )
            )
            continue
        digest = file_digest(raw)
        norm = normalize_path(file_path)

        cached = cache.lookup(norm, digest) if cache is not None else None
        if cached is not None:
            facts, payloads, suppressed = cached
            result.cache_hits += 1
            file_found = [
                Violation(
                    path=str(p["path"]),
                    line=int(p["line"]),
                    column=int(p["column"]),
                    code=str(p["code"]),
                    message=str(p["message"]),
                    qualname=str(p["qualname"]),
                )
                for p in payloads
            ]
        else:
            try:
                tree = ast.parse(text, filename=str(file_path))
            except SyntaxError as exc:
                lineno = getattr(exc, "lineno", None) or 1
                result.violations.append(
                    Violation(
                        path=str(file_path),
                        line=int(lineno),
                        column=0,
                        code="RPL000",
                        message=f"file does not parse: {exc.__class__.__name__}",
                    )
                )
                continue
            module = ModuleSource(path=norm, text=text, tree=tree)
            facts = extract_facts(module, digest)
            file_found, suppressed = lint_source(module, file_rules, config)
            result.files_parsed += 1
            if cache is not None:
                cache.store(
                    norm, facts, [v.to_json() for v in file_found], suppressed
                )

        result.files_checked += 1
        result.suppressed += suppressed
        found.extend(file_found)
        facts_by_path[norm] = facts

    # ------------------------------------------------------------------
    # project pass: one graph over all facts (cached or fresh)
    # ------------------------------------------------------------------
    if project_rules:
        graph = ProjectGraph(facts_by_path)
        for rule in project_rules:
            for violation in rule.check_project(graph, config):
                facts = facts_by_path.get(violation.path)
                if facts is not None and facts.pragma_index().suppresses(
                    violation
                ):
                    result.suppressed += 1
                else:
                    found.append(violation)

    if baseline is not None:
        fresh, known = baseline.split(found)
        result.violations.extend(fresh)
        result.baselined.extend(known)
    else:
        result.violations.extend(found)
    result.violations.sort()
    result.baselined.sort()

    if baseline is not None:
        matched = {v.key() for v in result.baselined}
        result.stale_baseline = sorted(
            key for key in baseline.keys() if key not in matched
        )

    if cache is not None and cache_path is not None:
        cache.prune(set(facts_by_path))
        cache.save(cache_path)
    return result
