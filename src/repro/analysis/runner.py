"""Drive the rules over a file tree and fold in pragmas + baseline."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Sequence

from ..exceptions import ValidationError
from .baseline import Baseline
from .config import LintConfig
from .pragmas import PragmaIndex
from .rules import ALL_RULES, RuleVisitor, rules_by_code
from .sources import ModuleSource, iter_python_files
from .violations import Violation

__all__ = ["LintResult", "lint_paths", "lint_source", "select_rules"]


@dataclass
class LintResult:
    """Everything one lint run produced.

    ``violations`` are the *actionable* findings (not suppressed, not
    grandfathered); ``baselined`` are matches absorbed by the baseline;
    ``errors`` are files that could not be parsed (reported as
    violations of pseudo-code ``RPL000`` so they still fail the gate).
    """

    violations: list[Violation] = field(default_factory=list)
    baselined: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0


def select_rules(
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[RuleVisitor]:
    """Instantiate the rule set, honouring ``--select`` / ``--ignore``."""
    registry = rules_by_code()
    for code in list(select or []) + list(ignore or []):
        if code not in registry:
            raise ValidationError(
                f"unknown rule code {code!r}; known: {', '.join(sorted(registry))}"
            )
    chosen = list(select) if select else sorted(registry)
    if ignore:
        chosen = [code for code in chosen if code not in set(ignore)]
    return [registry[code]() for code in chosen]


def lint_source(
    module: ModuleSource,
    rules: Sequence[RuleVisitor],
    config: LintConfig,
) -> tuple[list[Violation], int]:
    """All un-suppressed violations in one module + suppressed count."""
    pragmas = PragmaIndex.from_source(module.text)
    kept: list[Violation] = []
    suppressed = 0
    for rule in rules:
        for violation in rule.check(module, config):
            if pragmas.suppresses(violation):
                suppressed += 1
            else:
                kept.append(violation)
    return kept, suppressed


def lint_paths(
    paths: Sequence[Path | str],
    *,
    config: LintConfig | None = None,
    baseline: Baseline | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintResult:
    """Lint every python file under *paths*.

    Parse failures become ``RPL000`` violations rather than crashes, so
    one broken file cannot hide findings in the rest of the tree.
    """
    config = config if config is not None else LintConfig()
    rules = select_rules(select, ignore)
    result = LintResult()
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            module = ModuleSource.parse(file_path)
        except (SyntaxError, UnicodeDecodeError) as exc:
            lineno = getattr(exc, "lineno", None) or 1
            result.violations.append(
                Violation(
                    path=str(file_path),
                    line=int(lineno),
                    column=0,
                    code="RPL000",
                    message=f"file does not parse: {exc.__class__.__name__}",
                )
            )
            continue
        result.files_checked += 1
        found, suppressed = lint_source(module, rules, config)
        result.suppressed += suppressed
        if baseline is not None:
            fresh, known = baseline.split(found)
            result.violations.extend(fresh)
            result.baselined.extend(known)
        else:
            result.violations.extend(found)
    result.violations.sort()
    result.baselined.sort()
    return result
