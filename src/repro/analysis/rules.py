"""The project-invariant rules (RPL001-RPL009).

Each rule is an AST pass over one module that yields
:class:`~.violations.Violation` records.  The invariants themselves
are documented in ``docs/determinism.md``; in one line each:

========  ============================================================
RPL001    no module-level / unseeded RNG — randomness flows from a
          seeded ``Generator`` (``RunContext.rng`` / ``random_state``)
RPL002    no wall-clock reads outside the budget/telemetry modules
RPL003    no direct file writes — persistence goes through
          ``repro._atomic``
RPL004    core/CLI resolve engines via the registry, never by class
RPL005    ``emit()`` only with registered event types
RPL006    process pools only inside ``repro.grid.parallel``
RPL007    no float ``==`` in sparsity/statistics math
RPL008    no mutable default arguments in public APIs
RPL009    no broad ``except Exception`` / bare ``except`` outside the
          resilience layer — catch-all recovery is the degradation
          ladder's job (cleanup-and-reraise handlers are exempt)
========  ============================================================

Rules are deliberately *syntactic*: they see one file at a time, no
type inference, no cross-module resolution.  That keeps them fast and
predictable; the escape hatches (``# repro-lint: disable=...`` pragmas
and the baseline file) absorb the residual false positives.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import Protocol, runtime_checkable

from .config import LintConfig
from .sources import ModuleSource
from .violations import Violation

__all__ = ["Rule", "RuleVisitor", "ALL_RULES", "rules_by_code"]


@runtime_checkable
class Rule(Protocol):
    """What the runner needs from a rule implementation."""

    code: str
    name: str
    description: str

    def check(
        self, module: ModuleSource, config: LintConfig
    ) -> Iterator[Violation]: ...


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Imports:
    """Names each module binds to the modules the rules care about."""

    def __init__(self, tree: ast.Module) -> None:
        self.module_aliases: dict[str, str] = {}  # local name -> module path
        self.from_imports: dict[str, tuple[str, str]] = {}  # local -> (mod, orig)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )

    def aliases_of(self, module: str) -> set[str]:
        """Local names bound to *module* via ``import`` statements."""
        return {
            local
            for local, target in self.module_aliases.items()
            if target == module
        }

    def names_from(self, module: str) -> dict[str, str]:
        """Local names bound via ``from module import ...`` -> original."""
        return {
            local: orig
            for local, (mod, orig) in self.from_imports.items()
            if mod == module
        }


class RuleVisitor(ast.NodeVisitor):
    """Scope-tracking visitor base shared by every rule.

    Subclasses call :meth:`report` with the offending node; the base
    class stamps the location and the enclosing dotted qualname.
    """

    code = "RPL000"
    name = "abstract"
    description = ""

    def __init__(self) -> None:
        self._scope: list[str] = []
        self._module: ModuleSource | None = None
        self._config: LintConfig | None = None
        self._found: list[Violation] = []
        self._imports: _Imports = _Imports(ast.parse(""))

    # ------------------------------------------------------------------
    def check(
        self, module: ModuleSource, config: LintConfig
    ) -> Iterator[Violation]:
        self._scope = []
        self._module = module
        self._config = config
        self._found = []
        self._imports = _Imports(module.tree)
        if self._applies(module, config):
            self.visit(module.tree)
        yield from self._found

    def _applies(self, module: ModuleSource, config: LintConfig) -> bool:
        """Override to scope a rule to configured module patterns."""
        return True

    @property
    def config(self) -> LintConfig:
        assert self._config is not None
        return self._config

    @property
    def module(self) -> ModuleSource:
        assert self._module is not None
        return self._module

    def report(self, node: ast.AST, message: str) -> None:
        self._found.append(
            Violation(
                path=self.module.path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                code=self.code,
                message=message,
                qualname=".".join(self._scope) or "<module>",
            )
        )

    # ------------------------------------------------------------------
    def _visit_scope(self, node: ast.AST, name: str) -> None:
        self._scope.append(name)
        try:
            self.generic_visit(node)
        finally:
            self._scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scope(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node, node.name)


# ----------------------------------------------------------------------
class UnseededRngRule(RuleVisitor):
    """RPL001: randomness must flow from a seeded Generator."""

    code = "RPL001"
    name = "no-unseeded-rng"
    description = (
        "module-level numpy.random / stdlib random calls bypass the "
        "seeded-Generator discipline (RunContext.rng / random_state)"
    )

    #: numpy.random attributes that *construct* seeded generators; a
    #: zero-argument call is still flagged (entropy-seeded).
    _SEEDED_CONSTRUCTORS = frozenset(
        {"default_rng", "RandomState", "SeedSequence", "PCG64", "Philox",
         "SFC64", "MT19937"}
    )
    _ALWAYS_OK = frozenset({"Generator", "BitGenerator"})

    def _applies(self, module: ModuleSource, config: LintConfig) -> bool:
        return not module.matches(config.rng_allowed_modules)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            bad = [a.name for a in node.names if a.name not in ("Random",)]
            if bad:
                self.report(
                    node,
                    f"import of stdlib random function(s) {', '.join(sorted(bad))} "
                    "(module-level RNG); use a seeded numpy Generator",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            self._check_numpy(node, dotted)
            self._check_stdlib(node, dotted)
        self.generic_visit(node)

    def _check_numpy(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        numpy_aliases = self._imports.aliases_of("numpy")
        random_aliases = self._imports.aliases_of("numpy.random") | {
            local
            for local, orig in self._imports.names_from("numpy").items()
            if orig == "random"
        }
        if len(parts) >= 3 and parts[0] in numpy_aliases and parts[1] == "random":
            attr = parts[2]
        elif len(parts) >= 2 and parts[0] in random_aliases:
            attr = parts[1]
        else:
            return
        if attr in self._ALWAYS_OK:
            return
        if attr in self._SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                self.report(
                    node,
                    f"unseeded numpy.random.{attr}() (entropy-seeded); "
                    "pass an explicit seed or thread a Generator through",
                )
            return
        self.report(
            node,
            f"module-level numpy.random.{attr}() call; use a seeded "
            "Generator (RunContext.rng / check_rng(random_state))",
        )

    def _check_stdlib(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        if parts[0] not in self._imports.aliases_of("random") or len(parts) < 2:
            return
        attr = parts[1]
        if attr == "Random" and (node.args or node.keywords):
            return  # random.Random(seed): explicitly seeded instance
        self.report(
            node,
            f"stdlib random.{attr}() call (module-level RNG); use a "
            "seeded numpy Generator",
        )


# ----------------------------------------------------------------------
class WallClockRule(RuleVisitor):
    """RPL002: wall-clock reads live in the budget/telemetry layer."""

    code = "RPL002"
    name = "no-wall-clock"
    description = (
        "wall-clock reads outside the budget/telemetry modules break "
        "checkpoint/resume determinism"
    )

    _TIME_FUNCS = frozenset(
        {"time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
         "monotonic_ns", "process_time", "process_time_ns"}
    )
    _DATETIME_METHODS = frozenset({"now", "utcnow", "today"})

    def _applies(self, module: ModuleSource, config: LintConfig) -> bool:
        return not module.matches(config.clock_allowed_modules)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            self._check(node, dotted)
        self.generic_visit(node)

    def _check(self, node: ast.Call, dotted: str) -> None:
        parts = dotted.split(".")
        head, tail = parts[0], parts[-1]
        # time.perf_counter() / aliased module
        if (
            len(parts) == 2
            and head in self._imports.aliases_of("time")
            and tail in self._TIME_FUNCS
        ):
            self.report(node, f"wall-clock read time.{tail}()")
            return
        # from time import perf_counter
        if len(parts) == 1:
            origin = self._imports.names_from("time").get(head)
            if origin in self._TIME_FUNCS:
                self.report(node, f"wall-clock read time.{origin}()")
            return
        # datetime.datetime.now() / datetime.date.today()
        if (
            len(parts) == 3
            and head in self._imports.aliases_of("datetime")
            and parts[1] in ("datetime", "date")
            and tail in self._DATETIME_METHODS
        ):
            self.report(node, f"wall-clock read datetime.{parts[1]}.{tail}()")
            return
        # from datetime import datetime/date; datetime.now()
        if len(parts) == 2:
            origin = self._imports.names_from("datetime").get(head)
            if origin in ("datetime", "date") and tail in self._DATETIME_METHODS:
                self.report(node, f"wall-clock read datetime.{origin}.{tail}()")


# ----------------------------------------------------------------------
class NonAtomicWriteRule(RuleVisitor):
    """RPL003: on-disk writes go through ``repro._atomic``."""

    code = "RPL003"
    name = "atomic-writes-only"
    description = (
        "direct file writes can be torn by a crash; route persistence "
        "through repro._atomic"
    )

    _DUMP_FUNCS = {"json.dump", "pickle.dump", "marshal.dump"}
    _NUMPY_SAVERS = frozenset({"save", "savez", "savez_compressed", "savetxt"})

    def _applies(self, module: ModuleSource, config: LintConfig) -> bool:
        return not module.matches(config.write_allowed_modules)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            # builtin open(file, mode=...) — mode is the 2nd positional
            self._check_mode(node, "open()", mode_position=1)
        elif isinstance(func, ast.Attribute) and func.attr == "open":
            # Path.open(mode=...) — mode is the 1st positional
            self._check_mode(node, ".open()", mode_position=0)
        elif isinstance(func, ast.Attribute) and func.attr == "fdopen":
            self._check_mode(node, ".fdopen()", mode_position=1)
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            self.report(
                node,
                f".{func.attr}() writes non-atomically; use repro._atomic "
                "(atomic_write_text / atomic_write_json)",
            )
        dotted = _dotted(func)
        if dotted is not None:
            self._check_dump(node, dotted)
        self.generic_visit(node)

    def _mode_argument(
        self, node: ast.Call, mode_position: int
    ) -> ast.expr | None:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                return keyword.value
        if len(node.args) > mode_position:
            return node.args[mode_position]
        return None

    def _check_mode(self, node: ast.Call, label: str, *, mode_position: int) -> None:
        mode = self._mode_argument(node, mode_position)
        if mode is None:
            return  # default mode "r"
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            if any(flag in mode.value for flag in "wax+"):
                self.report(
                    node,
                    f"{label} with write mode {mode.value!r}; use "
                    "repro._atomic (atomic_writer / atomic_write_text / "
                    "atomic_write_json)",
                )
            return
        self.report(
            node,
            f"{label} with non-literal mode; cannot verify it is "
            "read-only — use repro._atomic for writes",
        )

    def _check_dump(self, node: ast.Call, dotted: str) -> None:
        if dotted in self._DUMP_FUNCS:
            self.report(
                node,
                f"{dotted}() streams to an open handle; serialize first "
                "and write via repro._atomic",
            )
            return
        parts = dotted.split(".")
        if (
            len(parts) == 2
            and parts[0] in self._imports.aliases_of("numpy")
            and parts[1] in self._NUMPY_SAVERS
        ):
            self.report(
                node,
                f"numpy.{parts[1]}() writes directly; write via "
                "repro._atomic (serialize to bytes/text first)",
            )


# ----------------------------------------------------------------------
class RegistryOnlyRule(RuleVisitor):
    """RPL004: core/CLI must resolve engines through the registry."""

    code = "RPL004"
    name = "engines-via-registry"
    description = (
        "direct engine-class construction in core/cli bypasses the "
        "registry's kwarg filtering and plugin surface"
    )

    def _applies(self, module: ModuleSource, config: LintConfig) -> bool:
        return module.matches(config.registry_only_modules)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        bad = sorted(
            alias.name
            for alias in node.names
            if alias.name in self.config.engine_class_names
        )
        if bad:
            self.report(
                node,
                f"import of concrete engine class(es) {', '.join(bad)}; "
                "resolve via repro.engine.create_engine()",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            tail = dotted.split(".")[-1]
            if tail in self.config.engine_class_names:
                self.report(
                    node,
                    f"direct {tail}(...) construction; resolve via "
                    "repro.engine.create_engine()",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
class RegisteredEventsRule(RuleVisitor):
    """RPL005: ``emit()`` only with registered event types."""

    code = "RPL005"
    name = "registered-events-only"
    description = (
        "emitting an unregistered event type raises ValidationError at "
        "runtime; register_event_type() first"
    )

    def check(
        self, module: ModuleSource, config: LintConfig
    ) -> Iterator[Violation]:
        # Event types registered inside this very file are legal to emit.
        self._locally_registered: set[str] = set()
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and (dotted := _dotted(node.func)) is not None
                and dotted.split(".")[-1] == "register_event_type"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                self._locally_registered.add(node.args[0].value)
        yield from super().check(module, config)

    def visit_Call(self, node: ast.Call) -> None:
        event_arg: ast.expr | None = None
        if isinstance(node.func, ast.Attribute) and node.func.attr == "emit":
            if node.args:
                event_arg = node.args[0]
        elif (
            (dotted := _dotted(node.func)) is not None
            and dotted.split(".")[-1] == "emit_event"
            and len(node.args) >= 2
        ):
            event_arg = node.args[1]
        if (
            event_arg is not None
            and isinstance(event_arg, ast.Constant)
            and isinstance(event_arg.value, str)
        ):
            event = event_arg.value
            known = self.config.event_types | self._locally_registered
            if event not in known:
                self.report(
                    node,
                    f"emit of unregistered event type {event!r}; call "
                    "register_event_type() or use one of the built-ins",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
class BareParallelismRule(RuleVisitor):
    """RPL006: process pools only inside ``repro.grid.parallel``."""

    code = "RPL006"
    name = "parallelism-via-grid"
    description = (
        "ad-hoc multiprocessing bypasses the fault-tolerant dispatcher "
        "(timeouts, retries, serial fallback, health telemetry)"
    )

    _MODULES = ("multiprocessing", "concurrent")

    def _applies(self, module: ModuleSource, config: LintConfig) -> bool:
        return not module.matches(config.parallel_allowed_modules)

    def _is_banned(self, module_name: str) -> bool:
        return any(
            module_name == banned or module_name.startswith(banned + ".")
            for banned in self._MODULES
        )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if self._is_banned(alias.name):
                self.report(
                    node,
                    f"import of {alias.name}; use repro.grid.parallel's "
                    "CountingPool / CountingBackend instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0 and self._is_banned(node.module):
            self.report(
                node,
                f"import from {node.module}; use repro.grid.parallel's "
                "CountingPool / CountingBackend instead",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
class FloatEqualityRule(RuleVisitor):
    """RPL007: no float ``==`` in sparsity/statistics math."""

    code = "RPL007"
    name = "no-float-equality"
    description = (
        "float equality is representation-dependent; use math.isnan / "
        "math.isclose / an explicit tolerance"
    )

    def _applies(self, module: ModuleSource, config: LintConfig) -> bool:
        return module.matches(config.float_eq_modules)

    def visit_Compare(self, node: ast.Compare) -> None:
        if all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            operands = [node.left, *node.comparators]
            for operand in operands:
                if isinstance(operand, ast.Constant) and isinstance(
                    operand.value, float
                ):
                    self.report(
                        node,
                        f"comparison against float literal {operand.value!r}; "
                        "use math.isclose or an explicit tolerance",
                    )
                    break
            else:
                if len(operands) == 2 and ast.dump(operands[0]) == ast.dump(
                    operands[1]
                ):
                    self.report(
                        node,
                        "x == x self-comparison (NaN probe); use "
                        "math.isnan / numpy.isnan",
                    )
        self.generic_visit(node)


# ----------------------------------------------------------------------
class MutableDefaultRule(RuleVisitor):
    """RPL008: no mutable default arguments in public APIs."""

    code = "RPL008"
    name = "no-mutable-defaults"
    description = (
        "mutable defaults are shared across calls; default to None and "
        "construct inside the function"
    )

    _MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict",
         "Counter", "deque"}
    )

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if node.name.startswith("_") or any(
            part.startswith("_") for part in self._scope
        ):
            return
        defaults: list[ast.expr] = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self.report(
                    default,
                    f"mutable default argument in public function "
                    f"{node.name}(); use None and construct per call",
                )
            elif isinstance(default, ast.Call):
                dotted = _dotted(default.func)
                if dotted is not None and dotted.split(".")[-1] in self._MUTABLE_CALLS:
                    self.report(
                        default,
                        f"mutable default argument ({dotted}()) in public "
                        f"function {node.name}(); use None and construct "
                        "per call",
                    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._visit_scope(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._visit_scope(node, node.name)


# ----------------------------------------------------------------------
class BroadExceptRule(RuleVisitor):
    """RPL009: catch-all recovery belongs to the resilience layer."""

    code = "RPL009"
    name = "no-broad-except"
    description = (
        "broad `except Exception` / bare `except` outside the "
        "resilience layer swallows faults the degradation ladder "
        "should see; catch specific exceptions or route recovery "
        "through repro.resilience"
    )

    def _applies(self, module: ModuleSource, config: LintConfig) -> bool:
        return not module.matches(config.broad_except_allowed_modules)

    @staticmethod
    def _broad_name(expr: ast.expr | None) -> str | None:
        """``"Exception"``/``"BaseException"`` when *expr* names one."""
        if expr is None:
            return None
        dotted = _dotted(expr)
        if dotted is not None and dotted.split(".")[-1] in (
            "Exception",
            "BaseException",
        ):
            return dotted
        return None

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        """Cleanup-and-reraise: the handler's last statement is ``raise``.

        ``except BaseException: unlink(tmp); raise`` narrows nothing —
        the fault still propagates — so it is exempt.
        """
        if not handler.body:
            return False
        last = handler.body[-1]
        return isinstance(last, ast.Raise) and last.exc is None

    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            self._check_handler(handler)
        self.generic_visit(node)

    def _check_handler(self, handler: ast.ExceptHandler) -> None:
        if self._reraises(handler):
            return
        if handler.type is None:
            self.report(
                handler,
                "bare `except:` swallows every fault (including "
                "KeyboardInterrupt); catch specific exceptions or route "
                "recovery through repro.resilience",
            )
            return
        exprs: list[ast.expr] = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for expr in exprs:
            broad = self._broad_name(expr)
            if broad is not None:
                self.report(
                    handler,
                    f"broad `except {broad}` outside the resilience "
                    "layer; catch specific exceptions or route recovery "
                    "through repro.resilience (DegradationLadder.guarded)",
                )
                return


# ----------------------------------------------------------------------
ALL_RULES: tuple[type[RuleVisitor], ...] = (
    UnseededRngRule,
    WallClockRule,
    NonAtomicWriteRule,
    RegistryOnlyRule,
    RegisteredEventsRule,
    BareParallelismRule,
    FloatEqualityRule,
    MutableDefaultRule,
    BroadExceptRule,
)


def rules_by_code() -> dict[str, type[RuleVisitor]]:
    """``{"RPL001": UnseededRngRule, ...}`` for ``--select``/``--ignore``."""
    return {rule.code: rule for rule in ALL_RULES}
