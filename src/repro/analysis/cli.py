"""``repro-lint`` / ``python -m repro.analysis`` — the lint CLI.

Exit codes: 0 clean (all findings baselined or suppressed), 1 new
violations, 2 usage errors (unknown rule code, unreadable baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from collections.abc import Sequence

from ..exceptions import ValidationError
from .baseline import Baseline
from .report import render_json, render_text
from .rules import ALL_RULES
from .runner import lint_paths

__all__ = ["main", "build_parser", "DEFAULT_BASELINE_NAME"]

#: Picked up from the working directory when ``--baseline`` is absent.
DEFAULT_BASELINE_NAME = "repro-lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST invariant checker for the repro codebase: enforces the "
            "determinism and architecture rules documented in "
            "docs/determinism.md"
        ),
        epilog="rules: "
        + "; ".join(f"{rule.code} {rule.name}" for rule in ALL_RULES),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="files or directories to lint (e.g. src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "baseline file of grandfathered violations (JSON); default: "
            f"{DEFAULT_BASELINE_NAME} in the working directory, if present"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite --baseline to absorb every current violation "
            "(edit the justifications afterwards), then exit 0"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RPLxxx",
        help="run only these rule codes (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RPLxxx",
        help="skip these rule codes (repeatable)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined violations in the text report",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.no_baseline and (options.baseline or options.update_baseline):
        parser.error("--no-baseline conflicts with --baseline/--update-baseline")
    if options.baseline is None and not options.no_baseline:
        default = Path(DEFAULT_BASELINE_NAME)
        if default.exists() or options.update_baseline:
            options.baseline = default
    try:
        baseline = None
        if options.baseline is not None and options.baseline.exists():
            baseline = Baseline.load(options.baseline)
        if options.update_baseline:
            # Re-lint without the old baseline so every violation lands
            # in the refreshed file, then carry old justifications over.
            raw = lint_paths(
                options.paths, select=options.select, ignore=options.ignore
            )
            refreshed = Baseline()
            for violation in raw.violations:
                if baseline is not None and baseline.contains(violation):
                    refreshed.add(
                        violation, baseline.justification_for(violation)
                    )
                else:
                    refreshed.add(violation, "TODO: justify or fix")
            refreshed.save(options.baseline)
            print(
                f"baseline updated: {len(refreshed)} entr(y/ies) -> "
                f"{options.baseline}",
                file=sys.stderr,
            )
            return 0
        result = lint_paths(
            options.paths,
            baseline=baseline,
            select=options.select,
            ignore=options.ignore,
        )
    except ValidationError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if options.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=options.verbose))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
