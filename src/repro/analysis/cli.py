"""``repro-lint`` / ``python -m repro.analysis`` — the lint CLI.

Exit codes: 0 clean (all findings baselined or suppressed — including
a clean-but-empty source tree, which is *not* a usage error), 1 new
violations or a failed ``--check-baseline``, 2 usage errors (unknown
rule code, unreadable baseline, conflicting flags).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from collections.abc import Sequence

from ..exceptions import ValidationError
from .baseline import Baseline
from .project_rules import ALL_PROJECT_RULES
from .report import render_json, render_sarif, render_text
from .rules import ALL_RULES
from .runner import lint_paths

__all__ = ["main", "build_parser", "DEFAULT_BASELINE_NAME"]

#: Picked up from the working directory when ``--baseline`` is absent.
DEFAULT_BASELINE_NAME = "repro-lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST invariant checker for the repro codebase: enforces the "
            "determinism and architecture rules documented in "
            "docs/determinism.md"
        ),
        epilog="rules: "
        + "; ".join(
            f"{rule.code} {rule.name}"
            for rule in (*ALL_RULES, *ALL_PROJECT_RULES)
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="files or directories to lint (e.g. src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=(
            "baseline file of grandfathered violations (JSON); default: "
            f"{DEFAULT_BASELINE_NAME} in the working directory, if present"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report grandfathered findings too)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite --baseline to absorb every current violation and "
            "prune entries that no longer fire (pruned entries are "
            "reported; edit new justifications afterwards), then exit 0"
        ),
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help=(
            "CI mode: additionally fail (exit 1) when the baseline "
            "contains stale entries that matched no current violation"
        ),
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "incremental cache file: per-file facts and findings keyed "
            "by content digest, so a warm run re-parses only changed "
            "files (invalidated wholesale by rule/config changes)"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RPLxxx",
        help="run only these rule codes (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RPLxxx",
        help="skip these rule codes (repeatable)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baselined violations in the text report",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.no_baseline and (
        options.baseline or options.update_baseline or options.check_baseline
    ):
        parser.error(
            "--no-baseline conflicts with "
            "--baseline/--update-baseline/--check-baseline"
        )
    if options.update_baseline and options.check_baseline:
        parser.error("--update-baseline conflicts with --check-baseline")
    if options.baseline is None and not options.no_baseline:
        default = Path(DEFAULT_BASELINE_NAME)
        if default.exists() or options.update_baseline:
            options.baseline = default
    try:
        baseline = None
        if options.baseline is not None and options.baseline.exists():
            baseline = Baseline.load(options.baseline)
        if options.update_baseline:
            # Re-lint without the old baseline so every violation lands
            # in the refreshed file, then carry old justifications over.
            raw = lint_paths(
                options.paths,
                select=options.select,
                ignore=options.ignore,
                cache_path=options.cache,
            )
            refreshed = Baseline()
            for violation in raw.violations:
                if baseline is not None and baseline.contains(violation):
                    refreshed.add(
                        violation, baseline.justification_for(violation)
                    )
                else:
                    refreshed.add(violation, "TODO: justify or fix")
            refreshed.save(options.baseline)
            print(
                f"baseline updated: {len(refreshed)} entr(y/ies) -> "
                f"{options.baseline}",
                file=sys.stderr,
            )
            if baseline is not None:
                kept = {key for key, _ in refreshed.items()}
                pruned = [key for key in baseline.keys() if key not in kept]
                if pruned:
                    print(
                        f"pruned {len(pruned)} stale entr(y/ies):",
                        file=sys.stderr,
                    )
                    for code, path, qualname, message in pruned:
                        print(
                            f"  {code} {path} {qualname}: {message}",
                            file=sys.stderr,
                        )
            return 0
        result = lint_paths(
            options.paths,
            baseline=baseline,
            select=options.select,
            ignore=options.ignore,
            cache_path=options.cache,
        )
    except ValidationError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if options.format == "json":
        print(render_json(result))
    elif options.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, verbose=options.verbose))
    if options.check_baseline and result.stale_baseline:
        print(
            f"repro-lint: {len(result.stale_baseline)} stale baseline "
            "entr(y/ies) matched no violation (run --update-baseline):",
            file=sys.stderr,
        )
        for code, path, qualname, message in result.stale_baseline:
            print(f"  {code} {path} {qualname}: {message}", file=sys.stderr)
        return 1
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
