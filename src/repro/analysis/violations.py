"""The lint data model: one :class:`Violation` per broken invariant.

A violation identifies *what* rule fired (``code``), *where*
(normalized path, line, column, enclosing ``qualname``) and *why*
(``message``).  The baseline matches violations by their
:meth:`Violation.key` — deliberately line-number-free so grandfathered
entries survive unrelated edits that shift code up or down a file.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Violation"]


@dataclass(frozen=True, order=True)
class Violation:
    """One rule firing at one source location.

    Attributes
    ----------
    path:
        Normalized posix-style path (``repro/grid/parallel.py`` for
        library files, walk-root-relative otherwise).
    line / column:
        1-based line and 0-based column of the offending node.
    code:
        The rule's ``RPLxxx`` identifier.
    message:
        Human-readable description.  Messages are stable (they never
        embed line numbers) because they participate in baseline keys.
    qualname:
        Dotted enclosing scope (``ClassName.method``), or ``"<module>"``
        for module-level code.
    """

    path: str
    line: int
    column: int
    code: str
    message: str
    qualname: str = "<module>"

    def key(self) -> tuple[str, str, str, str]:
        """Line-free identity used for baseline matching."""
        return (self.code, self.path, self.qualname, self.message)

    def to_json(self) -> dict[str, object]:
        """JSON-reporter record (schema locked by the framework tests)."""
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "qualname": self.qualname,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line:col: CODE message`` — the human reporter's line."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"
