"""Lint configuration: which modules are exempt from which invariant.

The defaults encode *this* repository's architecture decisions:

* the wall-clock allowlist is the budget/telemetry layer — the run
  controller owns the one run-wide deadline clock, the event bus
  stamps trace timestamps, and the fault-tolerant dispatcher enforces
  per-chunk timeouts and records latency telemetry;
* ``repro/grid/parallel.py`` is the single module allowed to talk to
  ``multiprocessing`` / ``concurrent.futures`` directly;
* only ``repro/_atomic.py`` may open files for writing;
* ``repro/core/*`` and ``repro/cli.py`` must resolve engines through
  the registry rather than naming concrete searcher classes.

Everything here is data, not code, so a downstream project embedding
the framework can swap in its own :class:`LintConfig`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields

__all__ = ["LintConfig", "default_event_types"]


def default_event_types() -> frozenset[str]:
    """The registered event vocabulary, read from the live registry.

    Falls back to the built-in vocabulary if ``repro.engine`` is not
    importable (e.g. the framework linting a foreign tree).
    """
    try:
        from ..engine.events import EVENT_TYPES

        return frozenset(EVENT_TYPES)
    except Exception:  # pragma: no cover  # repro-lint: disable=RPL009
        return frozenset(
            {
                "run_started",
                "generation_end",
                "level_end",
                "chunk_retry",
                "checkpoint_written",
                "engine_finished",
            }
        )


@dataclass(frozen=True)
class LintConfig:
    """Tunable knobs for the rule set (defaults = this repo's layout)."""

    #: RPL001 — modules allowed to touch module-level / unseeded RNG.
    rng_allowed_modules: tuple[str, ...] = ()

    #: RPL002 — the budget/telemetry modules allowed to read wall clocks.
    clock_allowed_modules: tuple[str, ...] = (
        "repro/run/controller.py",
        "repro/engine/events.py",
        "repro/grid/health.py",
        "repro/grid/parallel.py",
        # The eval harness *measures* wall-clock: Table 1's time column
        # is its output, so the clock is the instrument, not a leak.
        "repro/eval/harness.py",
        "repro/eval/sweeps.py",
    )

    #: RPL003 — modules allowed to open files for writing directly.
    write_allowed_modules: tuple[str, ...] = ("repro/_atomic.py",)

    #: RPL004 — modules that must resolve engines via the registry...
    registry_only_modules: tuple[str, ...] = (
        "repro/core/*",
        "repro/cli.py",
        "repro/model/*",
    )
    #: ...and the concrete engine classes they must not instantiate.
    engine_class_names: frozenset[str] = frozenset(
        {
            "EvolutionarySearch",
            "BruteForceSearch",
            "RandomSearch",
            "HillClimbingSearch",
            "SimulatedAnnealingSearch",
        }
    )

    #: RPL005 — the registered event vocabulary.
    event_types: frozenset[str] = field(default_factory=default_event_types)

    #: RPL006 — modules allowed to import multiprocessing machinery.
    parallel_allowed_modules: tuple[str, ...] = ("repro/grid/parallel.py",)

    #: RPL007 — the numeric modules where float ``==`` is checked.
    float_eq_modules: tuple[str, ...] = (
        "repro/sparsity/*",
        "repro/eval/*",
        "repro/grid/discretizer.py",
        "repro/grid/cells.py",
        "repro/model/*",
    )

    #: RPL009 — modules allowed to catch broadly (``except Exception``
    #: / bare ``except``): the resilience layer owns deliberate
    #: catch-all recovery, and the fault-tolerant dispatcher must
    #: survive arbitrary worker failures.  Everywhere else a broad
    #: catch hides faults the degradation ladder should see.
    broad_except_allowed_modules: tuple[str, ...] = (
        "repro/resilience/*",
        "repro/grid/parallel.py",
    )

    # -- project rules (RPL010-RPL014) ---------------------------------

    #: RPL010 — modules whose event registrations must have emitters.
    #: Registrations outside (a test registering a throwaway type) are
    #: exempt from the dead-vocabulary direction.
    contract_registry_modules: tuple[str, ...] = ("repro/*",)

    #: RPL011 — the public API surface whose reachable raises are held
    #: to the ReproError contract...
    entry_point_modules: tuple[str, ...] = (
        "repro/core/*",
        "repro/model/*",
        "repro/cli.py",
    )
    #: ...and the builtin exception names that must not escape it bare.
    escape_exception_names: frozenset[str] = frozenset(
        {"OSError", "IOError", "ValueError", "RuntimeError"}
    )

    #: RPL012 — modules whose resource creations are lifecycle-checked.
    resource_checked_modules: tuple[str, ...] = ("repro/*",)

    #: RPL013 — modules whose RNG constructions are taint-checked
    #: (minus ``rng_allowed_modules``, which RPL013 shares with RPL001).
    rng_taint_modules: tuple[str, ...] = ("repro/*",)

    def digest(self) -> str:
        """Stable content hash of the configuration.

        Part of the incremental-cache fingerprint: any config change
        must invalidate cached facts.  Unordered fields (frozensets)
        are sorted so the digest is deterministic across processes.
        """
        payload: dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, frozenset):
                payload[spec.name] = sorted(value)
            else:
                payload[spec.name] = list(value)
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
