"""Cross-module contract rules (RPL010-RPL014).

These rules run against the :class:`~repro.analysis.graph.ProjectGraph`
rather than a single module AST — each one checks a contract whose two
halves live in different files:

=======  ==========================================================
RPL010   every emitted event type is registered; every registered
         type has at least one emitter
RPL011   public entry points only let ``ReproError`` subclasses
         escape — bare builtin raises reachable from them are flagged
RPL012   memmap/pool/tempdir creations are closed on all paths
         (``with`` / ``try-finally`` / registered finalizer)
RPL013   a ``Generator`` must be seeded from a seed/rng parameter or
         an integer literal — entropy/opaque seeding is flagged
RPL014   fault-point / kernel / backend names resolve to a
         registration somewhere in the project
=======  ==========================================================

A project rule reports violations with file/line/qualname exactly like
the single-file rules, so pragmas, baseline, and reporters all work
unchanged.  The ``scope`` attribute ("project" here, "file" for the
PR-5 rules) is how the runner tells the two families apart.
"""

from __future__ import annotations

from fnmatch import fnmatch

from .config import LintConfig
from .graph import ProjectGraph
from .violations import Violation

__all__ = [
    "ALL_PROJECT_RULES",
    "ProjectRule",
    "RPL010EventContract",
    "RPL011ExceptionContract",
    "RPL012ResourceLifecycle",
    "RPL013RngTaint",
    "RPL014RegistryConsistency",
]


class ProjectRule:
    """Base class for whole-program rules.

    Subclasses set ``code``/``name``/``description`` and implement
    :meth:`check_project`; the runner collects the returned violations
    and then applies pragmas and the baseline uniformly.
    """

    code: str = "RPL000"
    name: str = "project-rule"
    description: str = ""
    scope: str = "project"

    def check_project(
        self, graph: ProjectGraph, config: LintConfig
    ) -> list[Violation]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    @staticmethod
    def _in_scope(path: str, patterns: tuple[str, ...]) -> bool:
        return any(fnmatch(path, pattern) for pattern in patterns)


class RPL010EventContract(ProjectRule):
    """Event vocabulary closed both ways.

    An emitted type with no registration would raise at runtime — but
    only on the first run that reaches the emit site; a registered type
    with no emitter is dead vocabulary that consumers (trace tooling,
    the docs table) believe exists.  Dynamic emissions (the type flows
    through a variable, e.g. the degradation ladder's ``_emit``
    forwarder) are visible in the graph but cannot prove a type live,
    so they satisfy neither direction.
    """

    code = "RPL010"
    name = "event-contract"
    description = (
        "every emitted event type must be registered and every "
        "registered type must have at least one literal emitter"
    )

    def check_project(
        self, graph: ProjectGraph, config: LintConfig
    ) -> list[Violation]:
        violations: list[Violation] = []
        registered = graph.contract_names("event_register")
        emitted = graph.contract_names("event_emit")
        for path, site in graph.contract_sites("event_emit", literal_only=True):
            if site.argument not in registered:
                violations.append(
                    Violation(
                        path=path,
                        line=site.line,
                        column=site.column,
                        code=self.code,
                        message=(
                            f"event type {site.argument!r} is emitted but "
                            "never registered (register_event_type / "
                            "EVENT_TYPES)"
                        ),
                        qualname=site.qualname,
                    )
                )
        # Dead-registration checks only apply to the project's own
        # registry modules: a test registering a throwaway type for one
        # assertion is not dead vocabulary.
        for path, site in graph.contract_sites(
            "event_register", literal_only=True
        ):
            if not self._in_scope(path, config.contract_registry_modules):
                continue
            if site.argument not in emitted:
                violations.append(
                    Violation(
                        path=path,
                        line=site.line,
                        column=site.column,
                        code=self.code,
                        message=(
                            f"event type {site.argument!r} is registered "
                            "but never emitted anywhere in the project"
                        ),
                        qualname=site.qualname,
                    )
                )
        return violations


class RPL011ExceptionContract(ProjectRule):
    """Public API errors must be typed.

    ``repro.exceptions`` promises that every deliberate error derives
    from :class:`ReproError`, so callers can write one ``except``
    clause.  A bare ``raise ValueError`` four calls below a public
    entry point silently breaks that promise.  The rule walks the call
    graph from every public function in the entry-point modules and
    flags reachable raises of the banned builtin types; the fix is
    almost always a one-line switch to the matching typed subclass
    (``ValidationError`` *is a* ``ValueError``, ``ResourceError`` *is
    an* ``OSError``, so external callers keep working).
    """

    code = "RPL011"
    name = "exception-contract"
    description = (
        "public entry points may only let ReproError subclasses "
        "escape; bare builtin raises reachable from them are flagged"
    )

    def check_project(
        self, graph: ProjectGraph, config: LintConfig
    ) -> list[Violation]:
        entries = graph.entry_points(config.entry_point_modules)
        origin = graph.reachable_from(entries)
        banned = config.escape_exception_names
        violations: list[Violation] = []
        seen: set[tuple[str, int, str]] = set()
        for (module, qualname), entry in sorted(origin.items()):
            fn = graph.function(module, qualname)
            if fn is None:
                continue
            path = graph.modules.get(module)
            if path is None:
                continue
            for fact in fn.raises:
                tail = fact.exception.split(".")[-1]
                if tail not in banned:
                    continue
                # The local name may shadow the builtin with a typed
                # import (``from .exceptions import ValidationError as
                # ValueError`` would be perverse but legal) — resolve
                # and skip if it lands on a project symbol.
                if graph.resolve_symbol(module, fact.exception) is not None:
                    continue
                key = (path, fact.line, tail)
                if key in seen:
                    continue
                seen.add(key)
                violations.append(
                    Violation(
                        path=path,
                        line=fact.line,
                        column=fact.column,
                        code=self.code,
                        message=(
                            f"raise {tail} is reachable from public entry "
                            f"point {entry[0]}.{entry[1]}; raise a "
                            "ReproError subclass instead"
                        ),
                        qualname=qualname,
                    )
                )
        return violations


class RPL012ResourceLifecycle(ProjectRule):
    """OS-backed resources must be released on all paths.

    A memmap view holds a file descriptor, a pool holds worker
    processes, a temp directory holds disk — on the exception path an
    unmanaged creation leaks all three until interpreter exit.  The
    extractor classifies every creation site; this rule flags the two
    classifications with a provable leak path: ``unmanaged`` (never
    released) and ``closed_unprotected`` (released, but a raise between
    creation and the close skips it).  Objects that *escape* the
    creating function are owned by the caller and judged at that
    caller's site when it, in turn, creates-or-stores them.
    """

    code = "RPL012"
    name = "resource-lifecycle"
    description = (
        "memmap/pool/tempdir creations must be released via with, "
        "try/finally, or a registered finalizer on all paths"
    )

    _FLAGGED = {"unmanaged", "closed_unprotected"}

    def check_project(
        self, graph: ProjectGraph, config: LintConfig
    ) -> list[Violation]:
        violations: list[Violation] = []
        for path, facts in graph.files.items():
            if not self._in_scope(path, config.resource_checked_modules):
                continue
            for site in facts.resources:
                if site.management not in self._FLAGGED:
                    continue
                how = (
                    "is never released"
                    if site.management == "unmanaged"
                    else "is closed outside try/finally (leaks if an "
                    "exception interleaves)"
                )
                violations.append(
                    Violation(
                        path=path,
                        line=site.line,
                        column=site.column,
                        code=self.code,
                        message=f"{site.kind} created here {how}",
                        qualname=site.qualname,
                    )
                )
        return violations


class RPL013RngTaint(ProjectRule):
    """Generators must be seeded from the run's seed lineage.

    Reproducibility is the paper's headline claim; one Generator built
    from OS entropy anywhere in the counting path silently breaks it.
    The extractor traces each RNG constructor's seed argument: integer
    literals and values flowing from seed/rng-named parameters (one
    assignment hop, arithmetic, and seed transforms like ``spawn`` /
    ``check_rng`` included) are fine; explicit ``None`` and values the
    tracer cannot connect to a seed are flagged.  Zero-argument
    constructors are RPL001's single-file territory and skipped here.
    """

    code = "RPL013"
    name = "rng-taint"
    description = (
        "seeded Generators must flow from a seed/rng parameter or an "
        "integer literal; entropy or untraceable seeding is flagged"
    )

    _FLAGGED = {"entropy", "opaque"}

    def check_project(
        self, graph: ProjectGraph, config: LintConfig
    ) -> list[Violation]:
        violations: list[Violation] = []
        for path, facts in graph.files.items():
            if not self._in_scope(path, config.rng_taint_modules):
                continue
            if self._in_scope(path, config.rng_allowed_modules):
                continue
            for site in facts.rng_sites:
                if site.seed_kind not in self._FLAGGED:
                    continue
                why = (
                    "explicit None seed draws OS entropy"
                    if site.seed_kind == "entropy"
                    else "seed cannot be traced to a seed/rng parameter "
                    "or integer literal"
                )
                violations.append(
                    Violation(
                        path=path,
                        line=site.line,
                        column=site.column,
                        code=self.code,
                        message=f"{site.detail}: {why}",
                        qualname=site.qualname,
                    )
                )
        return violations


class RPL014RegistryConsistency(ProjectRule):
    """String names handed to registries must resolve.

    ``maybe_inject("shard_raed")`` is a no-op typo today and a dead
    chaos test forever; ``get_backend("natve")`` raises — but only on
    the degraded path it was supposed to exercise.  Every literal name
    passed to a fault-injection, kernel, or backend lookup must match a
    registration somewhere in the project.  The reverse direction
    (registered-but-unused) is deliberately *not* checked: registries
    exist so downstream code can resolve entries the core never names.
    """

    code = "RPL014"
    name = "registry-consistency"
    description = (
        "fault-point, kernel, and backend names passed to lookups "
        "must match a registration somewhere in the project"
    )

    _PAIRS = (
        ("fault_use", "fault_register", "fault point"),
        ("kernel_use", "kernel_register", "kernel"),
        ("backend_use", "backend_register", "backend"),
    )

    def check_project(
        self, graph: ProjectGraph, config: LintConfig
    ) -> list[Violation]:
        violations: list[Violation] = []
        for use_kind, register_kind, label in self._PAIRS:
            registered = graph.contract_names(register_kind)
            for path, site in graph.contract_sites(
                use_kind, literal_only=True
            ):
                if site.argument in registered:
                    continue
                violations.append(
                    Violation(
                        path=path,
                        line=site.line,
                        column=site.column,
                        code=self.code,
                        message=(
                            f"{label} {site.argument!r} is not registered "
                            "anywhere in the project"
                        ),
                        qualname=site.qualname,
                    )
                )
        return violations


ALL_PROJECT_RULES: tuple[ProjectRule, ...] = (
    RPL010EventContract(),
    RPL011ExceptionContract(),
    RPL012ResourceLifecycle(),
    RPL013RngTaint(),
    RPL014RegistryConsistency(),
)
