"""Reporters: human-readable text, machine JSON, and SARIF.

The JSON schema (``version`` / ``summary`` / ``violations`` /
``baselined``) is part of the tool's contract — CI annotations and the
framework tests both consume it — so changes must bump ``version``.
Version 2 added ``files_parsed`` / ``cache_hits`` (incremental cache
observability) and ``stale_baseline`` to the summary.

The SARIF reporter emits SARIF 2.1.0, the interchange format GitHub
code scanning ingests: one ``run``, one ``result`` per violation,
baselined findings included with an ``external`` suppression so they
render as reviewed rather than vanishing.  Its shape is locked by a
schema test exactly like the JSON reporter's.
"""

from __future__ import annotations

import json
from collections import Counter

from .runner import LintResult, all_rule_classes

__all__ = ["render_text", "render_json", "render_sarif", "REPORT_VERSION", "SARIF_VERSION"]

REPORT_VERSION = 2

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """The human reporter: one line per violation + a summary."""
    lines = [violation.render() for violation in result.violations]
    if verbose and result.baselined:
        lines.append("")
        lines.append(f"baselined ({len(result.baselined)} grandfathered):")
        lines.extend(f"  {violation.render()}" for violation in result.baselined)
    if verbose and result.stale_baseline:
        lines.append("")
        lines.append(
            f"stale baseline entries ({len(result.stale_baseline)} matched "
            "nothing — prune with --update-baseline):"
        )
        lines.extend(
            f"  {code} {path} {qualname}: {message}"
            for code, path, qualname, message in result.stale_baseline
        )
    by_code = Counter(violation.code for violation in result.violations)
    summary = (
        f"{len(result.violations)} violation(s) in {result.files_checked} "
        f"file(s) [{result.suppressed} pragma-suppressed, "
        f"{len(result.baselined)} baselined]"
    )
    if by_code:
        breakdown = ", ".join(
            f"{code}: {count}" for code, count in sorted(by_code.items())
        )
        summary += f" — {breakdown}"
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The JSON reporter (schema locked by the framework tests)."""
    payload = {
        "version": REPORT_VERSION,
        "summary": {
            "files_checked": result.files_checked,
            "files_parsed": result.files_parsed,
            "cache_hits": result.cache_hits,
            "violations": len(result.violations),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "stale_baseline": len(result.stale_baseline),
            "exit_code": result.exit_code,
        },
        "violations": [v.to_json() for v in result.violations],
        "baselined": [v.to_json() for v in result.baselined],
        "stale_baseline": [list(key) for key in result.stale_baseline],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_rules(result: LintResult) -> list[dict[str, object]]:
    """``tool.driver.rules`` descriptors for every code that fired."""
    fired = sorted(
        {v.code for v in result.violations}
        | {v.code for v in result.baselined}
    )
    registry = all_rule_classes()
    descriptors: list[dict[str, object]] = []
    for code in fired:
        rule = registry.get(code)
        descriptors.append(
            {
                "id": code,
                "name": getattr(rule, "name", "parse-error"),
                "shortDescription": {
                    "text": getattr(
                        rule, "description", "file could not be parsed"
                    )
                },
            }
        )
    return descriptors


def _sarif_result(violation, *, suppressed: bool) -> dict[str, object]:
    record: dict[str, object] = {
        "ruleId": violation.code,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": violation.path},
                    "region": {
                        "startLine": max(violation.line, 1),
                        "startColumn": violation.column + 1,
                    },
                },
                "logicalLocations": [
                    {"fullyQualifiedName": violation.qualname}
                ],
            }
        ],
    }
    if suppressed:
        record["suppressions"] = [
            {"kind": "external", "justification": "baselined"}
        ]
    return record


def render_sarif(result: LintResult) -> str:
    """The SARIF 2.1.0 reporter (schema locked by the framework tests).

    Actionable violations come first, then baselined ones (carrying a
    suppression), each group in the result's deterministic order.
    """
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/repro/repro"
                            "/blob/main/docs/determinism.md"
                        ),
                        "rules": _sarif_rules(result),
                    }
                },
                "results": [
                    _sarif_result(v, suppressed=False)
                    for v in result.violations
                ]
                + [
                    _sarif_result(v, suppressed=True)
                    for v in result.baselined
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
