"""Reporters: human-readable text and machine-readable JSON.

The JSON schema (``version`` / ``summary`` / ``violations`` /
``baselined``) is part of the tool's contract — CI annotations and the
framework tests both consume it — so changes must bump ``version``.
"""

from __future__ import annotations

import json
from collections import Counter

from .runner import LintResult

__all__ = ["render_text", "render_json", "REPORT_VERSION"]

REPORT_VERSION = 1


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """The human reporter: one line per violation + a summary."""
    lines = [violation.render() for violation in result.violations]
    if verbose and result.baselined:
        lines.append("")
        lines.append(f"baselined ({len(result.baselined)} grandfathered):")
        lines.extend(f"  {violation.render()}" for violation in result.baselined)
    by_code = Counter(violation.code for violation in result.violations)
    summary = (
        f"{len(result.violations)} violation(s) in {result.files_checked} "
        f"file(s) [{result.suppressed} pragma-suppressed, "
        f"{len(result.baselined)} baselined]"
    )
    if by_code:
        breakdown = ", ".join(
            f"{code}: {count}" for code, count in sorted(by_code.items())
        )
        summary += f" — {breakdown}"
    if lines:
        lines.append("")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The JSON reporter (schema locked by the framework tests)."""
    payload = {
        "version": REPORT_VERSION,
        "summary": {
            "files_checked": result.files_checked,
            "violations": len(result.violations),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "exit_code": result.exit_code,
        },
        "violations": [v.to_json() for v in result.violations],
        "baselined": [v.to_json() for v in result.baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
