"""Baseline file: grandfathered violations that keep the gate green.

A baseline lets the linter gate CI from day one: pre-existing
violations that are *justified* (deadline enforcement needs a clock;
a streaming trace file cannot be written atomically) are recorded once
with an explanation, and only **new** violations fail the build.

Entries match violations by :meth:`~.violations.Violation.key`
(code, path, enclosing qualname, message) — no line numbers, so the
baseline survives unrelated edits.  Every entry must carry a
non-empty ``justification``; an unexplained suppression is just a
hidden bug.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Iterable, Sequence

from .._atomic import atomic_write_json
from ..exceptions import ValidationError
from .violations import Violation

__all__ = ["Baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


class Baseline:
    """An in-memory baseline: justified violation keys."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str, str, str], str] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[tuple[str, str, str, str]]:
        """All entry keys ``(code, path, qualname, message)``, sorted."""
        return sorted(self._entries)

    def items(self) -> list[tuple[tuple[str, str, str, str], str]]:
        """All ``(key, justification)`` pairs, sorted by key."""
        return sorted(self._entries.items())

    # ------------------------------------------------------------------
    def add(self, violation: Violation, justification: str) -> None:
        """Grandfather *violation* with a mandatory *justification*."""
        if not justification or not justification.strip():
            raise ValidationError(
                f"baseline entry for {violation.code} at {violation.path} "
                "requires a non-empty justification"
            )
        self._entries[violation.key()] = justification.strip()

    def contains(self, violation: Violation) -> bool:
        return violation.key() in self._entries

    def justification_for(self, violation: Violation) -> str:
        """The recorded justification (ValidationError when absent)."""
        try:
            return self._entries[violation.key()]
        except KeyError:
            raise ValidationError(
                f"no baseline entry for {violation.code} at {violation.path}"
            ) from None

    def split(
        self, violations: Iterable[Violation]
    ) -> tuple[list[Violation], list[Violation]]:
        """Partition into (new, grandfathered)."""
        fresh: list[Violation] = []
        known: list[Violation] = []
        for violation in violations:
            (known if self.contains(violation) else fresh).append(violation)
        return fresh, known

    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, object]:
        entries = [
            {
                "code": code,
                "path": path,
                "qualname": qualname,
                "message": message,
                "justification": justification,
            }
            for (code, path, qualname, message), justification in sorted(
                self._entries.items()
            )
        ]
        return {"version": BASELINE_VERSION, "entries": entries}

    @classmethod
    def from_json(cls, payload: object) -> "Baseline":
        if not isinstance(payload, dict):
            raise ValidationError("baseline file must contain a JSON object")
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValidationError(
                f"unsupported baseline version {version!r} "
                f"(expected {BASELINE_VERSION})"
            )
        entries = payload.get("entries")
        if not isinstance(entries, list):
            raise ValidationError("baseline 'entries' must be a list")
        baseline = cls()
        for entry in entries:
            if not isinstance(entry, dict):
                raise ValidationError("each baseline entry must be an object")
            try:
                violation = Violation(
                    path=str(entry["path"]),
                    line=0,
                    column=0,
                    code=str(entry["code"]),
                    message=str(entry["message"]),
                    qualname=str(entry.get("qualname", "<module>")),
                )
                justification = str(entry["justification"])
            except KeyError as exc:
                raise ValidationError(
                    f"baseline entry missing required field {exc}"
                ) from None
            baseline.add(violation, justification)
        return baseline

    # ------------------------------------------------------------------
    def save(self, path: Path | str) -> Path:
        """Atomically write the baseline (sorted, stable diffs)."""
        return atomic_write_json(Path(path), self.to_json())

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise ValidationError(f"baseline file not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise ValidationError(f"baseline file {path} is not valid JSON: {exc}") from None
        return cls.from_json(payload)

    @classmethod
    def from_violations(
        cls, violations: Sequence[Violation], justification: str
    ) -> "Baseline":
        """Baseline every violation with one shared justification.

        Used by ``--update-baseline`` for bulk grandfathering; refine
        the per-entry justifications by editing the file afterwards.
        """
        baseline = cls()
        for violation in violations:
            baseline.add(violation, justification)
        return baseline
