"""Source-file loading and path normalization for the linter.

Paths are normalized so rule allowlists and baseline entries are
machine-independent: a file inside a ``repro`` package tree is named
from that root (``repro/grid/parallel.py``) regardless of where the
checkout lives; anything else keeps its walk-relative posix path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path

__all__ = ["ModuleSource", "normalize_path", "iter_python_files"]


def normalize_path(path: Path) -> str:
    """Stable posix path: rooted at the innermost ``repro`` component."""
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.as_posix()


@dataclass
class ModuleSource:
    """One parsed python module handed to every rule."""

    path: str
    text: str
    tree: ast.Module

    @classmethod
    def parse(cls, file_path: Path) -> "ModuleSource":
        text = file_path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(file_path))
        return cls(path=normalize_path(file_path), text=text, tree=tree)

    @property
    def module_name(self) -> str:
        """Dotted module name (``repro.grid.parallel``) best-effort."""
        trimmed = self.path.removesuffix(".py").removesuffix("/__init__")
        return trimmed.replace("/", ".")

    def matches(self, patterns: tuple[str, ...]) -> bool:
        """Whether the normalized path matches any fnmatch pattern."""
        return any(fnmatch(self.path, pattern) for pattern in patterns)


def iter_python_files(roots: list[Path]) -> list[Path]:
    """All ``.py`` files under *roots* (files pass through), sorted.

    Hidden directories and ``__pycache__`` are skipped so a repo root
    can be linted directly.
    """
    seen: set[Path] = set()
    for root in roots:
        if root.is_file():
            if root.suffix == ".py":
                seen.add(root)
            continue
        for candidate in root.rglob("*.py"):
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in candidate.relative_to(root).parts
            ):
                continue
            seen.add(candidate)
    return sorted(seen)
