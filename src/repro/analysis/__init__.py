"""repro.analysis — the project's own static-analysis pass (repro-lint).

An AST-based lint framework purpose-built for this codebase's
reproducibility invariants: seeded RNG only, no stray wall-clock
reads, atomic writes, registry-resolved engines, registered event
types, centralized multiprocessing, no float equality in the math,
no mutable defaults in public APIs.  See ``docs/determinism.md`` for
the full catalogue and rationale.

Run it as ``python -m repro.analysis src/`` or via the ``repro-lint``
console script; ``--format json`` for machines, ``--baseline`` to keep
a gate green over grandfathered findings.
"""

from .baseline import Baseline
from .config import LintConfig
from .graph import FactsCache, FileFacts, ProjectGraph, extract_facts
from .pragmas import PragmaIndex
from .project_rules import ALL_PROJECT_RULES, ProjectRule
from .report import render_json, render_sarif, render_text
from .rules import ALL_RULES, Rule, RuleVisitor, rules_by_code
from .runner import (
    LintResult,
    all_rule_classes,
    lint_paths,
    lint_source,
    select_rules,
)
from .sources import ModuleSource, iter_python_files, normalize_path
from .violations import Violation

__all__ = [
    "ALL_PROJECT_RULES",
    "ALL_RULES",
    "Baseline",
    "FactsCache",
    "FileFacts",
    "LintConfig",
    "LintResult",
    "ModuleSource",
    "PragmaIndex",
    "ProjectGraph",
    "ProjectRule",
    "Rule",
    "RuleVisitor",
    "Violation",
    "all_rule_classes",
    "extract_facts",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "normalize_path",
    "render_json",
    "render_sarif",
    "render_text",
    "rules_by_code",
    "select_rules",
]
