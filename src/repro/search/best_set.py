"""Bounded tracker of the best (most negative) projections found so far.

Both searchers maintain the paper's ``BestSet``: the ``m`` cubes with
the most negative sparsity coefficients seen anywhere during the run
(Figures 2 and 3).  Two policy knobs mirror the paper:

* **non-empty filter** — Table 1's quality column averages the best 20
  *non-empty* projections, and §2.4 argues empty cubes are useless for
  outlier reporting (they cover nobody), so empty cubes are skipped by
  default;
* **threshold mode** — the arrhythmia experiment (§3.1) instead keeps
  *every* projection with coefficient ≤ −3; pass ``threshold=-3.0`` and
  ``max_size=None`` for that behaviour.

Duplicates (the same cube offered twice, e.g. by the GA across
generations) are kept once.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from .._validation import check_positive_int
from ..core.results import ScoredProjection
from ..core.subspace import Subspace
from ..exceptions import ValidationError

__all__ = ["BestProjectionSet"]


class BestProjectionSet:
    """Keeps the top-m most-negative-coefficient projections.

    Parameters
    ----------
    max_size:
        The paper's ``m``; ``None`` keeps everything that passes the
        filters (requires a *threshold* so the set stays bounded).
    require_nonempty:
        Skip cubes with ``n(D) = 0`` (default True, per Table 1/§2.4).
    threshold:
        If set, only cubes with ``coefficient <= threshold`` are kept.
    """

    def __init__(
        self,
        max_size: int | None = 20,
        *,
        require_nonempty: bool = True,
        threshold: float | None = None,
    ):
        if max_size is None and threshold is None:
            raise ValidationError(
                "an unbounded BestProjectionSet needs a threshold to stay finite"
            )
        if max_size is not None:
            max_size = check_positive_int(max_size, "max_size")
        self.max_size = max_size
        self.require_nonempty = bool(require_nonempty)
        self.threshold = None if threshold is None else float(threshold)
        # Max-heap on coefficient (via negation) so the *worst* kept
        # entry is at the root and can be evicted in O(log m).
        self._heap: list[tuple[float, int, ScoredProjection]] = []
        self._seen: dict[tuple, float] = {}
        self._counter = 0
        self.n_offers = 0
        self.n_accepted = 0

    # ------------------------------------------------------------------
    def offer(self, projection: ScoredProjection) -> bool:
        """Consider *projection* for inclusion; return True if kept.

        A projection displaced later by better offers still counts as
        accepted here.
        """
        self.n_offers += 1
        if self.require_nonempty and projection.is_empty:
            return False
        if self.threshold is not None and projection.coefficient > self.threshold:
            return False
        key = (projection.subspace.dims, projection.subspace.ranges)
        if key in self._seen:
            return False
        if self.max_size is not None and len(self._heap) >= self.max_size:
            worst_negated, _, worst = self._heap[0]
            if projection.coefficient >= -worst_negated:
                return False
            heapq.heappop(self._heap)
            del self._seen[(worst.subspace.dims, worst.subspace.ranges)]
        self._counter += 1
        heapq.heappush(
            self._heap, (-projection.coefficient, -self._counter, projection)
        )
        self._seen[key] = projection.coefficient
        self.n_accepted += 1
        return True

    def offer_cube(self, subspace: Subspace, count: int, coefficient: float) -> bool:
        """Convenience wrapper building the :class:`ScoredProjection`."""
        return self.offer(ScoredProjection(subspace, count, coefficient))

    def would_accept(self, coefficient: float) -> bool:
        """Cheap pre-check: could a cube with this coefficient get in?

        Used by searchers to skip expensive work (e.g. re-offering
        duplicates) when the coefficient cannot compete.  A True answer
        is necessary but not sufficient (the cube may be a duplicate or
        empty).
        """
        if self.threshold is not None and coefficient > self.threshold:
            return False
        if self.max_size is None or len(self._heap) < self.max_size:
            return True
        return coefficient < -self._heap[0][0]

    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """JSON-compatible snapshot for checkpointing.

        Captures the kept entries *with their insertion counters* plus
        the offer statistics, so a restored set reproduces the original
        bit-for-bit — including the arrival-order tie-breaks between
        equal coefficients and the ``n_accepted``-driven stall counter
        of the GA.
        """
        return {
            "entries": [
                {
                    "dims": list(proj.subspace.dims),
                    "ranges": list(proj.subspace.ranges),
                    "count": proj.count,
                    "coefficient": proj.coefficient,
                    "order": -neg_order,
                }
                for _, neg_order, proj in self._heap
            ],
            "counter": self._counter,
            "n_offers": self.n_offers,
            "n_accepted": self.n_accepted,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`to_state` snapshot into this (fresh) set."""
        if self._heap:
            raise ValidationError(
                "restore_state requires an empty BestProjectionSet"
            )
        for entry in state["entries"]:
            projection = ScoredProjection(
                Subspace(tuple(entry["dims"]), tuple(entry["ranges"])),
                int(entry["count"]),
                float(entry["coefficient"]),
            )
            heapq.heappush(
                self._heap,
                (-projection.coefficient, -int(entry["order"]), projection),
            )
            self._seen[(projection.subspace.dims, projection.subspace.ranges)] = (
                projection.coefficient
            )
        self._counter = int(state["counter"])
        self.n_offers = int(state["n_offers"])
        self.n_accepted = int(state["n_accepted"])

    # ------------------------------------------------------------------
    def entries(self) -> list[ScoredProjection]:
        """Kept projections, most negative coefficient first."""
        ordered = sorted(self._heap, key=lambda item: (-item[0], -item[1]))
        return [entry for _, _, entry in ordered]

    def best(self) -> ScoredProjection | None:
        """The single most negative projection, or None if empty."""
        entries = self.entries()
        return entries[0] if entries else None

    def worst_kept_coefficient(self) -> float:
        """Coefficient of the weakest kept entry (+inf when empty)."""
        if not self._heap:
            return float("inf")
        return -self._heap[0][0]

    def mean_coefficient(self) -> float:
        """Mean coefficient over kept entries (Table 1 quality metric)."""
        if not self._heap:
            return float("nan")
        return sum(-c for c, _, _ in self._heap) / len(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[ScoredProjection]:
        return iter(self.entries())

    def __contains__(self, subspace: Subspace) -> bool:
        return (subspace.dims, subspace.ranges) in self._seen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BestProjectionSet(size={len(self)}/{self.max_size}, "
            f"threshold={self.threshold}, best="
            f"{self.best().coefficient if self._heap else None})"
        )
