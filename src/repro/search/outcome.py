"""Common return type for projection searchers."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from ..core.results import ScoredProjection
from ..run.cancel import check_stop_reason

__all__ = ["SearchOutcome", "GenerationRecord"]


@dataclass(frozen=True, slots=True)
class GenerationRecord:
    """One generation's snapshot (GA instrumentation).

    Collected when ``EvolutionaryConfig.track_history`` is on; the
    convergence-curve ablation benchmark is built from these.

    Attributes
    ----------
    restart, generation:
        Which population and which of its generations this snapshot is.
    best_coefficient:
        Most negative coefficient in the shared best set so far.
    best_set_size:
        Entries currently held by the best set.
    population_best:
        Best (most negative) fitness within this generation's
        population (+inf if every string is infeasible).
    n_feasible:
        How many strings of the population encode a k-dimensional cube.
    convergence:
        Modal-solution share of the population (the string-mode
        convergence statistic).
    """

    restart: int
    generation: int
    best_coefficient: float
    best_set_size: int
    population_best: float
    n_feasible: int
    convergence: float


@dataclass(frozen=True)
class SearchOutcome:
    """What a projection search produced.

    Attributes
    ----------
    projections:
        Mined cubes, most negative sparsity coefficient first.
    completed:
        False when the search stopped early (time budget / evaluation
        cap / cancellation) — the brute-force analogue of the paper's
        musk run that "did not terminate in a reasonable amount of
        time".
    stats:
        Search metadata: elapsed seconds, cube evaluations, generations
        (GA only), search-space size (brute force only), etc.
    history:
        Per-generation :class:`GenerationRecord` snapshots (empty unless
        the GA ran with ``track_history=True``).
    stopped_reason:
        *Why* the search returned — one of
        :data:`~repro.run.cancel.STOP_REASONS`
        (``converged | generation_cap | deadline | evaluation_cap |
        cancelled``).  ``converged`` covers every natural terminus: De
        Jong convergence and the stall-generations early stop for the
        GA, exhaustive enumeration for brute force.
    """

    projections: tuple[ScoredProjection, ...]
    completed: bool = True
    stats: Mapping[str, float] = field(default_factory=dict)
    history: tuple[GenerationRecord, ...] = ()
    stopped_reason: str = "converged"

    def __post_init__(self) -> None:
        object.__setattr__(self, "projections", tuple(self.projections))
        object.__setattr__(self, "history", tuple(self.history))
        check_stop_reason(self.stopped_reason)

    @property
    def converged(self) -> bool:
        """Deprecation shim: True iff ``stopped_reason == "converged"``.

        Prefer reading :attr:`stopped_reason` directly — it also
        distinguishes deadline, cancellation and cap exits.
        """
        return self.stopped_reason == "converged"

    @property
    def cancelled(self) -> bool:
        """True when a cooperative cancellation stopped the search."""
        return self.stopped_reason == "cancelled"

    @property
    def best_coefficient(self) -> float:
        """Most negative coefficient found (nan if nothing was mined)."""
        if not self.projections:
            return float("nan")
        return self.projections[0].coefficient

    def mean_coefficient(self, top: int | None = None) -> float:
        """Mean coefficient of the best *top* projections."""
        chosen = self.projections if top is None else self.projections[:top]
        if not chosen:
            return float("nan")
        return sum(p.coefficient for p in chosen) / len(chosen)
