"""Projection search algorithms: brute force (Fig. 2) and evolutionary (Fig. 3)."""

from .best_set import BestProjectionSet
from .brute_force import BruteForceSearch
from .local import HillClimbingSearch, RandomSearch, SimulatedAnnealingSearch

__all__ = [
    "BestProjectionSet",
    "BruteForceSearch",
    "RandomSearch",
    "HillClimbingSearch",
    "SimulatedAnnealingSearch",
]
