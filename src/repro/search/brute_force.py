"""Figure 2: brute-force bottom-up enumeration of k-dimensional cubes.

The algorithm builds candidate cubes level by level — ``R_1`` is the set
of all ``d·φ`` one-dimensional ranges and ``R_{i+1} = R_i ⊕ Q_1``
concatenates each i-dimensional candidate with every range of every
dimension *not already in the cube*.  We make the paper's implicit
dedupe explicit by only ever extending with dimensions strictly greater
than the cube's largest dimension, so each of the ``C(d,k)·φ^k`` cubes
is generated exactly once.

Two enumeration strategies produce identical best sets:

* ``depth_first`` (default) — each partial cube's membership mask is
  computed once and reused by all its extensions, and the final level
  is scored with a single vectorized ``bincount`` per dimension.
* ``level_batch`` — the paper's literal breadth-first ``R_{i+1} = R_i ⊕
  Q_1``: every level is evaluated through the counter's batched
  AND/popcount kernel (:meth:`~repro.grid.counter.CubeCounter.
  count_batch`), which shares the common-prefix ANDs across siblings
  and, under a ``process`` :class:`~repro.core.params.CountingBackend`,
  spreads the level across a worker pool.  Candidates are generated and
  offered in the same lexicographic order the DFS visits, so both
  strategies return the same projections.

Cost still explodes combinatorially — that is the paper's point (the
musk dataset's 160 dimensions defeated their brute-force run entirely)
— so a ``max_seconds``/``max_evaluations`` budget lets callers
reproduce the "did not terminate" row gracefully via
``SearchOutcome.completed``.
"""

from __future__ import annotations

import logging
import math
import time
from collections.abc import Mapping

import numpy as np

from .._validation import check_positive_int
from ..engine.context import RunContext
from ..engine.protocol import GeneratorEngine
from ..exceptions import CheckpointError, SearchCancelled, ValidationError
from ..core.results import ScoredProjection
from ..core.subspace import Subspace
from ..grid.counter import CubeCounter
from ..sparsity.coefficient import sparsity_coefficients
from .best_set import BestProjectionSet
from .outcome import SearchOutcome

__all__ = ["BruteForceSearch", "search_space_size"]

logger = logging.getLogger(__name__)


def search_space_size(n_dims: int, dimensionality: int, n_ranges: int) -> int:
    """Number of k-dimensional cubes: ``C(d, k) · φ^k``.

    The paper's example: d=20, k=4, φ=10 gives ~7·10^7 possibilities.
    """
    n_dims = check_positive_int(n_dims, "n_dims")
    dimensionality = check_positive_int(dimensionality, "dimensionality")
    n_ranges = check_positive_int(n_ranges, "n_ranges")
    if dimensionality > n_dims:
        raise ValidationError(
            f"dimensionality ({dimensionality}) cannot exceed n_dims ({n_dims})"
        )
    return math.comb(n_dims, dimensionality) * n_ranges**dimensionality


class BruteForceSearch(GeneratorEngine):
    """Exhaustive cube search (Algorithm *BruteForce*, Figure 2).

    Parameters
    ----------
    counter:
        Cube counting engine over the discretized data.
    dimensionality:
        k — dimensionality of mined projections.
    n_projections:
        m — how many best projections to retain.
    require_nonempty:
        Skip cubes covering zero points (see
        :class:`~repro.search.best_set.BestProjectionSet`).
    threshold:
        Optional sparsity-coefficient cutoff instead of / on top of m.
    max_seconds, max_evaluations:
        Optional budgets; when exhausted the search returns a partial
        outcome with ``completed=False``.
    strategy:
        ``"depth_first"`` (default) or ``"level_batch"`` — see the
        module docstring.  Both return identical projections.
    cancel_token:
        Optional :class:`~repro.run.cancel.CancelToken`; checked at
        level boundaries and between counting chunks, so a flip stops
        the enumeration at a safe point with best-so-far results.
    checkpointer:
        Optional :class:`~repro.run.checkpoint.SearchCheckpointer`.
        Requires ``strategy="level_batch"`` — level boundaries are the
        only points where the breadth-first frontier is an explicit,
        serializable list.  ``run(resume_from=True)`` then continues
        bit-identically to an uninterrupted run.
    """

    def __init__(
        self,
        counter: CubeCounter,
        dimensionality: int,
        n_projections: int | None = 20,
        *,
        require_nonempty: bool = True,
        threshold: float | None = None,
        max_seconds: float | None = None,
        max_evaluations: int | None = None,
        strategy: str = "depth_first",
        cancel_token=None,
        checkpointer=None,
    ):
        if not isinstance(counter, CubeCounter):
            raise ValidationError(
                f"counter must be a CubeCounter, got {type(counter).__name__}"
            )
        self.counter = counter
        self.dimensionality = check_positive_int(dimensionality, "dimensionality")
        if self.dimensionality > counter.n_dims:
            raise ValidationError(
                f"dimensionality ({self.dimensionality}) exceeds data "
                f"dimensionality ({counter.n_dims})"
            )
        if counter.n_ranges < 2:
            raise ValidationError("brute-force search requires a grid with φ >= 2")
        self.n_projections = n_projections
        self.require_nonempty = require_nonempty
        self.threshold = threshold
        self.max_seconds = max_seconds
        self.max_evaluations = (
            None
            if max_evaluations is None
            else check_positive_int(max_evaluations, "max_evaluations")
        )
        if strategy not in ("depth_first", "level_batch"):
            raise ValidationError(
                f"strategy must be 'depth_first' or 'level_batch', got "
                f"{strategy!r}"
            )
        self.strategy = strategy
        if checkpointer is not None and strategy != "level_batch":
            raise ValidationError(
                "brute-force checkpointing requires strategy='level_batch'; "
                "the depth-first recursion has no serializable frontier"
            )
        self.cancel_token = cancel_token
        self.checkpointer = checkpointer

    # ------------------------------------------------------------------
    def _iterate(self, context: RunContext):
        """The enumeration as a generator (see :class:`GeneratorEngine`).

        ``run(resume_from=...)`` drives it to completion.  Under
        ``level_batch`` each step is one level boundary; the depth-first
        recursion has no serializable frontier, so it runs as a single
        step.  A resumed run restores the breadth-first frontier, best
        set and evaluation counter, and its final result is
        bit-identical to the same run never having been interrupted.
        """
        token = context.resolve_token(self.cancel_token)
        checkpointer = context.resolve_checkpointer(self.checkpointer)
        max_seconds = context.merged_budget(self.max_seconds)
        best = BestProjectionSet(
            self.n_projections,
            require_nonempty=self.require_nonempty,
            threshold=self.threshold,
        )
        restored = self._load_resume_state(context.resume_from, checkpointer)
        start = time.perf_counter()
        state = _RunState(
            deadline=None if max_seconds is None else start + max_seconds,
            max_evaluations=self.max_evaluations,
            token=token,
        )
        elapsed_base = 0.0
        start_depth = 1
        start_level = None
        if restored is not None:
            best.restore_state(restored["best_set"])
            state.evaluations = int(restored["evaluations"])
            elapsed_base = float(restored["elapsed_seconds"])
            start_depth = int(restored["depth"])
            start_level = [
                (tuple(dims), tuple(rngs)) for dims, rngs in restored["level"]
            ]
            logger.info(
                "resuming brute-force search at level %d (%d candidates, "
                "%d evaluations done)",
                start_depth, len(start_level), state.evaluations,
            )
        d = self.counter.n_dims
        k = self.dimensionality
        logger.debug(
            "brute force: enumerating up to %d cubes (d=%d, k=%d, phi=%d, %s)",
            search_space_size(d, k, self.counter.n_ranges), d, k,
            self.counter.n_ranges, self.strategy,
        )
        totals = {"elapsed_base": elapsed_base, "start": start}
        self._run = {
            "best": best,
            "state": state,
            "totals": totals,
        }
        context.emit(
            "run_started",
            algorithm="brute_force",
            strategy=self.strategy,
            dimensionality=k,
            n_projections=self.n_projections,
            search_space_size=search_space_size(d, k, self.counter.n_ranges),
            resumed=restored is not None,
        )
        with self.counter.runtime_binding(token, context.sink):
            yield  # prepare boundary: state built, no cubes counted yet
            try:
                if self.strategy == "level_batch":
                    yield from self._run_levels(
                        best, state,
                        start_depth=start_depth, start_level=start_level,
                        totals=totals,
                        checkpointer=checkpointer, context=context,
                    )
                else:
                    all_points = np.ones(self.counter.n_points, dtype=bool)
                    self._extend(Subspace.empty(), all_points, -1, d, k, best, state)
            except SearchCancelled:
                # Cancellation struck inside the counting engine mid-batch;
                # that batch's offers never happened, so the last
                # level-boundary checkpoint remains the exact resume point.
                state.latch("cancelled")

    def _build_outcome(self, context: RunContext) -> SearchOutcome:
        run = self._require_run_state()
        best, state, totals = run["best"], run["state"], run["totals"]
        d, k = self.counter.n_dims, self.dimensionality
        elapsed = totals["elapsed_base"] + (
            time.perf_counter() - totals["start"]
        )
        stopped_reason = state.stop_reason or "converged"
        if state.exhausted:
            logger.warning(
                "brute force stopped early after %d evaluations (%.1fs): %s",
                state.evaluations, elapsed, stopped_reason,
            )
        return SearchOutcome(
            projections=tuple(best.entries()),
            completed=not state.exhausted,
            stats={
                "elapsed_seconds": elapsed,
                "evaluations": state.evaluations,
                "search_space_size": search_space_size(d, k, self.counter.n_ranges),
                "algorithm": "brute_force",
                "strategy": self.strategy,
            },
            stopped_reason=stopped_reason,
        )

    def _mark_abandoned(self, context: RunContext) -> None:
        run = getattr(self, "_run", None)
        if run is not None:
            run["state"].latch("cancelled")

    def _load_resume_state(self, resume_from, checkpointer=None) -> dict | None:
        """Normalize ``resume_from`` into a state dict (or None)."""
        if checkpointer is None:
            checkpointer = self.checkpointer
        if resume_from is None or resume_from is False:
            return None
        if self.strategy != "level_batch":
            raise ValidationError(
                "brute-force resume requires strategy='level_batch'"
            )
        if resume_from is True:
            if checkpointer is None:
                raise CheckpointError(
                    "resume_from=True needs a checkpointer; construct the "
                    "search with checkpointer=..."
                )
            state = checkpointer.load()
        elif isinstance(resume_from, Mapping):
            state = dict(resume_from)
        else:
            raise ValidationError(
                "resume_from must be None, True, or a checkpoint state "
                f"mapping, got {type(resume_from).__name__}"
            )
        if state.get("algorithm") != "brute_force":
            raise CheckpointError(
                "checkpoint was written by a "
                f"{state.get('algorithm', 'unknown')!r} search, not a "
                "brute-force one"
            )
        return state

    def _checkpoint_state(
        self,
        depth: int,
        level: list[tuple[tuple, tuple]],
        best: BestProjectionSet,
        state: "_RunState",
        totals: dict,
    ) -> dict:
        """Full JSON-compatible state at a level boundary."""
        return {
            "algorithm": "brute_force",
            "depth": depth,
            "level": [[list(dims), list(rngs)] for dims, rngs in level],
            "best_set": best.to_state(),
            "evaluations": state.evaluations,
            "elapsed_seconds": totals["elapsed_base"]
            + (time.perf_counter() - totals["start"]),
        }

    # ------------------------------------------------------------------
    def _extend(
        self,
        partial: Subspace,
        mask: np.ndarray,
        max_dim: int,
        n_dims: int,
        k: int,
        best: BestProjectionSet,
        state: "_RunState",
    ) -> None:
        """Depth-first ``R_i ⊕ Q_1`` with canonical dimension ordering."""
        if state.exhausted:
            return
        remaining = k - partial.dimensionality
        # Leave room for the remaining levels: the last usable start
        # dimension is n_dims - remaining.
        for dim in range(max_dim + 1, n_dims - remaining + 1):
            if state.check_budget():
                return
            counts = self.counter.extension_counts(mask, dim)
            if remaining == 1:
                coefficients = sparsity_coefficients(
                    counts, self.counter.n_points, self.counter.n_ranges, k
                )
                state.evaluations += len(counts)
                for rng, (count, coeff) in enumerate(zip(counts, coefficients, strict=True)):
                    best.offer(
                        ScoredProjection(
                            partial.extended(dim, rng), int(count), float(coeff)
                        )
                    )
            else:
                col = self.counter.cells.codes[:, dim]
                for rng in range(self.counter.n_ranges):
                    if counts[rng] == 0 and self.require_nonempty:
                        # Every extension of an empty cube is empty; when
                        # empty cubes cannot be reported we can prune the
                        # whole subtree (counts are monotone under ⊕).
                        continue
                    child_mask = mask & (col == rng)
                    self._extend(
                        partial.extended(dim, rng),
                        child_mask,
                        dim,
                        n_dims,
                        k,
                        best,
                        state,
                    )
                    if state.exhausted:
                        return


    # ------------------------------------------------------------------
    def _run_levels(
        self,
        best: BestProjectionSet,
        state: "_RunState",
        *,
        start_depth: int = 1,
        start_level: list[tuple[tuple, tuple]] | None = None,
        totals: dict | None = None,
        checkpointer=None,
        context: RunContext | None = None,
    ):
        """Breadth-first ``R_{i+1} = R_i ⊕ Q_1`` over batched counts.

        Each level's candidates go through ``count_batch`` in
        deterministic chunks; with ``require_nonempty`` the empty cubes
        are pruned before extension (counts are monotone under ⊕ —
        the same subtree pruning the DFS applies).  Generation order is
        lexicographic, matching the DFS visit order exactly.

        A generator yielding at the top of the depth loop — the **safe
        boundary**: the frontier is an explicit list, the best set has
        absorbed every completed level, and nothing is half-counted.
        The boundary snapshot is taken *there*; a budget/cancellation
        exit mid-level saves that snapshot, so a resumed run redoes the
        partial level from scratch and lands bit-identically on the
        uninterrupted result.
        """
        counter = self.counter
        if checkpointer is None:
            checkpointer = self.checkpointer

        def emit(type_: str, **payload) -> None:
            if context is not None:
                context.emit(type_, **payload)

        d, k, phi = counter.n_dims, self.dimensionality, counter.n_ranges
        chunk = max(1024, counter.backend.chunk_size)
        level = start_level if start_level is not None else [((), ())]
        totals = totals or {"elapsed_base": 0.0, "start": time.perf_counter()}
        for depth in range(start_depth, k + 1):
            # ---- safe boundary: level `depth` not yet generated ----
            yield
            boundary_payload = None
            if checkpointer is not None:
                boundary_payload = self._checkpoint_state(
                    depth, level, best, state, totals
                )
                if checkpointer.maybe_save(depth, lambda: boundary_payload):
                    emit(
                        "checkpoint_written",
                        boundary=depth, trigger="interval",
                    )
            if state.check_boundary():
                if boundary_payload is not None:
                    checkpointer.save(boundary_payload)
                    emit(
                        "checkpoint_written",
                        boundary=depth, trigger=state.stop_reason or "stopped",
                    )
                return
            remaining = k - depth  # levels still to add after this one
            children: list[tuple[tuple, tuple]] = []
            for dims, rngs in level:
                lo = dims[-1] + 1 if dims else 0
                # Leave room for the remaining levels, as in the DFS.
                for dim in range(lo, d - remaining):
                    for rng in range(phi):
                        children.append((dims + (dim,), rngs + (rng,)))
            if depth == k:
                self._score_leaves(children, best, state, chunk)
                if state.exhausted and boundary_payload is not None:
                    checkpointer.save(boundary_payload)
                    emit(
                        "checkpoint_written",
                        boundary=depth, trigger=state.stop_reason or "stopped",
                    )
                emit(
                    "level_end",
                    depth=depth,
                    n_candidates=len(children),
                    n_survivors=0,
                    evaluations=state.evaluations,
                    best_set_size=len(best),
                )
                return
            if self.require_nonempty:
                survivors: list[tuple[tuple, tuple]] = []
                for lo in range(0, len(children), chunk):
                    if state.check_budget():
                        if boundary_payload is not None:
                            checkpointer.save(boundary_payload)
                            emit(
                                "checkpoint_written",
                                boundary=depth,
                                trigger=state.stop_reason or "stopped",
                            )
                        return
                    block = children[lo : lo + chunk]
                    counts = counter.count_batch(
                        [Subspace(dm, rg) for dm, rg in block]
                    )
                    survivors.extend(
                        child for child, count in zip(block, counts, strict=True) if count > 0
                    )
                level = survivors
            else:
                level = children
            emit(
                "level_end",
                depth=depth,
                n_candidates=len(children),
                n_survivors=len(level),
                evaluations=state.evaluations,
                best_set_size=len(best),
            )

    def _score_leaves(
        self,
        leaves: list[tuple[tuple, tuple]],
        best: BestProjectionSet,
        state: "_RunState",
        chunk: int,
    ) -> None:
        """Score the final level in batches, offering in generation order."""
        counter = self.counter
        n, phi, k = counter.n_points, counter.n_ranges, self.dimensionality
        for lo in range(0, len(leaves), chunk):
            if state.check_budget():
                return
            block = leaves[lo : lo + chunk]
            subspaces = [Subspace(dm, rg) for dm, rg in block]
            counts = counter.count_batch(subspaces)
            coefficients = sparsity_coefficients(counts, n, phi, k)
            state.evaluations += len(block)
            for subspace, count, coefficient in zip(
                subspaces, counts, coefficients, strict=True
            ):
                best.offer(
                    ScoredProjection(subspace, int(count), float(coefficient))
                )


class _RunState:
    """Mutable budget/cancellation bookkeeping shared across the recursion."""

    def __init__(
        self,
        deadline: float | None,
        max_evaluations: int | None,
        token=None,
    ):
        self.deadline = deadline
        self.max_evaluations = max_evaluations
        self.token = token
        self.evaluations = 0
        self.exhausted = False
        self.stop_reason: str | None = None
        self._checks = 0

    def latch(self, reason: str) -> bool:
        """Record why the search stopped early; first cause wins."""
        self.exhausted = True
        if self.stop_reason is None:
            self.stop_reason = reason
        return True

    def check_budget(self) -> bool:
        """Return True (and latch ``exhausted``) once any budget is spent.

        Reads the token's raw flag rather than :meth:`~repro.run.cancel.
        CancelToken.poll` — chunk-granularity checks must not consume
        the boundary budget of an injected
        :class:`~repro.run.cancel.CancelAfterBoundaries` token.
        """
        if self.exhausted:
            return True
        if self.token is not None and self.token.cancelled:
            return self.latch("cancelled")
        if self.max_evaluations is not None and self.evaluations >= self.max_evaluations:
            return self.latch("evaluation_cap")
        self._checks += 1
        # The clock is comparatively expensive; sample it.
        if self.deadline is not None and self._checks % 64 == 0:
            if time.perf_counter() >= self.deadline:
                return self.latch("deadline")
        return False

    def check_boundary(self) -> bool:
        """Budget check at a safe boundary; *polls* the token.

        ``poll()`` is the chaos-injection seam: each boundary consumes
        one unit of a ``CancelAfterBoundaries`` budget, and the clock is
        read unsampled (boundaries are rare).
        """
        if self.exhausted:
            return True
        if self.token is not None and self.token.poll():
            return self.latch("cancelled")
        if self.max_evaluations is not None and self.evaluations >= self.max_evaluations:
            return self.latch("evaluation_cap")
        if self.deadline is not None and time.perf_counter() >= self.deadline:
            return self.latch("deadline")
        return False
