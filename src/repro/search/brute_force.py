"""Figure 2: brute-force bottom-up enumeration of k-dimensional cubes.

The algorithm builds candidate cubes level by level — ``R_1`` is the set
of all ``d·φ`` one-dimensional ranges and ``R_{i+1} = R_i ⊕ Q_1``
concatenates each i-dimensional candidate with every range of every
dimension *not already in the cube*.  We make the paper's implicit
dedupe explicit by only ever extending with dimensions strictly greater
than the cube's largest dimension, so each of the ``C(d,k)·φ^k`` cubes
is generated exactly once.

Two enumeration strategies produce identical best sets:

* ``depth_first`` (default) — each partial cube's membership mask is
  computed once and reused by all its extensions, and the final level
  is scored with a single vectorized ``bincount`` per dimension.
* ``level_batch`` — the paper's literal breadth-first ``R_{i+1} = R_i ⊕
  Q_1``: every level is evaluated through the counter's batched
  AND/popcount kernel (:meth:`~repro.grid.counter.CubeCounter.
  count_batch`), which shares the common-prefix ANDs across siblings
  and, under a ``process`` :class:`~repro.core.params.CountingBackend`,
  spreads the level across a worker pool.  Candidates are generated and
  offered in the same lexicographic order the DFS visits, so both
  strategies return the same projections.

Cost still explodes combinatorially — that is the paper's point (the
musk dataset's 160 dimensions defeated their brute-force run entirely)
— so a ``max_seconds``/``max_evaluations`` budget lets callers
reproduce the "did not terminate" row gracefully via
``SearchOutcome.completed``.
"""

from __future__ import annotations

import logging
import math
import time

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError
from ..core.results import ScoredProjection
from ..core.subspace import Subspace
from ..grid.counter import CubeCounter
from ..sparsity.coefficient import sparsity_coefficients
from .best_set import BestProjectionSet
from .outcome import SearchOutcome

__all__ = ["BruteForceSearch", "search_space_size"]

logger = logging.getLogger(__name__)


def search_space_size(n_dims: int, dimensionality: int, n_ranges: int) -> int:
    """Number of k-dimensional cubes: ``C(d, k) · φ^k``.

    The paper's example: d=20, k=4, φ=10 gives ~7·10^7 possibilities.
    """
    n_dims = check_positive_int(n_dims, "n_dims")
    dimensionality = check_positive_int(dimensionality, "dimensionality")
    n_ranges = check_positive_int(n_ranges, "n_ranges")
    if dimensionality > n_dims:
        raise ValidationError(
            f"dimensionality ({dimensionality}) cannot exceed n_dims ({n_dims})"
        )
    return math.comb(n_dims, dimensionality) * n_ranges**dimensionality


class BruteForceSearch:
    """Exhaustive cube search (Algorithm *BruteForce*, Figure 2).

    Parameters
    ----------
    counter:
        Cube counting engine over the discretized data.
    dimensionality:
        k — dimensionality of mined projections.
    n_projections:
        m — how many best projections to retain.
    require_nonempty:
        Skip cubes covering zero points (see
        :class:`~repro.search.best_set.BestProjectionSet`).
    threshold:
        Optional sparsity-coefficient cutoff instead of / on top of m.
    max_seconds, max_evaluations:
        Optional budgets; when exhausted the search returns a partial
        outcome with ``completed=False``.
    strategy:
        ``"depth_first"`` (default) or ``"level_batch"`` — see the
        module docstring.  Both return identical projections.
    """

    def __init__(
        self,
        counter: CubeCounter,
        dimensionality: int,
        n_projections: int | None = 20,
        *,
        require_nonempty: bool = True,
        threshold: float | None = None,
        max_seconds: float | None = None,
        max_evaluations: int | None = None,
        strategy: str = "depth_first",
    ):
        if not isinstance(counter, CubeCounter):
            raise ValidationError(
                f"counter must be a CubeCounter, got {type(counter).__name__}"
            )
        self.counter = counter
        self.dimensionality = check_positive_int(dimensionality, "dimensionality")
        if self.dimensionality > counter.n_dims:
            raise ValidationError(
                f"dimensionality ({self.dimensionality}) exceeds data "
                f"dimensionality ({counter.n_dims})"
            )
        if counter.n_ranges < 2:
            raise ValidationError("brute-force search requires a grid with φ >= 2")
        self.n_projections = n_projections
        self.require_nonempty = require_nonempty
        self.threshold = threshold
        self.max_seconds = max_seconds
        self.max_evaluations = (
            None
            if max_evaluations is None
            else check_positive_int(max_evaluations, "max_evaluations")
        )
        if strategy not in ("depth_first", "level_batch"):
            raise ValidationError(
                f"strategy must be 'depth_first' or 'level_batch', got "
                f"{strategy!r}"
            )
        self.strategy = strategy

    # ------------------------------------------------------------------
    def run(self) -> SearchOutcome:
        """Enumerate every k-dimensional cube and return the best set."""
        best = BestProjectionSet(
            self.n_projections,
            require_nonempty=self.require_nonempty,
            threshold=self.threshold,
        )
        start = time.perf_counter()
        state = _RunState(
            deadline=None if self.max_seconds is None else start + self.max_seconds,
            max_evaluations=self.max_evaluations,
        )
        d = self.counter.n_dims
        k = self.dimensionality
        logger.debug(
            "brute force: enumerating up to %d cubes (d=%d, k=%d, phi=%d, %s)",
            search_space_size(d, k, self.counter.n_ranges), d, k,
            self.counter.n_ranges, self.strategy,
        )
        if self.strategy == "level_batch":
            self._run_levels(best, state)
        else:
            all_points = np.ones(self.counter.n_points, dtype=bool)
            self._extend(Subspace.empty(), all_points, -1, d, k, best, state)
        elapsed = time.perf_counter() - start
        if state.exhausted:
            logger.warning(
                "brute force stopped early after %d evaluations (%.1fs): "
                "budget exhausted", state.evaluations, elapsed,
            )
        return SearchOutcome(
            projections=tuple(best.entries()),
            completed=not state.exhausted,
            stats={
                "elapsed_seconds": elapsed,
                "evaluations": state.evaluations,
                "search_space_size": search_space_size(d, k, self.counter.n_ranges),
                "algorithm": "brute_force",
                "strategy": self.strategy,
            },
        )

    # ------------------------------------------------------------------
    def _extend(
        self,
        partial: Subspace,
        mask: np.ndarray,
        max_dim: int,
        n_dims: int,
        k: int,
        best: BestProjectionSet,
        state: "_RunState",
    ) -> None:
        """Depth-first ``R_i ⊕ Q_1`` with canonical dimension ordering."""
        if state.exhausted:
            return
        remaining = k - partial.dimensionality
        # Leave room for the remaining levels: the last usable start
        # dimension is n_dims - remaining.
        for dim in range(max_dim + 1, n_dims - remaining + 1):
            if state.check_budget():
                return
            counts = self.counter.extension_counts(mask, dim)
            if remaining == 1:
                coefficients = sparsity_coefficients(
                    counts, self.counter.n_points, self.counter.n_ranges, k
                )
                state.evaluations += len(counts)
                for rng, (count, coeff) in enumerate(zip(counts, coefficients)):
                    best.offer(
                        ScoredProjection(
                            partial.extended(dim, rng), int(count), float(coeff)
                        )
                    )
            else:
                col = self.counter.cells.codes[:, dim]
                for rng in range(self.counter.n_ranges):
                    if counts[rng] == 0 and self.require_nonempty:
                        # Every extension of an empty cube is empty; when
                        # empty cubes cannot be reported we can prune the
                        # whole subtree (counts are monotone under ⊕).
                        continue
                    child_mask = mask & (col == rng)
                    self._extend(
                        partial.extended(dim, rng),
                        child_mask,
                        dim,
                        n_dims,
                        k,
                        best,
                        state,
                    )
                    if state.exhausted:
                        return


    # ------------------------------------------------------------------
    def _run_levels(self, best: BestProjectionSet, state: "_RunState") -> None:
        """Breadth-first ``R_{i+1} = R_i ⊕ Q_1`` over batched counts.

        Each level's candidates go through ``count_batch`` in
        deterministic chunks; with ``require_nonempty`` the empty cubes
        are pruned before extension (counts are monotone under ⊕ —
        the same subtree pruning the DFS applies).  Generation order is
        lexicographic, matching the DFS visit order exactly.
        """
        counter = self.counter
        d, k, phi = counter.n_dims, self.dimensionality, counter.n_ranges
        chunk = max(1024, counter.backend.chunk_size)
        level: list[tuple[tuple, tuple]] = [((), ())]
        for depth in range(1, k + 1):
            remaining = k - depth  # levels still to add after this one
            children: list[tuple[tuple, tuple]] = []
            for dims, rngs in level:
                lo = dims[-1] + 1 if dims else 0
                # Leave room for the remaining levels, as in the DFS.
                for dim in range(lo, d - remaining):
                    for rng in range(phi):
                        children.append((dims + (dim,), rngs + (rng,)))
            if depth == k:
                self._score_leaves(children, best, state, chunk)
                return
            if self.require_nonempty:
                survivors: list[tuple[tuple, tuple]] = []
                for lo in range(0, len(children), chunk):
                    if state.check_budget():
                        return
                    block = children[lo : lo + chunk]
                    counts = counter.count_batch(
                        [Subspace(dm, rg) for dm, rg in block]
                    )
                    survivors.extend(
                        child for child, count in zip(block, counts) if count > 0
                    )
                level = survivors
            else:
                level = children

    def _score_leaves(
        self,
        leaves: list[tuple[tuple, tuple]],
        best: BestProjectionSet,
        state: "_RunState",
        chunk: int,
    ) -> None:
        """Score the final level in batches, offering in generation order."""
        counter = self.counter
        n, phi, k = counter.n_points, counter.n_ranges, self.dimensionality
        for lo in range(0, len(leaves), chunk):
            if state.check_budget():
                return
            block = leaves[lo : lo + chunk]
            subspaces = [Subspace(dm, rg) for dm, rg in block]
            counts = counter.count_batch(subspaces)
            coefficients = sparsity_coefficients(counts, n, phi, k)
            state.evaluations += len(block)
            for subspace, count, coefficient in zip(
                subspaces, counts, coefficients
            ):
                best.offer(
                    ScoredProjection(subspace, int(count), float(coefficient))
                )


class _RunState:
    """Mutable budget bookkeeping shared across the recursion."""

    def __init__(self, deadline: float | None, max_evaluations: int | None):
        self.deadline = deadline
        self.max_evaluations = max_evaluations
        self.evaluations = 0
        self.exhausted = False
        self._checks = 0

    def check_budget(self) -> bool:
        """Return True (and latch ``exhausted``) once any budget is spent."""
        if self.exhausted:
            return True
        if self.max_evaluations is not None and self.evaluations >= self.max_evaluations:
            self.exhausted = True
            return True
        self._checks += 1
        # The clock is comparatively expensive; sample it.
        if self.deadline is not None and self._checks % 64 == 0:
            if time.perf_counter() >= self.deadline:
                self.exhausted = True
                return True
        return False
