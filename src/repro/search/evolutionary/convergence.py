"""Termination criteria: De Jong gene convergence and a sparse-string refinement.

The paper terminates "when the population converged", citing De Jong's
criterion: a *gene* has converged when 95% of the population holds the
same value at that position, and the population has converged when
**every** gene has.

For this problem's encoding, the classic per-gene reading is degenerate
whenever ``k ≪ d``: a random feasible string fixes only k of d genes,
so from the very first generation ~``(1 − k/d)`` of the population
holds ``*`` at every locus and each gene trivially passes the 95% bar.
(With the paper's arrhythmia run — k ≈ 2-3 against d = 279 — a fresh
random population is already "converged".)  We therefore provide two
modes:

* ``mode="genes"`` — the literal De Jong criterion (useful when k is a
  sizable fraction of d, and for ablation);
* ``mode="string"`` — the sparse-string refinement used by default:
  the population has converged when the *modal solution string*
  accounts for the threshold fraction of the population.  In the dense
  case this implies the gene criterion; in the sparse case it captures
  the intent (the population has collapsed onto one projection and
  stops producing novelty).
"""

from __future__ import annotations

from collections import Counter

from ..._validation import check_in_range
from ...exceptions import ValidationError
from .encoding import Solution

__all__ = ["DeJongConvergence", "gene_convergence_profile"]

_MODES = ("string", "genes")


def gene_convergence_profile(solutions: list[Solution]) -> list[float]:
    """Per-gene fraction of the population sharing the modal allele.

    Useful for instrumenting convergence behaviour in benchmarks.
    """
    if not solutions:
        raise ValidationError("cannot measure convergence of an empty population")
    n_dims = solutions[0].n_dims
    if any(s.n_dims != n_dims for s in solutions):
        raise ValidationError("all solutions must have the same gene count")
    p = len(solutions)
    profile = []
    for position in range(n_dims):
        counts = Counter(s.genes[position] for s in solutions)
        profile.append(counts.most_common(1)[0][1] / p)
    return profile


class DeJongConvergence:
    """Convergence predicate for the GA population.

    Parameters
    ----------
    threshold:
        Agreement fraction required (0.95 in De Jong's thesis and the
        paper).
    mode:
        ``"string"`` (default) — modal solution covers *threshold* of
        the population; ``"genes"`` — De Jong's literal per-gene
        criterion (degenerate for k ≪ d, see module docstring).
    """

    def __init__(self, threshold: float = 0.95, mode: str = "string"):
        self.threshold = check_in_range(threshold, "threshold", low=0.5, high=1.0)
        if mode not in _MODES:
            raise ValidationError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode

    def has_converged(self, solutions: list[Solution]) -> bool:
        """True when the population meets the criterion."""
        if self.mode == "genes":
            return all(
                fraction >= self.threshold
                for fraction in gene_convergence_profile(solutions)
            )
        if not solutions:
            raise ValidationError("cannot measure convergence of an empty population")
        counts = Counter(solutions)
        modal_share = counts.most_common(1)[0][1] / len(solutions)
        return modal_share >= self.threshold

    def n_converged_genes(self, solutions: list[Solution]) -> int:
        """How many gene positions currently meet the threshold."""
        return sum(
            fraction >= self.threshold
            for fraction in gene_convergence_profile(solutions)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeJongConvergence(threshold={self.threshold}, mode={self.mode!r})"
