"""Selection operators (Figure 4 and ablation variants).

The paper uses **rank selection** with a roulette wheel: solutions are
ranked by sparsity coefficient (most negative first, rank 1) and the
wheel gives the i-th ranked solution a slice proportional to ``p − r(i)``
where ``p`` is the population size.  Rank selection is preferred over
fitness-proportional sampling because it is "often more stable" — the
coefficient's scale varies wildly across datasets and generations, and
rank selection is invariant to it.

Three extra operators are provided for the selection ablation benchmark:
tournament, fitness-proportional (on shifted coefficients), and uniform
(a no-pressure control).
"""

from __future__ import annotations

import abc

import numpy as np

from ..._validation import check_positive_int, check_rng
from .encoding import Solution

__all__ = [
    "SelectionOperator",
    "RankRouletteSelection",
    "TournamentSelection",
    "FitnessProportionalSelection",
    "UniformSelection",
]


def _ranks_most_negative_first(fitnesses: list[float]) -> np.ndarray:
    """1-based ranks; the most negative fitness gets rank 1.

    Ties break by population position, which keeps runs deterministic
    for a fixed seed.
    """
    order = np.argsort(np.asarray(fitnesses), kind="stable")
    ranks = np.empty(len(fitnesses), dtype=np.int64)
    ranks[order] = np.arange(1, len(fitnesses) + 1)
    return ranks


class SelectionOperator(abc.ABC):
    """Resamples a population of p solutions into a new one of size p."""

    @abc.abstractmethod
    def select(
        self,
        solutions: list[Solution],
        fitnesses: list[float],
        random_state,
    ) -> list[Solution]:
        """Return the selected population (with replacement)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RankRouletteSelection(SelectionOperator):
    """Figure 4: roulette wheel with slice ∝ ``p − r(i)``.

    The worst-ranked solution gets weight 0 and is never selected —
    a literal reading of the paper's die.  With a single-solution
    population the solution passes through unchanged.
    """

    def select(self, solutions, fitnesses, random_state):
        rng = check_rng(random_state)
        p = len(solutions)
        if p <= 1:
            return list(solutions)
        ranks = _ranks_most_negative_first(fitnesses)
        weights = (p - ranks).astype(np.float64)
        total = weights.sum()
        if total <= 0:  # degenerate: p == 1 handled above, so p - r >= 0 sums > 0
            probabilities = np.full(p, 1.0 / p)
        else:
            probabilities = weights / total
        chosen = rng.choice(p, size=p, replace=True, p=probabilities)
        return [solutions[i] for i in chosen]


class TournamentSelection(SelectionOperator):
    """Pick the best of *size* uniformly drawn contenders, p times."""

    def __init__(self, size: int = 2):
        self.size = check_positive_int(size, "size", minimum=2)

    def select(self, solutions, fitnesses, random_state):
        rng = check_rng(random_state)
        p = len(solutions)
        if p <= 1:
            return list(solutions)
        out = []
        fit = np.asarray(fitnesses)
        for _ in range(p):
            contenders = rng.integers(0, p, size=self.size)
            winner = contenders[np.argmin(fit[contenders])]
            out.append(solutions[winner])
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TournamentSelection(size={self.size})"


class FitnessProportionalSelection(SelectionOperator):
    """Classic roulette on shifted fitness (ablation only).

    Sparsity coefficients are negative-is-better and unbounded, so raw
    proportional sampling is ill-defined; weights are taken as
    ``max_fitness − fitness`` (non-negative, best gets the largest
    slice).  This exhibits exactly the instability the paper cites as
    the reason to prefer rank selection.
    """

    def select(self, solutions, fitnesses, random_state):
        rng = check_rng(random_state)
        p = len(solutions)
        if p <= 1:
            return list(solutions)
        fit = np.asarray(fitnesses, dtype=np.float64)
        finite = np.isfinite(fit)
        if not finite.any():
            chosen = rng.integers(0, p, size=p)
            return [solutions[i] for i in chosen]
        ceiling = fit[finite].max()
        weights = np.where(finite, ceiling - fit, 0.0)
        total = weights.sum()
        if total <= 0:
            # All finite solutions tie: sample uniformly among them.
            weights = finite.astype(np.float64)
            total = weights.sum()
        chosen = rng.choice(p, size=p, replace=True, p=weights / total)
        return [solutions[i] for i in chosen]


class UniformSelection(SelectionOperator):
    """No selection pressure at all — the ablation control."""

    def select(self, solutions, fitnesses, random_state):
        rng = check_rng(random_state)
        p = len(solutions)
        chosen = rng.integers(0, p, size=p)
        return [solutions[i] for i in chosen]
