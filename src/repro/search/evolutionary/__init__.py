"""Evolutionary projection search (Figures 3-6 of the paper)."""

from .config import EvolutionaryConfig
from .encoding import Solution, random_solution, WILDCARD_GENE
from .population import FitnessEvaluator, INFEASIBLE_FITNESS
from .selection import (
    RankRouletteSelection,
    SelectionOperator,
    TournamentSelection,
    UniformSelection,
)
from .crossover import (
    CrossoverOperator,
    OptimizedCrossover,
    TwoPointCrossover,
    pair_population,
)
from .mutation import BalancedMutation
from .convergence import DeJongConvergence
from .engine import EvolutionarySearch

__all__ = [
    "EvolutionaryConfig",
    "Solution",
    "random_solution",
    "WILDCARD_GENE",
    "FitnessEvaluator",
    "INFEASIBLE_FITNESS",
    "SelectionOperator",
    "RankRouletteSelection",
    "TournamentSelection",
    "UniformSelection",
    "CrossoverOperator",
    "OptimizedCrossover",
    "TwoPointCrossover",
    "pair_population",
    "BalancedMutation",
    "DeJongConvergence",
    "EvolutionarySearch",
]
