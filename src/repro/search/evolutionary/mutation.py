"""Mutation operator (Figure 6): balanced dimension swaps + range flips.

Two mutation types, each gated by its own coin flip per string per
generation:

* **Type I** (probability ``p1``): a random wildcard position gains a
  random range (1..φ) *and* a random fixed position becomes ``*`` —
  a paired swap, so "the total dimensionality of the projection
  represented by a string remains unchanged by the process of
  mutation".
* **Type II** (probability ``p2``): one fixed position's range is
  re-drawn to a *different* value in 1..φ.

The paper uses ``p1 = p2``.  Both mutations are skipped gracefully when
structurally impossible (no wildcards for Type I with k = d, no fixed
genes on a degenerate string, φ = 1 for Type II).
"""

from __future__ import annotations

from ..._validation import check_probability, check_rng
from .encoding import Solution, WILDCARD_GENE

__all__ = ["BalancedMutation"]


class BalancedMutation:
    """Figure 6's mutation over a whole population.

    Parameters
    ----------
    swap_probability:
        ``p1`` — chance of a Type I dimension swap per string.
    flip_probability:
        ``p2`` — chance of a Type II range flip per string.
    n_ranges:
        φ, the allele count for fixed genes.
    """

    def __init__(
        self,
        swap_probability: float,
        flip_probability: float,
        n_ranges: int,
    ):
        self.swap_probability = check_probability(swap_probability, "swap_probability")
        self.flip_probability = check_probability(flip_probability, "flip_probability")
        if n_ranges < 1:
            raise ValueError(f"n_ranges must be >= 1, got {n_ranges}")
        self.n_ranges = int(n_ranges)

    # ------------------------------------------------------------------
    def mutate(self, solution: Solution, random_state) -> Solution:
        """Return the (possibly) mutated copy of one string."""
        rng = check_rng(random_state)
        genes = list(solution.genes)

        # Type I: swap a wildcard and a fixed position (Q and its complement
        # are taken from the *original* string, as in Figure 6).
        if rng.random() < self.swap_probability:
            wildcards = [i for i, g in enumerate(genes) if g == WILDCARD_GENE]
            fixed = [i for i, g in enumerate(genes) if g != WILDCARD_GENE]
            if wildcards and fixed:
                gain = wildcards[int(rng.integers(len(wildcards)))]
                lose = fixed[int(rng.integers(len(fixed)))]
                genes[gain] = int(rng.integers(self.n_ranges))
                genes[lose] = WILDCARD_GENE

        # Type II: re-draw one fixed range to a different allele.
        if rng.random() < self.flip_probability:
            fixed = [i for i, g in enumerate(genes) if g != WILDCARD_GENE]
            if fixed and self.n_ranges > 1:
                pos = fixed[int(rng.integers(len(fixed)))]
                offset = int(rng.integers(1, self.n_ranges))
                genes[pos] = (genes[pos] + offset) % self.n_ranges

        if genes == list(solution.genes):
            return solution
        return Solution(genes)

    def apply(self, solutions: list[Solution], random_state) -> list[Solution]:
        """Mutate every string in the population independently."""
        rng = check_rng(random_state)
        return [self.mutate(s, rng) for s in solutions]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BalancedMutation(p1={self.swap_probability}, "
            f"p2={self.flip_probability}, phi={self.n_ranges})"
        )
