"""Crossover operators (§2.2 and Figure 5).

Two recombination mechanisms, mirroring the paper's comparison:

* :class:`TwoPointCrossover` — the "unbiased two-point crossover"
  baseline.  Despite the name, the paper describes it as picking a
  single crossover point and "exchanging the segments to the right of
  this point"; we reproduce that literally (and offer the genuinely
  two-point variant as an option).  Children frequently have the wrong
  dimensionality; they stay in the population with infeasible fitness
  and die under selection, which is exactly why this operator performs
  poorly.

* :class:`OptimizedCrossover` — Figure 5.  Positions are classified per
  parent pair: Type I (both ``*``), Type II (neither ``*``; there are
  ``k' <= k`` of them), Type III (exactly one ``*``; ``2(k−k')`` of
  them, disjoint between parents).  The first child ``s`` takes ``*``
  on Type I, the *best of the 2^k' combinations* on Type II (exact
  enumeration — k' is small when mining low-dimensional projections of
  high-dimensional data), and is then extended greedily through Type
  III positions, always adding the (position, value) whose partial cube
  has the most negative sparsity coefficient, until it fixes k genes.
  The second child ``s'`` is the *complementary* string: every position
  is derived from the opposite parent than the one ``s`` used, which
  makes ``s'`` feasible by construction.
"""

from __future__ import annotations

import abc
from itertools import product

from ..._validation import check_positive_int, check_rng
from ...exceptions import ValidationError
from .encoding import Solution, WILDCARD_GENE
from .population import FitnessEvaluator

__all__ = [
    "CrossoverOperator",
    "TwoPointCrossover",
    "OptimizedCrossover",
    "pair_population",
]


def pair_population(solutions: list[Solution], random_state) -> list[tuple[int, int]]:
    """Match solutions pairwise at random (Figure 5's first step).

    Returns index pairs; with an odd population the leftover solution
    is unpaired and passes through crossover unchanged.
    """
    rng = check_rng(random_state)
    order = rng.permutation(len(solutions))
    return [(int(order[i]), int(order[i + 1])) for i in range(0, len(order) - 1, 2)]


class CrossoverOperator(abc.ABC):
    """Recombines two parent strings into two children."""

    @abc.abstractmethod
    def recombine(
        self,
        parent_a: Solution,
        parent_b: Solution,
        evaluator: FitnessEvaluator,
        random_state,
    ) -> tuple[Solution, Solution]:
        """Return the two child strings."""

    def apply(
        self,
        solutions: list[Solution],
        evaluator: FitnessEvaluator,
        random_state,
        crossover_rate: float = 1.0,
    ) -> list[Solution]:
        """Pair the population and recombine each pair in place.

        Mirrors Algorithm *Crossover* (Figure 5): matched parents are
        *replaced* by their children.
        """
        rng = check_rng(random_state)
        out = list(solutions)
        for i, j in pair_population(solutions, rng):
            if crossover_rate < 1.0 and rng.random() >= crossover_rate:
                continue
            out[i], out[j] = self.recombine(out[i], out[j], evaluator, rng)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class TwoPointCrossover(CrossoverOperator):
    """The unbiased segment-exchange baseline.

    Parameters
    ----------
    two_cut_points:
        False (default) reproduces the paper's description — one random
        cut, exchange the right segments.  True exchanges the segment
        *between* two random cuts (textbook two-point crossover);
        offered for the crossover ablation.
    """

    def __init__(self, two_cut_points: bool = False):
        self.two_cut_points = bool(two_cut_points)

    def recombine(self, parent_a, parent_b, evaluator, random_state):
        if parent_a.n_dims != parent_b.n_dims:
            raise ValidationError("parents must have equal gene counts")
        rng = check_rng(random_state)
        d = parent_a.n_dims
        a = list(parent_a.genes)
        b = list(parent_b.genes)
        if self.two_cut_points:
            lo, hi = sorted(int(c) for c in rng.integers(0, d + 1, size=2))
            a[lo:hi], b[lo:hi] = b[lo:hi], a[lo:hi]
        else:
            # Cut after position `cut` (1..d-1); exchange right segments.
            cut = int(rng.integers(1, d)) if d > 1 else 0
            a[cut:], b[cut:] = b[cut:], a[cut:]
        return Solution(a), Solution(b)


class OptimizedCrossover(CrossoverOperator):
    """Figure 5's optimized recombination (exact + greedy + complement).

    Parameters
    ----------
    max_exact_positions:
        Upper bound on k' for the exhaustive ``2^k'`` Type II stage;
        beyond it a sequential greedy assignment is used instead (never
        triggered at the paper's scale, where k' <= k <= 5 or so).
    """

    def __init__(self, max_exact_positions: int = 12):
        self.max_exact_positions = check_positive_int(
            max_exact_positions, "max_exact_positions"
        )

    # ------------------------------------------------------------------
    def recombine(self, parent_a, parent_b, evaluator, random_state):
        if parent_a.n_dims != parent_b.n_dims:
            raise ValidationError("parents must have equal gene counts")
        k = evaluator.dimensionality
        if not (parent_a.is_feasible(k) and parent_b.is_feasible(k)):
            # Only the two-point baseline produces infeasible strings and
            # it never routes them here; pass through defensively.
            return parent_a, parent_b
        rng = check_rng(random_state)
        d = parent_a.n_dims

        type2 = [
            i
            for i in range(d)
            if parent_a.genes[i] != WILDCARD_GENE and parent_b.genes[i] != WILDCARD_GENE
        ]
        type3 = [
            i
            for i in range(d)
            if (parent_a.genes[i] == WILDCARD_GENE)
            != (parent_b.genes[i] == WILDCARD_GENE)
        ]

        # Stage 1 — Type II: best of the 2^k' parent assignments.
        # source[i] remembers which parent child `s` derived gene i from,
        # so the complementary child can invert every derivation.
        genes = [WILDCARD_GENE] * d
        source = [0] * d  # 0 = parent_a, 1 = parent_b; irrelevant on Type I
        if type2:
            assignment = self._best_type2_assignment(
                parent_a, parent_b, type2, evaluator, rng
            )
            for pos, src in zip(type2, assignment, strict=True):
                genes[pos] = (parent_b if src else parent_a).genes[pos]
                source[pos] = src

        # Stage 2 — Type III: greedy extension to k fixed genes.
        candidates = []
        for pos in type3:
            if parent_a.genes[pos] != WILDCARD_GENE:
                candidates.append((pos, parent_a.genes[pos], 0))
            else:
                candidates.append((pos, parent_b.genes[pos], 1))
        chosen = self._greedy_extension(genes, candidates, k - len(type2), evaluator)
        for pos, value, src in chosen:
            genes[pos] = value
            source[pos] = src

        child = Solution(genes)

        # Complementary child: every gene from the opposite parent.
        type3_positions = {pos for pos, _, _ in candidates}
        comp = [WILDCARD_GENE] * d
        for i in range(d):
            other = parent_a if source[i] == 1 else parent_b
            # Genes `s` never touched (unchosen Type III) were implicitly
            # derived from the wildcard parent, so the complement takes
            # the fixed parent's value.
            if genes[i] == WILDCARD_GENE and i in type3_positions:
                fixed_parent = (
                    parent_a if parent_a.genes[i] != WILDCARD_GENE else parent_b
                )
                comp[i] = fixed_parent.genes[i]
            else:
                comp[i] = other.genes[i]
        complementary = Solution(comp)
        return child, complementary

    # ------------------------------------------------------------------
    def _best_type2_assignment(self, parent_a, parent_b, type2, evaluator, rng):
        """Choose, per Type II position, which parent's value to take.

        Returns a tuple of 0/1 source flags aligned with *type2*.
        Positions where both parents agree are forced (either source
        yields the same gene) and excluded from the enumeration, which
        keeps ``2^k'`` at its effective minimum.
        """
        free = [
            pos for pos in type2 if parent_a.genes[pos] != parent_b.genes[pos]
        ]
        forced = {pos: 0 for pos in type2 if pos not in set(free)}
        if not free:
            return tuple(forced.get(pos, 0) for pos in type2)
        if len(free) > self.max_exact_positions:
            choice = self._greedy_type2(parent_a, parent_b, type2, free, evaluator)
        else:
            choice = self._exact_type2(parent_a, parent_b, type2, free, evaluator)
        merged = dict(forced)
        merged.update(choice)
        return tuple(merged[pos] for pos in type2)

    def _exact_type2(self, parent_a, parent_b, type2, free, evaluator):
        """Exhaustive 2^|free| search for the best partial cube."""
        n_dims = parent_a.n_dims
        best_fitness = float("inf")
        best_choice: dict[int, int] = {}
        for bits in product((0, 1), repeat=len(free)):
            genes = [WILDCARD_GENE] * n_dims
            for pos in type2:
                genes[pos] = parent_a.genes[pos]
            for pos, src in zip(free, bits, strict=True):
                genes[pos] = (parent_b if src else parent_a).genes[pos]
            fitness = evaluator.partial_fitness(Solution(genes))
            if fitness < best_fitness:
                best_fitness = fitness
                best_choice = dict(zip(free, bits, strict=True))
        return best_choice

    def _greedy_type2(self, parent_a, parent_b, type2, free, evaluator):
        """Fallback for oversized k': fix free positions one at a time."""
        n_dims = parent_a.n_dims
        genes = [WILDCARD_GENE] * n_dims
        for pos in type2:
            if pos not in set(free):
                genes[pos] = parent_a.genes[pos]
        choice: dict[int, int] = {}
        for pos in free:
            best_src, best_fitness = 0, float("inf")
            for src in (0, 1):
                genes[pos] = (parent_b if src else parent_a).genes[pos]
                fitness = evaluator.partial_fitness(Solution(genes))
                if fitness < best_fitness:
                    best_fitness, best_src = fitness, src
            genes[pos] = (parent_b if best_src else parent_a).genes[pos]
            choice[pos] = best_src
        return choice

    @staticmethod
    def _greedy_extension(genes, candidates, n_to_add, evaluator):
        """Greedy Type III stage: repeatedly add the best (pos, value).

        *genes* is the partial child (mutated-free copy); *candidates*
        are ``(position, value, source_parent)`` triples; exactly
        *n_to_add* of them are chosen.
        """
        if n_to_add <= 0:
            return []
        chosen = []
        working = list(genes)
        available = list(candidates)
        for _ in range(n_to_add):
            best_idx, best_fitness = -1, float("inf")
            for idx, (pos, value, _src) in enumerate(available):
                working[pos] = value
                fitness = evaluator.partial_fitness(Solution(working))
                working[pos] = WILDCARD_GENE
                if fitness < best_fitness:
                    best_fitness, best_idx = fitness, idx
            pos, value, src = available.pop(best_idx)
            working[pos] = value
            chosen.append((pos, value, src))
        return chosen
