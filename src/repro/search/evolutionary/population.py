"""Fitness evaluation for GA solutions.

Fitness of a feasible solution is the sparsity coefficient of the cube
it encodes (more negative = fitter).  A string whose dimensionality
deviates from the run's k — possible only under the two-point crossover
baseline — receives :data:`INFEASIBLE_FITNESS` so that selection drives
it out of the population, exactly as §2.2 prescribes ("assigned very
low fitness values"; low fitness here means a *large* coefficient since
we minimize).

Partial strings (fewer than k fixed genes) arising *inside* the
optimized crossover are scored at their **own** dimensionality — Eq. 1
with that k — because coefficients at different dimensionalities are
not comparable (§1.1 desiderata); the crossover only ever compares
partials of equal dimensionality, so its greedy choices are sound.
"""

from __future__ import annotations

from ...core.results import ScoredProjection
from ...exceptions import ValidationError
from ...grid.counter import CubeCounter
from ...sparsity.coefficient import sparsity_coefficient, sparsity_coefficients
from ..._validation import check_positive_int
from .encoding import Solution

__all__ = ["INFEASIBLE_FITNESS", "FitnessEvaluator"]

#: Fitness assigned to strings of the wrong dimensionality.  +inf makes
#: them strictly worse than any real cube under minimization.
INFEASIBLE_FITNESS = float("inf")


class FitnessEvaluator:
    """Scores solutions against a fixed grid and target dimensionality.

    Parameters
    ----------
    counter:
        Cube counting engine (memoises counts internally).
    dimensionality:
        The run's k; strings of any other dimensionality are infeasible.
    """

    def __init__(self, counter: CubeCounter, dimensionality: int):
        if not isinstance(counter, CubeCounter):
            raise ValidationError(
                f"counter must be a CubeCounter, got {type(counter).__name__}"
            )
        self.counter = counter
        self.dimensionality = check_positive_int(dimensionality, "dimensionality")
        if self.dimensionality > counter.n_dims:
            raise ValidationError(
                f"dimensionality ({self.dimensionality}) exceeds data "
                f"dimensionality ({counter.n_dims})"
            )
        if counter.n_ranges < 2:
            raise ValidationError("fitness evaluation requires a grid with φ >= 2")
        self.n_evaluations = 0

    # ------------------------------------------------------------------
    def fitness(self, solution: Solution) -> float:
        """Sparsity coefficient of the encoded cube; +inf if infeasible."""
        if not solution.is_feasible(self.dimensionality):
            return INFEASIBLE_FITNESS
        return self.partial_fitness(solution)

    def partial_fitness(self, solution: Solution) -> float:
        """Coefficient at the string's *own* dimensionality (crossover use).

        The 0-dimensional all-wildcard string scores 0 (it is the whole
        dataset; neither sparse nor dense).
        """
        k = solution.dimensionality
        if k == 0:
            return 0.0
        self.n_evaluations += 1
        count = self.counter.count(solution.to_subspace())
        return sparsity_coefficient(
            count, self.counter.n_points, self.counter.n_ranges, k
        )

    def score(self, solution: Solution) -> ScoredProjection | None:
        """Full :class:`ScoredProjection` for a feasible string, else None."""
        if not solution.is_feasible(self.dimensionality):
            return None
        subspace = solution.to_subspace()
        self.n_evaluations += 1
        count = self.counter.count(subspace)
        coefficient = sparsity_coefficient(
            count, self.counter.n_points, self.counter.n_ranges, self.dimensionality
        )
        return ScoredProjection(subspace, count, coefficient)

    def score_batch(
        self, solutions: list[Solution]
    ) -> list[ScoredProjection | None]:
        """Score a whole population through one batched count.

        Feasible strings are counted with a single
        :meth:`~repro.grid.counter.CubeCounter.count_batch` call — the
        GA's per-generation hot path — and scored with the vectorized
        Equation 1.  Entry ``i`` is ``None`` exactly when
        :meth:`score` would return ``None`` for ``solutions[i]``, and
        the scored values are identical to the per-solution path.
        """
        results: list[ScoredProjection | None] = [None] * len(solutions)
        indices: list[int] = []
        subspaces = []
        for i, solution in enumerate(solutions):
            if solution.is_feasible(self.dimensionality):
                indices.append(i)
                subspaces.append(solution.to_subspace())
        if not subspaces:
            return results
        counts = self.counter.count_batch(subspaces)
        self.n_evaluations += len(subspaces)
        coefficients = sparsity_coefficients(
            counts, self.counter.n_points, self.counter.n_ranges, self.dimensionality
        )
        for i, subspace, count, coefficient in zip(
            indices, subspaces, counts, coefficients, strict=True
        ):
            results[i] = ScoredProjection(subspace, int(count), float(coefficient))
        return results

    def fitnesses(self, solutions: list[Solution]) -> list[float]:
        """Vector of fitness values for a whole population."""
        return [self.fitness(s) for s in solutions]
