"""Genetic encoding of projection solutions (§2.2, "coding").

A solution is a string of ``d`` genes; gene ``i`` is either a grid range
for dimension ``i`` (an *allele* in ``1..φ``, stored 0-based here) or
the don't-care ``*``.  A solution is **feasible** for a run mining
k-dimensional projections exactly when it fixes k genes — e.g. ``*3*9``
is a feasible solution for k = 2 in 4-dimensional data.

Infeasible strings can exist transiently (the two-point crossover
baseline creates them); they are representable on purpose so the
population dynamics the paper describes — "such solutions are discarded
in subsequent iterations, since they are assigned very low fitness
values" — can be reproduced literally.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..._validation import check_positive_int, check_rng
from ...core.subspace import Subspace, WILDCARD
from ...exceptions import ValidationError

__all__ = ["WILDCARD_GENE", "Solution", "random_solution"]

#: Gene value encoding the paper's ``*`` don't-care.
WILDCARD_GENE = -1


class Solution:
    """An immutable, hashable GA solution string.

    Parameters
    ----------
    genes:
        Sequence of length d; each entry is :data:`WILDCARD_GENE` or a
        0-based grid range.
    """

    __slots__ = ("genes", "_hash")

    def __init__(self, genes: Iterable[int]):
        genes = tuple(int(g) for g in genes)
        if not genes:
            raise ValidationError("a solution must have at least one gene")
        if any(g < WILDCARD_GENE for g in genes):
            raise ValidationError(f"genes must be >= {WILDCARD_GENE}, got {genes}")
        object.__setattr__(self, "genes", genes)
        object.__setattr__(self, "_hash", hash(genes))

    def __setattr__(self, name: str, value) -> None:  # pragma: no cover - guard
        raise AttributeError("Solution is immutable")

    # ------------------------------------------------------------------
    @property
    def n_dims(self) -> int:
        """Total number of genes d."""
        return len(self.genes)

    @property
    def fixed_positions(self) -> tuple[int, ...]:
        """Positions carrying a range (the paper's non-``*`` set R)."""
        return tuple(i for i, g in enumerate(self.genes) if g != WILDCARD_GENE)

    @property
    def wildcard_positions(self) -> tuple[int, ...]:
        """Positions carrying ``*`` (the paper's set Q)."""
        return tuple(i for i, g in enumerate(self.genes) if g == WILDCARD_GENE)

    @property
    def dimensionality(self) -> int:
        """Number of fixed genes — the projection dimensionality."""
        return sum(1 for g in self.genes if g != WILDCARD_GENE)

    def is_feasible(self, dimensionality: int) -> bool:
        """True when the string encodes exactly a k-dimensional cube."""
        return self.dimensionality == dimensionality

    # ------------------------------------------------------------------
    def to_subspace(self) -> Subspace:
        """The cube this string encodes."""
        return Subspace.from_pairs(
            (i, g) for i, g in enumerate(self.genes) if g != WILDCARD_GENE
        )

    @classmethod
    def from_subspace(cls, subspace: Subspace, n_dims: int) -> "Solution":
        """Embed a cube into a string of *n_dims* genes."""
        if subspace.dims and subspace.dims[-1] >= n_dims:
            raise ValidationError(
                f"subspace uses dimension {subspace.dims[-1]} but n_dims={n_dims}"
            )
        genes = [WILDCARD_GENE] * n_dims
        for dim, rng in subspace:
            genes[dim] = rng
        return cls(genes)

    # ------------------------------------------------------------------
    def replace(self, position: int, gene: int) -> "Solution":
        """A new solution with one gene replaced."""
        if not 0 <= position < self.n_dims:
            raise ValidationError(
                f"position must be in [0, {self.n_dims}), got {position}"
            )
        genes = list(self.genes)
        genes[position] = gene
        return Solution(genes)

    def to_string(self) -> str:
        """Paper-style rendering, e.g. ``*3*9`` (1-based ranges)."""
        parts = [WILDCARD if g == WILDCARD_GENE else str(g + 1) for g in self.genes]
        if all(len(p) == 1 for p in parts):
            return "".join(parts)
        return ",".join(parts)

    @classmethod
    def from_string(cls, text: str, n_dims: int | None = None) -> "Solution":
        """Parse a paper-style string (compact or comma-delimited)."""
        text = text.strip()
        if not text:
            raise ValidationError("cannot parse an empty solution string")
        parts = text.split(",") if "," in text else list(text)
        genes = []
        for part in parts:
            part = part.strip()
            if part == WILDCARD:
                genes.append(WILDCARD_GENE)
            else:
                value = int(part)
                if value < 1:
                    raise ValidationError(f"ranges are 1-based, got {value}")
                genes.append(value - 1)
        if n_dims is not None and len(genes) != n_dims:
            raise ValidationError(
                f"string encodes {len(genes)} genes, expected {n_dims}"
            )
        return cls(genes)

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, Solution) and self.genes == other.genes

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self.genes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Solution({self.to_string()!r})"


def random_solution(
    n_dims: int,
    dimensionality: int,
    n_ranges: int,
    random_state=None,
) -> Solution:
    """A uniformly random feasible solution: k random dims, random ranges."""
    n_dims = check_positive_int(n_dims, "n_dims")
    dimensionality = check_positive_int(dimensionality, "dimensionality")
    n_ranges = check_positive_int(n_ranges, "n_ranges")
    if dimensionality > n_dims:
        raise ValidationError(
            f"dimensionality ({dimensionality}) cannot exceed n_dims ({n_dims})"
        )
    rng = check_rng(random_state)
    dims = rng.choice(n_dims, size=dimensionality, replace=False)
    genes = np.full(n_dims, WILDCARD_GENE, dtype=np.int64)
    genes[dims] = rng.integers(0, n_ranges, size=dimensionality)
    return Solution(genes)


def seed_population(
    n_dims: int,
    dimensionality: int,
    n_ranges: int,
    population_size: int,
    random_state=None,
) -> list[Solution]:
    """The paper's "Initial Seed Population of p strings"."""
    rng = check_rng(random_state)
    return [
        random_solution(n_dims, dimensionality, n_ranges, rng)
        for _ in range(check_positive_int(population_size, "population_size"))
    ]
