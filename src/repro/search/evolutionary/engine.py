"""Figure 3: the evolutionary outlier-search main loop.

Seed a population of ``p`` random feasible strings, then iterate
selection → crossover → mutation, folding every feasible solution ever
evaluated into the running ``BestSet`` of the ``m`` most negative
sparsity coefficients.  Terminate on De Jong convergence (or the
generation / wall-clock / stall caps from the config) and report the
best set; §2.3's postprocessing to data points happens in the detector
facade.
"""

from __future__ import annotations

import logging
import time
from collections import Counter
from dataclasses import asdict
from collections.abc import Mapping

from ..._validation import check_positive_int, check_rng
from ...engine.context import RunContext
from ...engine.protocol import GeneratorEngine
from ...exceptions import CheckpointError, SearchCancelled, ValidationError
from ...grid.counter import CubeCounter
from ...run.checkpoint import encode_rng_state
from ..best_set import BestProjectionSet
from ..outcome import GenerationRecord, SearchOutcome
from .config import EvolutionaryConfig
from .convergence import DeJongConvergence
from .crossover import CrossoverOperator, OptimizedCrossover, TwoPointCrossover
from .encoding import Solution, seed_population
from .mutation import BalancedMutation
from .population import FitnessEvaluator
from .selection import RankRouletteSelection, SelectionOperator

__all__ = ["EvolutionarySearch"]

logger = logging.getLogger(__name__)

_CROSSOVER_ALIASES = {
    "optimized": lambda cfg: OptimizedCrossover(cfg.max_exact_positions),
    "two_point": lambda cfg: TwoPointCrossover(),
}


class EvolutionarySearch(GeneratorEngine):
    """Algorithm *EvolutionaryOutlierSearch* (Figure 3).

    Parameters
    ----------
    counter:
        Cube counting engine over the discretized data.
    dimensionality:
        k — dimensionality of mined projections.
    n_projections:
        m — size of the best set to maintain (None allowed only with a
        *threshold*).
    config:
        GA hyper-parameters; defaults are sensible at paper scale.
    crossover:
        ``"optimized"`` (Figure 5, the paper's contribution),
        ``"two_point"`` (the baseline), or any
        :class:`~repro.search.evolutionary.crossover.CrossoverOperator`.
    selection:
        Defaults to the paper's rank-roulette (Figure 4).
    require_nonempty / threshold:
        Best-set policy, see
        :class:`~repro.search.best_set.BestProjectionSet`.
    random_state:
        Seed or numpy Generator for full determinism.
    cancel_token:
        Optional :class:`~repro.run.cancel.CancelToken`; polled at every
        generation boundary (and between parallel counting waves), so a
        flip stops the search at a safe point with best-so-far results.
    checkpointer:
        Optional :class:`~repro.run.checkpoint.SearchCheckpointer`;
        when set, the full GA state (population, RNG stream, best set,
        counters) is persisted atomically at generation boundaries and
        ``run(resume_from=True)`` continues bit-identically to an
        uninterrupted run.
    """

    def __init__(
        self,
        counter: CubeCounter,
        dimensionality: int,
        n_projections: int | None = 20,
        *,
        config: EvolutionaryConfig | None = None,
        crossover: str | CrossoverOperator = "optimized",
        selection: SelectionOperator | None = None,
        require_nonempty: bool = True,
        threshold: float | None = None,
        random_state=None,
        cancel_token=None,
        checkpointer=None,
    ):
        if not isinstance(counter, CubeCounter):
            raise ValidationError(
                f"counter must be a CubeCounter, got {type(counter).__name__}"
            )
        self.counter = counter
        self.dimensionality = check_positive_int(dimensionality, "dimensionality")
        if self.dimensionality > counter.n_dims:
            raise ValidationError(
                f"dimensionality ({self.dimensionality}) exceeds data "
                f"dimensionality ({counter.n_dims})"
            )
        self.n_projections = n_projections
        self.config = config or EvolutionaryConfig()
        if isinstance(crossover, str):
            try:
                self.crossover: CrossoverOperator = _CROSSOVER_ALIASES[crossover](
                    self.config
                )
            except KeyError:
                raise ValidationError(
                    f"unknown crossover {crossover!r}; expected one of "
                    f"{sorted(_CROSSOVER_ALIASES)} or a CrossoverOperator"
                ) from None
        elif isinstance(crossover, CrossoverOperator):
            self.crossover = crossover
        else:
            raise ValidationError(
                f"crossover must be a name or CrossoverOperator, got "
                f"{type(crossover).__name__}"
            )
        self.selection = selection or RankRouletteSelection()
        self.require_nonempty = require_nonempty
        self.threshold = threshold
        self.random_state = random_state
        self.cancel_token = cancel_token
        self.checkpointer = checkpointer

    # ------------------------------------------------------------------
    def _iterate(self, context: RunContext):
        """The GA main loop as a generator (see :class:`GeneratorEngine`).

        ``run(resume_from=...)`` drives this to completion; an external
        driver can instead ``prepare``/``step`` it one generation
        boundary at a time.  A resumed run restores the RNG stream,
        population, best set and every counter from the last generation
        boundary, so its final result is bit-identical to the same run
        never having been interrupted.  Statement order inside the loop
        matches the pre-protocol implementation — the differential
        golden tests lock that down.
        """
        rng = context.rng if context.rng is not None else check_rng(self.random_state)
        cfg = self.config
        token = context.resolve_token(self.cancel_token)
        checkpointer = context.resolve_checkpointer(self.checkpointer)
        max_seconds = context.merged_budget(cfg.max_seconds)
        evaluator = FitnessEvaluator(self.counter, self.dimensionality)
        mutation = BalancedMutation(
            cfg.mutation_swap_probability,
            cfg.mutation_flip_probability,
            self.counter.n_ranges,
        )
        convergence = DeJongConvergence(
            cfg.convergence_threshold, mode=cfg.convergence_mode
        )
        best = BestProjectionSet(
            self.n_projections,
            require_nonempty=self.require_nonempty,
            threshold=self.threshold,
        )

        state = self._load_resume_state(context.resume_from, checkpointer)
        first_restart = 0
        history: list[GenerationRecord] = []
        start = time.perf_counter()
        # Run-wide totals shared with the boundary checkpoints.  The
        # time budget is per process invocation: a resumed run gets the
        # full ``max_seconds`` again (callers with one overall budget —
        # the RunController — pass the *remaining* budget down instead),
        # while ``elapsed_base`` keeps the reported elapsed time
        # cumulative across interruptions.
        totals = {"generations": 0, "converged": 0, "elapsed_base": 0.0,
                  "start": start}
        if state is not None:
            rng.bit_generator.state = state["rng_state"]
            best.restore_state(state["best_set"])
            evaluator.n_evaluations = int(state["evaluations"])
            totals["generations"] = int(state["total_generations"])
            totals["converged"] = int(state["n_converged"])
            totals["elapsed_base"] = float(state["elapsed_seconds"])
            first_restart = int(state["restart"])
            history = [GenerationRecord(**record) for record in state["history"]]
            logger.info(
                "resuming evolutionary search at restart %d, generation %d "
                "(%d evaluations done)",
                first_restart, int(state["generation"]), evaluator.n_evaluations,
            )
        deadline = None if max_seconds is None else start + max_seconds

        self._run = {
            "evaluator": evaluator,
            "best": best,
            "history": history,
            "totals": totals,
            "start": start,
            "stopped_reason": "converged",
        }
        context.emit(
            "run_started",
            algorithm="evolutionary",
            dimensionality=self.dimensionality,
            n_projections=self.n_projections,
            restarts=cfg.restarts,
            resumed=state is not None,
        )
        with self.counter.runtime_binding(token, context.sink):
            yield  # prepare boundary: state built, no search work yet
            stopped_reason = "converged"
            for restart in range(first_restart, cfg.restarts):
                generations, stopped_reason, dejong = yield from (
                    self._run_population(
                        rng, evaluator, mutation, convergence, best, deadline,
                        restart, history, totals, restored=state,
                        token=token, checkpointer=checkpointer, context=context,
                    )
                )
                state = None
                totals["generations"] += generations
                totals["converged"] += int(dejong)
                self._run["stopped_reason"] = stopped_reason
                logger.debug(
                    "restart %d/%d: %d generations, stopped_reason=%s, best "
                    "set %d entries (best %.3f)",
                    restart + 1, cfg.restarts, generations, stopped_reason,
                    len(best),
                    best.best().coefficient if len(best) else float("nan"),
                )
                if stopped_reason == "deadline":
                    logger.warning("evolutionary search hit its time budget")
                    break
                if stopped_reason == "cancelled":
                    logger.warning(
                        "evolutionary search cancelled; returning best-so-far"
                    )
                    break
            self._run["stopped_reason"] = stopped_reason

    def _build_outcome(self, context: RunContext) -> SearchOutcome:
        run = self._require_run_state()
        cfg = self.config
        totals = run["totals"]
        best = run["best"]
        stopped_reason = run["stopped_reason"]
        elapsed = totals["elapsed_base"] + (time.perf_counter() - run["start"])
        return SearchOutcome(
            projections=tuple(best.entries()),
            completed=stopped_reason not in ("deadline", "cancelled"),
            stats={
                "elapsed_seconds": elapsed,
                "generations": totals["generations"],
                "converged": totals["converged"] / cfg.restarts,
                "restarts": cfg.restarts,
                "evaluations": run["evaluator"].n_evaluations,
                "population_size": cfg.population_size,
                "algorithm": f"evolutionary/{type(self.crossover).__name__}",
            },
            history=tuple(run["history"]),
            stopped_reason=stopped_reason,
        )

    def _load_resume_state(self, resume_from, checkpointer=None) -> dict | None:
        """Normalize ``resume_from`` into a state dict (or None)."""
        if checkpointer is None:
            checkpointer = self.checkpointer
        if resume_from is None or resume_from is False:
            return None
        if resume_from is True:
            if checkpointer is None:
                raise CheckpointError(
                    "resume_from=True needs a checkpointer; construct the "
                    "search with checkpointer=..."
                )
            state = checkpointer.load()
        elif isinstance(resume_from, Mapping):
            state = dict(resume_from)
        else:
            raise ValidationError(
                "resume_from must be None, True, or a checkpoint state "
                f"mapping, got {type(resume_from).__name__}"
            )
        if state.get("algorithm") != "evolutionary":
            raise CheckpointError(
                "checkpoint was written by a "
                f"{state.get('algorithm', 'unknown')!r} search, not an "
                "evolutionary one"
            )
        return state

    def _run_population(
        self,
        rng,
        evaluator: FitnessEvaluator,
        mutation: BalancedMutation,
        convergence: DeJongConvergence,
        best: BestProjectionSet,
        deadline: float | None,
        restart: int = 0,
        history: list | None = None,
        totals: dict | None = None,
        restored: dict | None = None,
        token=None,
        checkpointer=None,
        context: RunContext | None = None,
    ):
        """One population until convergence/caps; feeds the shared best set.

        A generator returning ``(generations, stopped_reason,
        dejong_converged)`` via ``yield from``; it yields at the top of
        every ``while`` iteration — the **safe boundary**: the
        population of generation *g* is fully evaluated and no RNG draws
        have happened since.  Checkpoints are written there, the cancel
        token is polled there, and a cancellation that strikes *inside*
        the evolve step (mid-batch-count) discards the partial
        generation wholesale — the best set is only updated after the
        batch count returns, so the boundary state stays exact.
        """
        cfg = self.config
        if token is None:
            token = self.cancel_token
        if checkpointer is None:
            checkpointer = self.checkpointer

        def emit(type_: str, **payload) -> None:
            if context is not None:
                context.emit(type_, **payload)

        if restored is None:
            population = seed_population(
                self.counter.n_dims,
                self.dimensionality,
                self.counter.n_ranges,
                cfg.population_size,
                rng,
            )
            try:
                fitnesses = self._evaluate_and_track(population, evaluator, best)
            except SearchCancelled:
                return 0, "cancelled", False
            if cfg.track_history and history is not None:
                history.append(
                    self._snapshot(restart, 0, population, fitnesses, best)
                )
            generation = 0
            stall = 0
            # `n_accepted` grows whenever the best set improves — both in
            # bounded top-m mode and in unbounded threshold mode.
            accepted_seen = best.n_accepted
        else:
            population = [Solution(genes) for genes in restored["population"]]
            fitnesses = [float(f) for f in restored["fitnesses"]]
            generation = int(restored["generation"])
            stall = int(restored["stall"])
            accepted_seen = int(restored["accepted_seen"])

        reason = "generation_cap"
        dejong = False
        while True:
            # ---- safe boundary: generation fully evaluated ----
            yield
            boundary_rng = rng.bit_generator.state
            boundary_evals = evaluator.n_evaluations

            def build_state(
                generation=generation,
                population=population,
                fitnesses=fitnesses,
                stall=stall,
                accepted_seen=accepted_seen,
                boundary_rng=boundary_rng,
                boundary_evals=boundary_evals,
            ):
                return self._checkpoint_state(
                    restart, generation, population, fitnesses, stall,
                    accepted_seen, boundary_rng, boundary_evals, best,
                    history, totals,
                )

            if checkpointer is not None:
                boundary_index = generation
                if totals is not None:
                    boundary_index += totals["generations"]
                if checkpointer.maybe_save(boundary_index, build_state):
                    emit(
                        "checkpoint_written",
                        boundary=boundary_index, trigger="interval",
                    )
            if token is not None and token.poll():
                reason = "cancelled"
                if checkpointer is not None:
                    checkpointer.save(build_state())
                    emit(
                        "checkpoint_written",
                        boundary=generation, trigger="cancelled",
                    )
                break
            if deadline is not None and time.perf_counter() >= deadline:
                reason = "deadline"
                if checkpointer is not None:
                    checkpointer.save(build_state())
                    emit(
                        "checkpoint_written",
                        boundary=generation, trigger="deadline",
                    )
                break
            if convergence.has_converged(population):
                reason = "converged"
                dejong = True
                break
            if generation >= cfg.max_generations:
                reason = "generation_cap"
                break
            elites: list[Solution] = []
            if cfg.elitism:
                order = sorted(range(len(population)), key=lambda i: fitnesses[i])
                elites = [population[i] for i in order[: cfg.elitism]]
            try:
                offspring = self.selection.select(population, fitnesses, rng)
                offspring = self.crossover.apply(
                    offspring, evaluator, rng, cfg.crossover_rate
                )
                offspring = mutation.apply(offspring, rng)
                if elites:
                    # Elites replace the tail of the new population
                    # verbatim, shielding the best solutions from
                    # crossover/mutation.
                    offspring[-len(elites):] = elites
                offspring_fitnesses = self._evaluate_and_track(
                    offspring, evaluator, best
                )
            except SearchCancelled:
                # Discard the in-flight generation: population/fitnesses
                # still hold the boundary state and the best set was not
                # offered anything, so the checkpoint below describes the
                # last completed boundary exactly.
                reason = "cancelled"
                if checkpointer is not None:
                    checkpointer.save(build_state())
                    emit(
                        "checkpoint_written",
                        boundary=generation, trigger="cancelled",
                    )
                break
            population, fitnesses = offspring, offspring_fitnesses
            generation += 1
            best_entry = best.best()
            emit(
                "generation_end",
                restart=restart,
                generation=generation,
                evaluations=evaluator.n_evaluations,
                best_set_size=len(best),
                best_coefficient=(
                    best_entry.coefficient if best_entry is not None else None
                ),
            )
            if cfg.track_history and history is not None:
                history.append(
                    self._snapshot(restart, generation, population, fitnesses, best)
                )
            if cfg.stall_generations is not None:
                if best.n_accepted > accepted_seen:
                    accepted_seen = best.n_accepted
                    stall = 0
                else:
                    stall += 1
                    if stall >= cfg.stall_generations:
                        reason = "converged"
                        break
        return generation, reason, dejong

    def _checkpoint_state(
        self,
        restart: int,
        generation: int,
        population: list[Solution],
        fitnesses: list[float],
        stall: int,
        accepted_seen: int,
        rng_state,
        evaluations: int,
        best: BestProjectionSet,
        history: list | None,
        totals: dict | None,
    ) -> dict:
        """Full JSON-compatible GA state at a generation boundary."""
        totals = totals or {"generations": 0, "converged": 0,
                            "elapsed_base": 0.0, "start": time.perf_counter()}
        return {
            "algorithm": "evolutionary",
            "restart": restart,
            "generation": generation,
            "population": [list(solution.genes) for solution in population],
            "fitnesses": list(fitnesses),
            "stall": stall,
            "accepted_seen": accepted_seen,
            "rng_state": encode_rng_state(rng_state),
            "evaluations": evaluations,
            "best_set": best.to_state(),
            "total_generations": totals["generations"],
            "n_converged": totals["converged"],
            "elapsed_seconds": totals["elapsed_base"]
            + (time.perf_counter() - totals["start"]),
            "history": [asdict(record) for record in (history or [])],
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _snapshot(
        restart: int,
        generation: int,
        population: list[Solution],
        fitnesses: list[float],
        best: BestProjectionSet,
    ) -> GenerationRecord:
        """One history record (only built when track_history is on)."""
        counts = Counter(population)
        best_entry = best.best()
        finite = [f for f in fitnesses if f != float("inf")]
        return GenerationRecord(
            restart=restart,
            generation=generation,
            best_coefficient=(
                best_entry.coefficient if best_entry is not None else float("nan")
            ),
            best_set_size=len(best),
            population_best=min(finite) if finite else float("inf"),
            n_feasible=len(finite),
            convergence=counts.most_common(1)[0][1] / len(population),
        )

    @staticmethod
    def _evaluate_and_track(
        population: list[Solution],
        evaluator: FitnessEvaluator,
        best: BestProjectionSet,
    ) -> list[float]:
        """Fitness of every string; feasible ones feed the best set.

        The whole generation is counted in one
        :meth:`~repro.grid.counter.CubeCounter.count_batch` pass —
        duplicates of a converging population collapse in the batch, and
        a parallel counting backend fans the distinct cubes out to its
        worker pool.  Offers happen in population order, so the best-set
        contents (including tie-breaks) match per-solution scoring.
        """
        fitnesses = []
        for scored in evaluator.score_batch(population):
            if scored is None:
                fitnesses.append(float("inf"))
            else:
                fitnesses.append(scored.coefficient)
                best.offer(scored)
        return fitnesses
