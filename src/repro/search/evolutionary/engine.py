"""Figure 3: the evolutionary outlier-search main loop.

Seed a population of ``p`` random feasible strings, then iterate
selection → crossover → mutation, folding every feasible solution ever
evaluated into the running ``BestSet`` of the ``m`` most negative
sparsity coefficients.  Terminate on De Jong convergence (or the
generation / wall-clock / stall caps from the config) and report the
best set; §2.3's postprocessing to data points happens in the detector
facade.
"""

from __future__ import annotations

import logging
import time
from collections import Counter

from ..._validation import check_positive_int, check_rng
from ...exceptions import ValidationError
from ...grid.counter import CubeCounter
from ..best_set import BestProjectionSet
from ..outcome import GenerationRecord, SearchOutcome
from .config import EvolutionaryConfig
from .convergence import DeJongConvergence
from .crossover import CrossoverOperator, OptimizedCrossover, TwoPointCrossover
from .encoding import Solution, seed_population
from .mutation import BalancedMutation
from .population import FitnessEvaluator
from .selection import RankRouletteSelection, SelectionOperator

__all__ = ["EvolutionarySearch"]

logger = logging.getLogger(__name__)

_CROSSOVER_ALIASES = {
    "optimized": lambda cfg: OptimizedCrossover(cfg.max_exact_positions),
    "two_point": lambda cfg: TwoPointCrossover(),
}


class EvolutionarySearch:
    """Algorithm *EvolutionaryOutlierSearch* (Figure 3).

    Parameters
    ----------
    counter:
        Cube counting engine over the discretized data.
    dimensionality:
        k — dimensionality of mined projections.
    n_projections:
        m — size of the best set to maintain (None allowed only with a
        *threshold*).
    config:
        GA hyper-parameters; defaults are sensible at paper scale.
    crossover:
        ``"optimized"`` (Figure 5, the paper's contribution),
        ``"two_point"`` (the baseline), or any
        :class:`~repro.search.evolutionary.crossover.CrossoverOperator`.
    selection:
        Defaults to the paper's rank-roulette (Figure 4).
    require_nonempty / threshold:
        Best-set policy, see
        :class:`~repro.search.best_set.BestProjectionSet`.
    random_state:
        Seed or numpy Generator for full determinism.
    """

    def __init__(
        self,
        counter: CubeCounter,
        dimensionality: int,
        n_projections: int | None = 20,
        *,
        config: EvolutionaryConfig | None = None,
        crossover: str | CrossoverOperator = "optimized",
        selection: SelectionOperator | None = None,
        require_nonempty: bool = True,
        threshold: float | None = None,
        random_state=None,
    ):
        if not isinstance(counter, CubeCounter):
            raise ValidationError(
                f"counter must be a CubeCounter, got {type(counter).__name__}"
            )
        self.counter = counter
        self.dimensionality = check_positive_int(dimensionality, "dimensionality")
        if self.dimensionality > counter.n_dims:
            raise ValidationError(
                f"dimensionality ({self.dimensionality}) exceeds data "
                f"dimensionality ({counter.n_dims})"
            )
        self.n_projections = n_projections
        self.config = config or EvolutionaryConfig()
        if isinstance(crossover, str):
            try:
                self.crossover: CrossoverOperator = _CROSSOVER_ALIASES[crossover](
                    self.config
                )
            except KeyError:
                raise ValidationError(
                    f"unknown crossover {crossover!r}; expected one of "
                    f"{sorted(_CROSSOVER_ALIASES)} or a CrossoverOperator"
                ) from None
        elif isinstance(crossover, CrossoverOperator):
            self.crossover = crossover
        else:
            raise ValidationError(
                f"crossover must be a name or CrossoverOperator, got "
                f"{type(crossover).__name__}"
            )
        self.selection = selection or RankRouletteSelection()
        self.require_nonempty = require_nonempty
        self.threshold = threshold
        self.random_state = random_state

    # ------------------------------------------------------------------
    def run(self) -> SearchOutcome:
        """Execute the GA (all restarts) and return the mined best set."""
        rng = check_rng(self.random_state)
        cfg = self.config
        evaluator = FitnessEvaluator(self.counter, self.dimensionality)
        mutation = BalancedMutation(
            cfg.mutation_swap_probability,
            cfg.mutation_flip_probability,
            self.counter.n_ranges,
        )
        convergence = DeJongConvergence(
            cfg.convergence_threshold, mode=cfg.convergence_mode
        )
        best = BestProjectionSet(
            self.n_projections,
            require_nonempty=self.require_nonempty,
            threshold=self.threshold,
        )

        start = time.perf_counter()
        deadline = None if cfg.max_seconds is None else start + cfg.max_seconds

        total_generations = 0
        n_converged = 0
        timed_out = False
        history: list[GenerationRecord] = []
        for restart in range(cfg.restarts):
            generations, converged, timed_out = self._run_population(
                rng, evaluator, mutation, convergence, best, deadline,
                restart, history,
            )
            total_generations += generations
            n_converged += int(converged)
            logger.debug(
                "restart %d/%d: %d generations, converged=%s, best set %d "
                "entries (best %.3f)",
                restart + 1, cfg.restarts, generations, converged,
                len(best), best.best().coefficient if len(best) else float("nan"),
            )
            if timed_out:
                logger.warning("evolutionary search hit its time budget")
                break

        elapsed = time.perf_counter() - start
        return SearchOutcome(
            projections=tuple(best.entries()),
            completed=not timed_out,
            stats={
                "elapsed_seconds": elapsed,
                "generations": total_generations,
                "converged": n_converged / cfg.restarts,
                "restarts": cfg.restarts,
                "evaluations": evaluator.n_evaluations,
                "population_size": cfg.population_size,
                "algorithm": f"evolutionary/{type(self.crossover).__name__}",
            },
            history=tuple(history),
        )

    def _run_population(
        self,
        rng,
        evaluator: FitnessEvaluator,
        mutation: BalancedMutation,
        convergence: DeJongConvergence,
        best: BestProjectionSet,
        deadline: float | None,
        restart: int = 0,
        history: list | None = None,
    ) -> tuple[int, bool, bool]:
        """One population until convergence/caps; feeds the shared best set.

        Returns ``(generations, converged, timed_out)``.
        """
        cfg = self.config
        population = seed_population(
            self.counter.n_dims,
            self.dimensionality,
            self.counter.n_ranges,
            cfg.population_size,
            rng,
        )
        fitnesses = self._evaluate_and_track(population, evaluator, best)
        if cfg.track_history and history is not None:
            history.append(
                self._snapshot(restart, 0, population, fitnesses, best)
            )

        generation = 0
        converged = False
        timed_out = False
        stall = 0
        # `n_accepted` grows whenever the best set improves — both in
        # bounded top-m mode and in unbounded threshold mode.
        accepted_seen = best.n_accepted
        while generation < cfg.max_generations:
            if deadline is not None and time.perf_counter() >= deadline:
                timed_out = True
                break
            if convergence.has_converged(population):
                converged = True
                break
            elites: list[Solution] = []
            if cfg.elitism:
                order = sorted(range(len(population)), key=lambda i: fitnesses[i])
                elites = [population[i] for i in order[: cfg.elitism]]
            population = self.selection.select(population, fitnesses, rng)
            population = self.crossover.apply(
                population, evaluator, rng, cfg.crossover_rate
            )
            population = mutation.apply(population, rng)
            if elites:
                # Elites replace the tail of the new population verbatim,
                # shielding the best solutions from crossover/mutation.
                population[-len(elites):] = elites
            fitnesses = self._evaluate_and_track(population, evaluator, best)
            generation += 1
            if cfg.track_history and history is not None:
                history.append(
                    self._snapshot(restart, generation, population, fitnesses, best)
                )
            if cfg.stall_generations is not None:
                if best.n_accepted > accepted_seen:
                    accepted_seen = best.n_accepted
                    stall = 0
                else:
                    stall += 1
                    if stall >= cfg.stall_generations:
                        break
        return generation, converged, timed_out

    # ------------------------------------------------------------------
    @staticmethod
    def _snapshot(
        restart: int,
        generation: int,
        population: list[Solution],
        fitnesses: list[float],
        best: BestProjectionSet,
    ) -> GenerationRecord:
        """One history record (only built when track_history is on)."""
        counts = Counter(population)
        best_entry = best.best()
        finite = [f for f in fitnesses if f != float("inf")]
        return GenerationRecord(
            restart=restart,
            generation=generation,
            best_coefficient=(
                best_entry.coefficient if best_entry is not None else float("nan")
            ),
            best_set_size=len(best),
            population_best=min(finite) if finite else float("inf"),
            n_feasible=len(finite),
            convergence=counts.most_common(1)[0][1] / len(population),
        )

    @staticmethod
    def _evaluate_and_track(
        population: list[Solution],
        evaluator: FitnessEvaluator,
        best: BestProjectionSet,
    ) -> list[float]:
        """Fitness of every string; feasible ones feed the best set.

        The whole generation is counted in one
        :meth:`~repro.grid.counter.CubeCounter.count_batch` pass —
        duplicates of a converging population collapse in the batch, and
        a parallel counting backend fans the distinct cubes out to its
        worker pool.  Offers happen in population order, so the best-set
        contents (including tie-breaks) match per-solution scoring.
        """
        fitnesses = []
        for scored in evaluator.score_batch(population):
            if scored is None:
                fitnesses.append(float("inf"))
            else:
                fitnesses.append(scored.coefficient)
                best.offer(scored)
        return fitnesses
