"""Hyper-parameters of the evolutionary search.

The paper specifies the *structure* of the GA precisely (Figures 3-6)
but leaves numeric knobs — population size ``p``, mutation probabilities
``p1 = p2``, generation caps — to the implementation.  The defaults here
were tuned on the synthetic UCI stand-ins to converge comfortably within
the De Jong criterion at paper-scale problems; every value is exposed so
the ablation benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..._validation import check_in_range, check_positive_int, check_probability
from ...exceptions import ValidationError

__all__ = ["EvolutionaryConfig"]


@dataclass(frozen=True)
class EvolutionaryConfig:
    """Knobs of :class:`~repro.search.evolutionary.engine.EvolutionarySearch`.

    Attributes
    ----------
    population_size:
        The paper's ``p`` — number of concurrent solutions.  Must be
        >= 2 so pairing for crossover is possible.
    mutation_swap_probability:
        ``p1`` — probability of a Type I mutation (dimension swap that
        preserves k) per string per generation (Figure 6).
    mutation_flip_probability:
        ``p2`` — probability of a Type II mutation (re-draw one fixed
        range).  The paper sets ``p1 = p2``; the defaults follow.
    crossover_rate:
        Probability that a matched pair actually recombines (1.0
        reproduces the paper's unconditional crossover).
    elitism:
        Number of best solutions copied verbatim into the next
        generation, shielding them from crossover and mutation.  The
        paper's loop (Figure 3) has no elitism — its BestSet already
        preserves discoveries — so the default is 0; the knob exists
        for the GA-literature ablations (De Jong's e > 0 plans).
    max_generations:
        Hard cap complementing the De Jong convergence criterion.
    convergence_threshold:
        De Jong convergence fraction (0.95 in the paper).
    convergence_mode:
        ``"string"`` (default) or ``"genes"`` — see
        :class:`~repro.search.evolutionary.convergence.DeJongConvergence`
        for why the literal gene criterion degenerates when k ≪ d.
    stall_generations:
        Early stop when the best set has not improved for this many
        generations; ``None`` disables (paper behaviour).
    max_exact_positions:
        Optimized crossover enumerates ``2^k'`` combinations of the
        shared (Type II) positions exactly; above this limit it falls
        back to a greedy pass.  Never reached at paper-scale k.
    restarts:
        Number of independent populations run back-to-back, all feeding
        one shared best set.  A single GA population converges onto one
        region of the search space; threshold-mode mining ("every
        projection with coefficient ≤ s", the arrhythmia protocol)
        needs several restarts to harvest projections from different
        regions.  Default 1 (the paper's single run).
    max_seconds:
        Optional wall-clock budget for the whole search (all restarts).
    track_history:
        Record a per-generation snapshot (best-set progress, population
        fitness, convergence statistic) into ``SearchOutcome.history``.
        Off by default — it costs one population scan per generation.
    """

    population_size: int = 50
    mutation_swap_probability: float = 0.25
    mutation_flip_probability: float = 0.25
    crossover_rate: float = 1.0
    elitism: int = 0
    max_generations: int = 100
    convergence_threshold: float = 0.95
    convergence_mode: str = "string"
    stall_generations: int | None = None
    max_exact_positions: int = 12
    restarts: int = 1
    max_seconds: float | None = None
    track_history: bool = False

    def __post_init__(self) -> None:
        check_positive_int(self.population_size, "population_size", minimum=2)
        check_probability(self.mutation_swap_probability, "mutation_swap_probability")
        check_probability(self.mutation_flip_probability, "mutation_flip_probability")
        check_probability(self.crossover_rate, "crossover_rate")
        check_positive_int(self.elitism, "elitism", minimum=0)
        if self.elitism >= self.population_size:
            raise ValidationError(
                f"elitism ({self.elitism}) must be smaller than the "
                f"population size ({self.population_size})"
            )
        check_positive_int(self.max_generations, "max_generations")
        check_in_range(
            self.convergence_threshold, "convergence_threshold", low=0.5, high=1.0
        )
        if self.convergence_mode not in ("string", "genes"):
            raise ValidationError(
                f"convergence_mode must be 'string' or 'genes', got "
                f"{self.convergence_mode!r}"
            )
        if self.stall_generations is not None:
            check_positive_int(self.stall_generations, "stall_generations")
        check_positive_int(self.max_exact_positions, "max_exact_positions")
        check_positive_int(self.restarts, "restarts")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValidationError(
                f"max_seconds must be positive, got {self.max_seconds}"
            )
