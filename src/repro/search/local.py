"""Alternative searchers: random search, hill climbing, simulated annealing.

§2.1 motivates the evolutionary algorithm by contrast: "unlike other
optimization methods such as hill climbing or simulated annealing
[Kirkpatrick et al. 1983], they work with an entire population of
current solutions", combining the strengths of "hill-climbing, random
search [and] simulated annealing ... in conjunction with recombination".
These three methods are implemented here over the *same* solution
encoding (fixed-k don't-care strings) and the same move set (the GA's
Type I dimension swaps and Type II range flips), so the search-method
ablation isolates exactly what recombination adds.

All three maintain the same ``BestProjectionSet`` as the other
searchers, implement the :class:`~repro.engine.protocol.SearchEngine`
protocol and return a ``SearchOutcome``, so they are drop-in comparable
in the benchmarks and resolvable through the engine registry.
"""

from __future__ import annotations

import math
import time

from .._validation import check_in_range, check_positive_int, check_rng
from ..engine.context import RunContext
from ..engine.protocol import GeneratorEngine
from ..exceptions import SearchCancelled, ValidationError
from ..grid.counter import CubeCounter
from .best_set import BestProjectionSet
from .evolutionary.encoding import Solution, WILDCARD_GENE, random_solution
from .evolutionary.population import FitnessEvaluator
from .outcome import SearchOutcome

__all__ = ["RandomSearch", "HillClimbingSearch", "SimulatedAnnealingSearch"]


def _neighbor(solution: Solution, n_ranges: int, rng) -> Solution:
    """One random move: a Type I dimension swap or a Type II range flip.

    Mirrors the GA's mutation moves so all searchers share a
    neighborhood structure.
    """
    genes = list(solution.genes)
    fixed = [i for i, g in enumerate(genes) if g != WILDCARD_GENE]
    wildcards = [i for i, g in enumerate(genes) if g == WILDCARD_GENE]
    move_swap = wildcards and fixed and rng.random() < 0.5
    if move_swap:
        gain = wildcards[int(rng.integers(len(wildcards)))]
        lose = fixed[int(rng.integers(len(fixed)))]
        genes[gain] = int(rng.integers(n_ranges))
        genes[lose] = WILDCARD_GENE
    elif fixed and n_ranges > 1:
        pos = fixed[int(rng.integers(len(fixed)))]
        offset = int(rng.integers(1, n_ranges))
        genes[pos] = (genes[pos] + offset) % n_ranges
    return Solution(genes)


class _SingleSolutionSearch(GeneratorEngine):
    """Shared plumbing for the non-population searchers."""

    def __init__(
        self,
        counter: CubeCounter,
        dimensionality: int,
        n_projections: int | None = 20,
        *,
        max_evaluations: int = 10_000,
        require_nonempty: bool = True,
        threshold: float | None = None,
        random_state=None,
        cancel_token=None,
    ):
        if not isinstance(counter, CubeCounter):
            raise ValidationError(
                f"counter must be a CubeCounter, got {type(counter).__name__}"
            )
        self.counter = counter
        self.dimensionality = check_positive_int(dimensionality, "dimensionality")
        if self.dimensionality > counter.n_dims:
            raise ValidationError(
                f"dimensionality ({self.dimensionality}) exceeds data "
                f"dimensionality ({counter.n_dims})"
            )
        self.n_projections = n_projections
        self.max_evaluations = check_positive_int(max_evaluations, "max_evaluations")
        self.require_nonempty = require_nonempty
        self.threshold = threshold
        self.random_state = random_state
        self.cancel_token = cancel_token

    # ------------------------------------------------------------------
    def _begin(self, context: RunContext):
        """Shared run setup: seed state, bind budgets, emit run_started.

        Returns ``(rng, evaluator, best, token, deadline)``; the mutable
        run bundle lands on ``self._run`` for :meth:`_build_outcome`.
        """
        rng = (
            context.rng if context.rng is not None
            else check_rng(self.random_state)
        )
        evaluator = FitnessEvaluator(self.counter, self.dimensionality)
        best = BestProjectionSet(
            self.n_projections,
            require_nonempty=self.require_nonempty,
            threshold=self.threshold,
        )
        token = context.resolve_token(self.cancel_token)
        start = time.perf_counter()
        max_seconds = context.merged_budget(None)
        deadline = None if max_seconds is None else start + max_seconds
        self._run = {
            "evaluator": evaluator,
            "best": best,
            "start": start,
            "stopped_reason": "evaluation_cap",
            "extra": {},
        }
        context.emit(
            "run_started",
            algorithm=type(self).__name__,
            dimensionality=self.dimensionality,
            n_projections=self.n_projections,
            max_evaluations=self.max_evaluations,
        )
        return rng, evaluator, best, token, deadline

    @staticmethod
    def _stopped(token, deadline) -> str | None:
        """Boundary check: poll the token, then the wall clock."""
        if token is not None and token.poll():
            return "cancelled"
        if deadline is not None and time.perf_counter() >= deadline:
            return "deadline"
        return None

    def _evaluate(self, solution: Solution, evaluator, best) -> float:
        scored = evaluator.score(solution)
        if scored is None:
            return float("inf")
        best.offer(scored)
        return scored.coefficient

    def _build_outcome(self, context: RunContext) -> SearchOutcome:
        run = self._require_run_state()
        stopped_reason = run["stopped_reason"]
        stats = {
            "elapsed_seconds": time.perf_counter() - run["start"],
            "evaluations": run["evaluator"].n_evaluations,
            "algorithm": type(self).__name__,
        }
        stats.update(run["extra"])
        return SearchOutcome(
            projections=tuple(run["best"].entries()),
            completed=stopped_reason not in ("deadline", "cancelled"),
            stats=stats,
            stopped_reason=stopped_reason,
        )


class RandomSearch(_SingleSolutionSearch):
    """Uniformly random cubes — the no-structure control of §2.1."""

    #: Draws scored per batch; the gap between cancellation checks.
    CHUNK = 512

    def _iterate(self, context: RunContext):
        """Evaluate ``max_evaluations`` random feasible solutions.

        The solutions are drawn first (same generator stream as
        one-at-a-time evaluation) and then scored through the counter's
        batch engine in chunks; offers happen in draw order, so the
        resulting best set is identical to the sequential path, and the
        cancel token is polled between chunks (one step per chunk) so a
        flip returns the best-so-far partial outcome.
        """
        rng, evaluator, best, token, deadline = self._begin(context)
        run = self._run
        with self.counter.runtime_binding(token, context.sink):
            yield  # prepare boundary: nothing drawn or counted yet
            solutions = [
                random_solution(
                    self.counter.n_dims,
                    self.dimensionality,
                    self.counter.n_ranges,
                    rng,
                )
                for _ in range(self.max_evaluations)
            ]
            for lo in range(0, len(solutions), self.CHUNK):
                if lo:
                    yield
                stopped = self._stopped(token, deadline)
                if stopped is not None:
                    run["stopped_reason"] = stopped
                    break
                try:
                    scored_chunk = evaluator.score_batch(
                        solutions[lo : lo + self.CHUNK]
                    )
                except SearchCancelled:
                    run["stopped_reason"] = "cancelled"
                    break
                for scored in scored_chunk:
                    if scored is not None:
                        best.offer(scored)


class HillClimbingSearch(_SingleSolutionSearch):
    """First-improvement hill climbing with random restarts.

    From a random start, propose neighbor moves (the GA's mutation
    moves); accept any improvement, restart after *patience*
    consecutive rejections.  This is the "hill climbing" §2.1 contrasts
    the GA against: strong local descent, no recombination, prone to
    local optima.
    """

    def __init__(self, *args, patience: int = 50, **kwargs):
        super().__init__(*args, **kwargs)
        self.patience = check_positive_int(patience, "patience")

    def _iterate(self, context: RunContext):
        rng, evaluator, best, token, deadline = self._begin(context)
        run = self._run
        restarts = 0
        run["extra"]["restarts"] = restarts
        with self.counter.runtime_binding(token, context.sink):
            yield  # prepare boundary
            current = random_solution(
                self.counter.n_dims, self.dimensionality,
                self.counter.n_ranges, rng,
            )
            current_fitness = self._evaluate(current, evaluator, best)
            rejected = 0
            while evaluator.n_evaluations < self.max_evaluations:
                yield
                stopped = self._stopped(token, deadline)
                if stopped is not None:
                    run["stopped_reason"] = stopped
                    break
                candidate = _neighbor(current, self.counter.n_ranges, rng)
                fitness = self._evaluate(candidate, evaluator, best)
                if fitness < current_fitness:
                    current, current_fitness = candidate, fitness
                    rejected = 0
                else:
                    rejected += 1
                    if rejected >= self.patience:
                        restarts += 1
                        run["extra"]["restarts"] = restarts
                        current = random_solution(
                            self.counter.n_dims,
                            self.dimensionality,
                            self.counter.n_ranges,
                            rng,
                        )
                        current_fitness = self._evaluate(current, evaluator, best)
                        rejected = 0


class SimulatedAnnealingSearch(_SingleSolutionSearch):
    """Simulated annealing (Kirkpatrick, Gelatt & Vecchi 1983; ref [21]).

    Metropolis acceptance over the shared move set with a geometric
    cooling schedule: worse moves are accepted with probability
    ``exp(−Δ/T)``, ``T`` decaying from *initial_temperature* by
    *cooling* per step.
    """

    def __init__(
        self,
        *args,
        initial_temperature: float = 1.0,
        cooling: float = 0.999,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.initial_temperature = check_in_range(
            initial_temperature, "initial_temperature", low=1e-9
        )
        self.cooling = check_in_range(cooling, "cooling", low=0.5, high=1.0)

    def _iterate(self, context: RunContext):
        rng, evaluator, best, token, deadline = self._begin(context)
        run = self._run
        accepted_worse = 0
        temperature = self.initial_temperature
        run["extra"]["accepted_worse"] = accepted_worse
        run["extra"]["final_temperature"] = temperature
        with self.counter.runtime_binding(token, context.sink):
            yield  # prepare boundary
            current = random_solution(
                self.counter.n_dims, self.dimensionality,
                self.counter.n_ranges, rng,
            )
            current_fitness = self._evaluate(current, evaluator, best)
            while evaluator.n_evaluations < self.max_evaluations:
                yield
                stopped = self._stopped(token, deadline)
                if stopped is not None:
                    run["stopped_reason"] = stopped
                    break
                candidate = _neighbor(current, self.counter.n_ranges, rng)
                fitness = self._evaluate(candidate, evaluator, best)
                delta = fitness - current_fitness
                if delta < 0:
                    current, current_fitness = candidate, fitness
                elif math.isfinite(delta) and temperature > 0:
                    if rng.random() < math.exp(-delta / temperature):
                        current, current_fitness = candidate, fitness
                        accepted_worse += 1
                        run["extra"]["accepted_worse"] = accepted_worse
                temperature *= self.cooling
                run["extra"]["final_temperature"] = temperature
