"""repro — Outlier detection for high dimensional data (Aggarwal & Yu, SIGMOD 2001).

A complete, faithful reproduction of the paper's system:

* equi-depth grid discretization and the sparsity coefficient (Eq. 1),
* brute-force bottom-up cube enumeration (Figure 2),
* the evolutionary projection search with optimized crossover
  (Figures 3-6) and the De Jong convergence criterion,
* Equation 2's choice of the projection dimensionality ``k*``,
* the full-dimensional baselines the paper compares against
  (kth-NN distance [25], DB(k, λ) [22], LOF [10]),
* synthetic stand-ins for the paper's UCI evaluation datasets, and an
  evaluation harness regenerating every table and figure.

Quickstart::

    import numpy as np
    from repro import SubspaceOutlierDetector

    data = np.random.default_rng(0).normal(size=(500, 20))
    detector = SubspaceOutlierDetector(random_state=0)
    result = detector.detect(data)
    print(result.outlier_indices)
"""

from .core.detector import SubspaceOutlierDetector
from .core.explain import OutlierExplanation, explain_point, render_report
from .core.intensional import minimal_abnormal_subspaces
from .core.multik import MultiKResult, detect_across_dimensionalities
from .core.params import (
    CountingBackend,
    FaultPlan,
    ParameterAdvisor,
    choose_projection_dimensionality,
    empty_cube_sparsity,
    expected_cube_count,
)
from .core.results import DetectionResult, ScoredProjection
from .core.subspace import Subspace
from .engine import (
    CompositeSink,
    Event,
    EventSink,
    GeneratorEngine,
    InMemoryEventSink,
    JsonlTraceSink,
    NullSink,
    RunContext,
    SearchEngine,
    StatsAssemblySink,
    create_engine,
    engine_names,
    engine_spec,
    register_engine,
    unregister_engine,
)
from .exceptions import (
    CheckpointError,
    DatasetError,
    DiscretizationError,
    NotFittedError,
    ReproError,
    ResourceError,
    SearchCancelled,
    SearchError,
    ValidationError,
)
from .grid.cells import CellAssignment, MISSING_CELL
from .grid.counter import CubeCounter
from .grid.health import BackendHealth
from .grid.packed_counter import PackedCubeCounter
from .grid.discretizer import EquiDepthDiscretizer, EquiWidthDiscretizer
from .search.best_set import BestProjectionSet
from .search.brute_force import BruteForceSearch, search_space_size
from .search.local import (
    HillClimbingSearch,
    RandomSearch,
    SimulatedAnnealingSearch,
)
from .search.evolutionary import (
    EvolutionaryConfig,
    EvolutionarySearch,
    OptimizedCrossover,
    RankRouletteSelection,
    TwoPointCrossover,
)
from .run import (
    CancelToken,
    CheckpointStore,
    RunController,
    SearchCheckpointer,
)
from .search.outcome import GenerationRecord, SearchOutcome
from .persist import (
    SavedModel,
    load_model,
    result_from_dict,
    result_to_dict,
    save_model,
)
from .sparsity.coefficient import (
    cube_count_std,
    expected_count,
    sparsity_coefficient,
    sparsity_coefficients,
)
from .sparsity.statistics import (
    binomial_tail_probability,
    bonferroni_significance,
    expected_abnormal_cubes,
    normal_tail_probability,
    significance_of_coefficient,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # detector pipeline
    "SubspaceOutlierDetector",
    "DetectionResult",
    "ScoredProjection",
    "Subspace",
    "OutlierExplanation",
    "explain_point",
    "render_report",
    "minimal_abnormal_subspaces",
    "MultiKResult",
    "detect_across_dimensionalities",
    # persistence
    "SavedModel",
    "save_model",
    "load_model",
    "result_to_dict",
    "result_from_dict",
    # grid
    "EquiDepthDiscretizer",
    "EquiWidthDiscretizer",
    "CellAssignment",
    "CubeCounter",
    "PackedCubeCounter",
    "MISSING_CELL",
    # sparsity
    "sparsity_coefficient",
    "sparsity_coefficients",
    "expected_count",
    "cube_count_std",
    "normal_tail_probability",
    "binomial_tail_probability",
    "significance_of_coefficient",
    "bonferroni_significance",
    "expected_abnormal_cubes",
    # parameters
    "choose_projection_dimensionality",
    "empty_cube_sparsity",
    "expected_cube_count",
    "CountingBackend",
    "FaultPlan",
    "BackendHealth",
    "ParameterAdvisor",
    # search
    "BestProjectionSet",
    "BruteForceSearch",
    "search_space_size",
    "RandomSearch",
    "HillClimbingSearch",
    "SimulatedAnnealingSearch",
    "EvolutionarySearch",
    "EvolutionaryConfig",
    "OptimizedCrossover",
    "TwoPointCrossover",
    "RankRouletteSelection",
    "SearchOutcome",
    "GenerationRecord",
    # engine layer
    "SearchEngine",
    "GeneratorEngine",
    "RunContext",
    "Event",
    "EventSink",
    "NullSink",
    "InMemoryEventSink",
    "JsonlTraceSink",
    "CompositeSink",
    "StatsAssemblySink",
    "register_engine",
    "unregister_engine",
    "engine_names",
    "engine_spec",
    "create_engine",
    # run lifecycle
    "RunController",
    "CancelToken",
    "CheckpointStore",
    "SearchCheckpointer",
    # errors
    "ReproError",
    "ValidationError",
    "NotFittedError",
    "DiscretizationError",
    "SearchError",
    "SearchCancelled",
    "CheckpointError",
    "DatasetError",
    "ResourceError",
]
