"""Benchmark trajectories: append-only perf history + regression gate.

``BENCH_*.json`` artifacts used to be single snapshots — the latest
run overwrote the previous one, so a performance regression was
invisible unless someone remembered the old number.  A *trajectory*
keeps every run::

    {
      "benchmark": "counter_performance",
      "schema_version": 2,
      "entries": [
        {
          "timestamp": "2026-08-08T12:00:00+00:00",   # or null
          "params":   {...},                           # run configuration
          "metrics":  {...},                           # scalar summary
          "backends": {                                # per-backend timings
            "serial": {"batch_seconds": 0.0029, ...},
            "native": {"batch_seconds": 0.0011, "kernel_tier": "c", ...}
          }
        },
        ...
      ]
    }

The schema is locked by ``tests/test_bench_trajectory.py`` (mirroring
the JSON lint-report lock) because :func:`check_regression` — and the
CI ``bench-gate`` job built on it — parses these files blindly; a
silent shape change would turn the gate into a no-op.

Legacy v1 snapshots (top-level ``metrics``, no ``entries``) migrate on
load: the snapshot becomes the first entry with a ``null`` timestamp,
its ``batch_seconds`` attributed to the ``serial`` backend, so the
pre-trajectory history stays comparable.

Timestamps are *inputs* here: reading the clock stays in the caller
(the benchmark scripts), keeping this module — and everything under
``src/`` — free of wall-clock reads per the determinism lint (RPL002).
"""

from __future__ import annotations

import argparse
import json
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from .._atomic import atomic_write_text
from ..exceptions import ValidationError

__all__ = [
    "SCHEMA_VERSION",
    "RegressionFinding",
    "append_entry",
    "check_regression",
    "load_trajectory",
    "regression_main",
    "validate_trajectory",
]

SCHEMA_VERSION = 2

#: Locked key sets — ``tests/test_bench_trajectory.py`` pins these.
TOP_KEYS = ("benchmark", "entries", "schema_version")
ENTRY_KEYS = ("backends", "metrics", "params", "timestamp")

#: The per-backend field the regression gate compares by default.
DEFAULT_METRIC = "batch_seconds"

#: Default tolerated slowdown: latest may be at most 20% above the
#: best prior run before the gate fails.
DEFAULT_THRESHOLD = 0.20


def _new_trajectory(benchmark: str) -> dict:
    return {
        "benchmark": benchmark,
        "schema_version": SCHEMA_VERSION,
        "entries": [],
    }


def _migrate_v1(doc: dict) -> dict:
    """Lift a legacy single-snapshot document into a one-entry trajectory."""
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise ValidationError(
            "legacy benchmark snapshot has no 'metrics' mapping to migrate"
        )
    backends: dict = {}
    if "batch_seconds" in metrics:
        # The v1 batch timing was the serial batched path.
        backends["serial"] = {"batch_seconds": metrics["batch_seconds"]}
    entry = {
        "timestamp": None,
        "params": doc.get("params", {}),
        "metrics": metrics,
        "backends": backends,
    }
    migrated = _new_trajectory(str(doc.get("benchmark", "unknown")))
    migrated["entries"].append(entry)
    return migrated


def validate_trajectory(doc: dict) -> None:
    """Raise :class:`ValidationError` unless *doc* matches the schema."""
    if not isinstance(doc, dict):
        raise ValidationError("trajectory document must be a JSON object")
    if sorted(doc) != sorted(TOP_KEYS):
        raise ValidationError(
            f"trajectory top-level keys must be {sorted(TOP_KEYS)}, "
            f"got {sorted(doc)}"
        )
    if doc["schema_version"] != SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported trajectory schema_version {doc['schema_version']!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    if not isinstance(doc["benchmark"], str) or not doc["benchmark"]:
        raise ValidationError("trajectory 'benchmark' must be a non-empty string")
    if not isinstance(doc["entries"], list):
        raise ValidationError("trajectory 'entries' must be a list")
    for position, entry in enumerate(doc["entries"]):
        if not isinstance(entry, dict) or sorted(entry) != sorted(ENTRY_KEYS):
            raise ValidationError(
                f"entry {position} keys must be {sorted(ENTRY_KEYS)}, got "
                f"{sorted(entry) if isinstance(entry, dict) else type(entry).__name__}"
            )
        if entry["timestamp"] is not None and not isinstance(
            entry["timestamp"], str
        ):
            raise ValidationError(
                f"entry {position} timestamp must be an ISO string or null"
            )
        for field in ("params", "metrics", "backends"):
            if not isinstance(entry[field], dict):
                raise ValidationError(
                    f"entry {position} {field!r} must be a mapping"
                )
        for backend, record in entry["backends"].items():
            if not isinstance(record, dict):
                raise ValidationError(
                    f"entry {position} backend {backend!r} record must be "
                    "a mapping"
                )


def load_trajectory(path: str | Path, benchmark: str | None = None) -> dict:
    """Load (and, if necessary, migrate) a trajectory file.

    A missing file yields a fresh empty trajectory (*benchmark* is then
    required).  Legacy v1 snapshots are migrated in memory; the file is
    rewritten in trajectory form on the next :func:`append_entry`.
    """
    path = Path(path)
    if not path.exists():
        if benchmark is None:
            raise ValidationError(
                f"trajectory file {path} does not exist and no benchmark "
                "name was given to create one"
            )
        return _new_trajectory(benchmark)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(
            f"trajectory file {path} is not valid JSON: {exc}"
        ) from exc
    if isinstance(doc, dict) and "entries" not in doc:
        doc = _migrate_v1(doc)
    validate_trajectory(doc)
    if benchmark is not None and doc["benchmark"] != benchmark:
        raise ValidationError(
            f"trajectory file {path} tracks benchmark {doc['benchmark']!r}, "
            f"not {benchmark!r}"
        )
    return doc


def append_entry(
    path: str | Path,
    *,
    benchmark: str,
    timestamp: str | None,
    params: dict,
    metrics: dict,
    backends: dict,
) -> dict:
    """Append one timestamped run to the trajectory at *path*.

    Loads (migrating a legacy snapshot if present), validates the new
    entry against the locked schema, and writes the whole document back
    atomically.  Returns the updated trajectory.
    """
    doc = load_trajectory(path, benchmark=benchmark)
    entry = {
        "timestamp": timestamp,
        "params": dict(params),
        "metrics": dict(metrics),
        "backends": {name: dict(record) for name, record in backends.items()},
    }
    doc["entries"].append(entry)
    validate_trajectory(doc)
    atomic_write_text(
        Path(path), json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    return doc


# ----------------------------------------------------------------------
# the regression gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RegressionFinding:
    """Latest-vs-best comparison for one backend's tracked metric.

    ``ratio`` is ``latest / best`` for time-like metrics (lower is
    better): 1.0 means matching the best run ever recorded, 1.25 means
    25% slower.  ``regressed`` applies the gate threshold.
    """

    backend: str
    metric: str
    latest: float
    best: float
    ratio: float
    regressed: bool

    def describe(self) -> str:
        state = "REGRESSION" if self.regressed else "ok"
        return (
            f"{self.backend:<16} {self.metric}: latest {self.latest:.6f}s "
            f"vs best {self.best:.6f}s ({self.ratio:.2f}x) [{state}]"
        )


def check_regression(
    doc: dict,
    *,
    metric: str = DEFAULT_METRIC,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[RegressionFinding]:
    """Compare the latest entry against the best prior run, per backend.

    For each backend in the latest entry that also has prior data, the
    latest *metric* (lower is better) is compared against the minimum
    across all earlier entries; a finding is ``regressed`` when it
    exceeds ``best * (1 + threshold)``.  Fewer than two entries — or a
    backend with no history — produces no finding: a brand-new backend
    cannot regress.
    """
    if threshold < 0:
        raise ValidationError(f"threshold must be >= 0, got {threshold}")
    validate_trajectory(doc)
    entries = doc["entries"]
    if len(entries) < 2:
        return []
    latest = entries[-1]
    findings: list[RegressionFinding] = []
    for backend in sorted(latest["backends"]):
        value = latest["backends"][backend].get(metric)
        if not isinstance(value, (int, float)):
            continue
        prior = [
            record.get(metric)
            for entry in entries[:-1]
            for name, record in entry["backends"].items()
            if name == backend and isinstance(record.get(metric), (int, float))
        ]
        if not prior:
            continue
        best = min(prior)
        if best <= 0:
            continue
        ratio = float(value) / float(best)
        findings.append(
            RegressionFinding(
                backend=backend,
                metric=metric,
                latest=float(value),
                best=float(best),
                ratio=ratio,
                regressed=ratio > 1.0 + threshold,
            )
        )
    return findings


def regression_main(argv: Sequence[str] | None = None) -> int:
    """CLI for the gate: exit 1 on regression, 2 on a malformed file.

    This is what ``benchmarks/check_regression.py`` (and the CI
    ``bench-gate`` job) invokes after a benchmark run appends its
    entry.
    """
    parser = argparse.ArgumentParser(
        prog="check_regression",
        description=(
            "Fail if the latest benchmark entry regressed against the "
            "best prior run."
        ),
    )
    parser.add_argument(
        "path",
        nargs="?",
        default="BENCH_engine.json",
        help="trajectory file (default: BENCH_engine.json)",
    )
    parser.add_argument(
        "--metric",
        default=DEFAULT_METRIC,
        help=f"per-backend field to compare (default: {DEFAULT_METRIC})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=(
            "tolerated fractional slowdown vs the best prior run "
            f"(default: {DEFAULT_THRESHOLD:g} = "
            f"{DEFAULT_THRESHOLD:.0%})"
        ),
    )
    args = parser.parse_args(argv)
    try:
        doc = load_trajectory(args.path)
        findings = check_regression(
            doc, metric=args.metric, threshold=args.threshold
        )
    except ValidationError as exc:
        print(f"check_regression: {exc}")
        return 2
    if not findings:
        print(
            f"{args.path}: {len(doc['entries'])} entries — nothing to "
            "compare yet (need a backend with at least two runs)"
        )
        return 0
    for finding in findings:
        print(finding.describe())
    regressed = [finding for finding in findings if finding.regressed]
    if regressed:
        print(
            f"FAIL: {len(regressed)} backend(s) regressed more than "
            f"{args.threshold:.0%} vs their best recorded run"
        )
        return 1
    print(f"ok: within {args.threshold:.0%} of the best recorded runs")
    return 0
