"""Tracked benchmark trajectories and the perf-regression gate."""

from .trajectory import (
    SCHEMA_VERSION,
    RegressionFinding,
    append_entry,
    check_regression,
    load_trajectory,
    regression_main,
    validate_trajectory,
)

__all__ = [
    "SCHEMA_VERSION",
    "RegressionFinding",
    "append_entry",
    "check_regression",
    "load_trajectory",
    "regression_main",
    "validate_trajectory",
]
