"""High-level detector facade: data in, outliers + projections out.

This wires the full pipeline of the paper together:

1. equi-depth grid discretization (§1.3),
2. projection search — evolutionary (Figure 3) or brute force
   (Figure 2),
3. postprocessing (§2.3): the reported outliers ``O`` are the points
   covered by the mined abnormal projections.

Typical use::

    detector = SubspaceOutlierDetector(random_state=7)
    result = detector.detect(data)
    for point, score in result.ranked_outliers():
        print(point, score)

``dimensionality=None`` (the default) applies Equation 2 to pick
``k*`` from N, φ and the target sparsity, as §2.4 recommends.
"""

from __future__ import annotations

import logging
import shutil
import tempfile
import time
import weakref
from collections.abc import Mapping, Sequence

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..engine.context import RunContext
from ..engine.events import CompositeSink, EventSink, emit_event
from ..engine.registry import create_engine, engine_spec
from ..engine.stats import StatsAssemblySink
from ..exceptions import NotFittedError, ResourceError, ValidationError
from ..resilience.ladder import ResilienceReport
from ..grid.counter import CubeCounter
from ..grid.discretizer import EquiDepthDiscretizer, GridDiscretizer
from ..grid.packed_counter import PackedCubeCounter
from ..model import GridModel
from ..grid.sharded import (
    DEFAULT_SHARD_ROWS,
    ShardCheckpointer,
    ShardedCounter,
    ShardedMaskStore,
)
from ..run.checkpoint import data_fingerprint, params_fingerprint
from ..run.controller import RunController
from ..search.evolutionary.config import EvolutionaryConfig
from ..search.evolutionary.crossover import CrossoverOperator
from ..search.evolutionary.selection import SelectionOperator
from ..search.outcome import SearchOutcome
from .params import CountingBackend, choose_projection_dimensionality
from .results import DetectionResult, ScoredProjection

__all__ = ["SubspaceOutlierDetector"]

logger = logging.getLogger(__name__)


class SubspaceOutlierDetector:
    """Aggarwal-Yu subspace outlier detector.

    Parameters
    ----------
    dimensionality:
        k — projection dimensionality; ``None`` derives ``k*`` via
        Equation 2 at detect time.
    n_ranges:
        φ — equi-depth ranges per attribute (default 10, as in the
        paper's examples).
    n_projections:
        m — number of abnormal projections to mine (paper uses 20).
        May be ``None`` when *threshold* is given, reproducing the
        arrhythmia protocol ("all projections with coefficient ≤ −3").
    method:
        Any engine registered in :mod:`repro.engine.registry` —
        ``"evolutionary"`` (default), ``"brute_force"``, or the §2.1
        ablation searchers ``"random"`` / ``"hill_climbing"`` /
        ``"simulated_annealing"``; plugins registered via
        :func:`~repro.engine.registry.register_engine` resolve the same
        way.
    threshold:
        Optional sparsity-coefficient cutoff for mined projections.
    target_sparsity:
        s in Equation 2; only used when *dimensionality* is None.
    config, crossover, selection, random_state:
        Passed through to the evolutionary engine.
    discretizer:
        Custom :class:`~repro.grid.discretizer.GridDiscretizer`
        (defaults to equi-depth with φ = *n_ranges*).
    max_seconds:
        Wall-clock budget; brute force returns a partial result with
        ``stats["completed"] = 0.0`` when exceeded.
    packed:
        Use the bit-packed cube counter
        (:class:`~repro.grid.packed_counter.PackedCubeCounter`) — 8x
        less mask memory, identical results; worthwhile for large N·d.
    mmap_dir:
        Directory for an out-of-core
        :class:`~repro.grid.sharded.ShardedMaskStore`.  When set, the
        packed membership masks are written there in row shards and
        counting streams them back through read-only mmap views
        (:class:`~repro.grid.sharded.ShardedCounter`) — peak counting
        memory becomes one shard plus the batch accumulator, and
        counts stay bit-identical to the in-memory counters.  A
        directory already holding the store for byte-identical data is
        reused, so resumed runs skip the packing pass.  With a
        checkpointing *controller*, per-shard progress of the in-flight
        batch is recorded too, so a killed run resumes mid-dataset.
        See ``docs/scaling.md``.
    shard_rows:
        Rows per mask shard for *mmap_dir* (default
        :data:`~repro.grid.sharded.DEFAULT_SHARD_ROWS`); shard sizing
        trades per-shard overhead against peak memory.
    spill_dir:
        Directory the degradation ladder spills the packed mask store
        to when the in-memory mask stack cannot be allocated
        (``MemoryError``): the run continues out-of-core through a
        :class:`~repro.grid.sharded.ShardedCounter` with bit-identical
        results.  ``None`` (the default) spills to a temporary
        directory removed when the counter is garbage-collected.  The
        downgrade is recorded in ``result.stats["resilience"]`` and
        emitted as a ``degradation_applied`` event.
    verify_shards:
        Verify every mask shard against its manifest checksum before
        counting it (out-of-core runs only).  A corrupt shard is
        quarantined and rebuilt from the in-memory codes; see
        :class:`~repro.grid.sharded.ShardedCounter`.
    counting:
        A :class:`~repro.core.params.CountingBackend` controlling how
        batched cube counts execute (serial in-process by default; a
        ``process`` backend fans batches out to a shared-memory worker
        pool).  Counts and results are identical across backends; the
        pool is released when :meth:`detect` returns.  The counter's
        throughput statistics land in ``result.stats["counter_stats"]``
        either way.
    controller:
        Optional :class:`~repro.run.controller.RunController` tying this
        detector into a run lifecycle: its cancel token is threaded into
        the search and the counting engine (SIGINT/SIGTERM or a
        programmatic flip stops the run at a safe boundary with
        best-so-far results), its remaining wall-clock budget caps the
        search, and — when it has a checkpoint directory — the search
        state is checkpointed at every generation/level boundary so
        ``detect(..., resume=True)`` continues bit-identically after a
        kill.  With a checkpointing controller the brute-force method
        automatically uses the ``level_batch`` strategy (the only one
        with a serializable frontier).
    event_sink:
        Optional :class:`~repro.engine.events.EventSink` receiving the
        run's typed events (``run_started``, ``generation_end`` /
        ``level_end``, ``chunk_retry``, ``checkpoint_written``,
        ``engine_finished``) — e.g. an
        :class:`~repro.engine.events.InMemoryEventSink` for tests or a
        :class:`~repro.engine.events.JsonlTraceSink` for a trace file.
        Composed with the controller's sink when both are set.
    engine_options:
        Extra keyword arguments for the engine factory (e.g.
        ``{"max_evaluations": 5000}`` for the ablation searchers, or a
        plugin engine's own options), merged over the detector-derived
        arguments before the registry's ``accepts`` filter is applied.

    Attributes (populated by :meth:`detect`)
    ----------------------------------------
    cells_:
        The grid assignment of the last dataset.
    counter_:
        The cube counter built over it.
    outcome_:
        The raw :class:`~repro.search.outcome.SearchOutcome`.
    """

    def __init__(
        self,
        dimensionality: int | None = None,
        n_ranges: int = 10,
        n_projections: int | None = 20,
        *,
        method: str = "evolutionary",
        threshold: float | None = None,
        require_nonempty: bool = True,
        target_sparsity: float = -3.0,
        config: EvolutionaryConfig | None = None,
        crossover: str | CrossoverOperator = "optimized",
        selection: SelectionOperator | None = None,
        discretizer: GridDiscretizer | None = None,
        max_seconds: float | None = None,
        packed: bool = False,
        mmap_dir=None,
        shard_rows: int | None = None,
        spill_dir=None,
        verify_shards: bool = False,
        counting: CountingBackend | None = None,
        random_state=None,
        controller: RunController | None = None,
        event_sink: EventSink | None = None,
        engine_options: Mapping | None = None,
    ):
        if dimensionality is not None:
            dimensionality = check_positive_int(dimensionality, "dimensionality")
        self.dimensionality = dimensionality
        self.n_ranges = check_positive_int(n_ranges, "n_ranges", minimum=2)
        if n_projections is None and threshold is None:
            raise ValidationError(
                "n_projections=None requires a threshold (unbounded mining)"
            )
        self.n_projections = n_projections
        engine_spec(method)  # unknown names raise ValidationError here
        self.method = method
        self.threshold = threshold
        self.require_nonempty = require_nonempty
        self.target_sparsity = target_sparsity
        self.config = config
        self.crossover = crossover
        self.selection = selection
        self.discretizer = discretizer
        self.max_seconds = max_seconds
        self.packed = bool(packed)
        self.mmap_dir = mmap_dir
        if shard_rows is not None:
            shard_rows = check_positive_int(shard_rows, "shard_rows")
        if shard_rows is not None and mmap_dir is None:
            raise ValidationError("shard_rows requires mmap_dir")
        self.shard_rows = shard_rows
        if spill_dir is not None and mmap_dir is not None:
            raise ValidationError(
                "spill_dir only applies to in-memory counters; mmap_dir "
                "runs are already out-of-core"
            )
        self.spill_dir = spill_dir
        self.verify_shards = bool(verify_shards)
        if counting is not None and not isinstance(counting, CountingBackend):
            raise ValidationError(
                f"counting must be a CountingBackend, got {type(counting).__name__}"
            )
        self.counting = counting
        self.random_state = random_state
        if controller is not None and not isinstance(controller, RunController):
            raise ValidationError(
                f"controller must be a RunController, got "
                f"{type(controller).__name__}"
            )
        self.controller = controller
        self.event_sink = event_sink
        self.engine_options = dict(engine_options) if engine_options else {}

        self.cells_ = None
        self.counter_: CubeCounter | None = None
        self.outcome_: SearchOutcome | None = None
        self.result_: DetectionResult | None = None
        self.discretizer_: GridDiscretizer | None = None
        self.model_: GridModel | None = None

    # ------------------------------------------------------------------
    def detect(
        self,
        data,
        feature_names: Sequence[str] | None = None,
        *,
        resume: bool = False,
    ) -> DetectionResult:
        """Run the full pipeline on *data* and return the result.

        *data* is an ``(N, d)`` float matrix; NaN marks missing values.
        With ``resume=True`` (requires a checkpointing *controller*) the
        search continues from its last boundary checkpoint — after a
        kill mid-run, the resumed result is bit-identical to the run
        never having been interrupted.  A checkpoint written with
        different parameters or data is rejected as stale.
        """
        if resume and (self.controller is None or self.controller.store is None):
            raise ValidationError(
                "resume=True needs a controller with a checkpoint_dir"
            )
        array = check_matrix(data, "data", min_cols=1)
        start = time.perf_counter()

        discretizer = self.discretizer or EquiDepthDiscretizer(self.n_ranges)
        # The stats sink is always present (it reconstructs the classic
        # result.stats); the user's sink — and the controller's, inside
        # build_context — see the same event stream.  It is created
        # before the counter so that build-time degradations (e.g. the
        # in-memory → sharded spill on MemoryError) can be emitted.
        stats_sink = StatsAssemblySink()
        sink = (
            stats_sink
            if self.event_sink is None
            else CompositeSink(stats_sink, self.event_sink)
        )
        # All fitted state (grid + cells + counter) lives in a GridModel
        # so the caller can keep updating/merging/rebinning it after
        # this detect call; the model routes counter construction back
        # through the detector's degradation ladder.
        model = GridModel.fit(
            array,
            feature_names=feature_names,
            discretizer=discretizer,
            counter_factory=lambda built: self._build_counter(built, sink),
            event_sink=self.event_sink,
        )
        cells = model.cells
        counter = model.counter

        k = self.resolve_dimensionality(array.shape[0], array.shape[1])
        logger.info(
            "detect: N=%d d=%d phi=%d k=%d method=%s m=%s threshold=%s backend=%s",
            array.shape[0], array.shape[1], self.n_ranges, k, self.method,
            self.n_projections, self.threshold, counter.backend.kind,
        )
        try:
            outcome = self._run_search(
                counter, k, cells=cells, resume=resume, sink=sink
            )
            result = self._postprocess(
                outcome, counter, k, time.perf_counter() - start, stats_sink,
                model=model,
            )
        finally:
            # Release the counting pool (if a process backend spun one
            # up); the counter itself stays usable serially.
            counter.close()
        logger.info(
            "detect done: %d projections (best %.3f), %d outliers, %.3fs%s",
            len(result.projections),
            result.best_coefficient,
            result.n_outliers,
            result.stats["total_elapsed_seconds"],
            "" if outcome.completed
            else f" [INCOMPLETE: {outcome.stopped_reason}]",
        )

        model.projections = result.projections
        self.cells_ = cells
        self.counter_ = counter
        self.outcome_ = outcome
        self.result_ = result
        self.discretizer_ = discretizer
        self.model_ = model
        return result

    # ------------------------------------------------------------------
    def detect_model(self, model, *, resume: bool = False) -> DetectionResult:
        """Re-mine projections on an existing :class:`~repro.model.GridModel`.

        The incremental entry point: after ``model.update(...)`` /
        ``model.merge(...)`` / ``model.rebin()`` this runs the search on
        the model's *current* counter without refitting anything.  A
        model built by one-shot batch fit and a model grown to the same
        rows through any update/merge/rebin interleaving hold
        bit-identical counts, so this mines identical projections (the
        invariant ``tests/test_model_incremental.py`` locks).  The mined
        projections are installed on the model (served by
        ``model.score``) and the detector's fitted attributes point at
        the model's state, so ``score``/``save_model`` work as usual.
        """
        if not isinstance(model, GridModel):
            raise ValidationError(
                f"detect_model needs a GridModel, got {type(model).__name__}"
            )
        if model.counter is None:
            raise ValidationError(
                "this model was restored for serving (no mask stacks); "
                "detect_model needs a full model built by GridModel.fit "
                "or detect()"
            )
        if resume and (self.controller is None or self.controller.store is None):
            raise ValidationError(
                "resume=True needs a controller with a checkpoint_dir"
            )
        start = time.perf_counter()
        cells = model.cells
        counter = model.counter
        stats_sink = StatsAssemblySink()
        sink = (
            stats_sink
            if self.event_sink is None
            else CompositeSink(stats_sink, self.event_sink)
        )
        k = self.resolve_dimensionality(cells.n_points, cells.n_dims)
        outcome = self._run_search(counter, k, cells=cells, resume=resume, sink=sink)
        result = self._postprocess(
            outcome, counter, k, time.perf_counter() - start, stats_sink,
            model=model,
        )
        model.projections = result.projections
        self.cells_ = cells
        self.counter_ = counter
        self.outcome_ = outcome
        self.result_ = result
        self.discretizer_ = model.discretizer
        self.model_ = model
        return result

    # ------------------------------------------------------------------
    def _build_counter(self, cells, sink: EventSink | None = None) -> CubeCounter:
        """The counter for one detect call: in-memory or out-of-core.

        ``mmap_dir`` selects the sharded counter (inherently packed);
        when the controller checkpoints, shard progress is recorded in
        the same checkpoint directory under the ``shard_counts``
        stream, beside the search streams.  An in-memory build that
        dies with ``MemoryError`` walks the mask-storage degradation
        ladder instead: the masks spill to a sharded on-disk store
        (``spill_dir`` or a temporary directory) and the run proceeds
        out-of-core with bit-identical counts.
        """
        checkpointer = None
        if self.controller is not None and self.controller.store is not None:
            checkpointer = ShardCheckpointer(self.controller.store)
        if self.mmap_dir is None:
            counter_cls = PackedCubeCounter if self.packed else CubeCounter
            try:
                return counter_cls(cells, backend=self.counting)
            except MemoryError as exc:
                return self._spill_counter(cells, checkpointer, sink, exc)
        store = ShardedMaskStore.build(
            cells,
            self.mmap_dir,
            shard_rows=self.shard_rows or DEFAULT_SHARD_ROWS,
        )
        return ShardedCounter(
            store,
            cells=cells,
            backend=self.counting,
            checkpointer=checkpointer,
            verify_reads=self.verify_shards,
        )

    def _spill_counter(
        self, cells, checkpointer, sink: EventSink | None, cause: MemoryError
    ) -> CubeCounter:
        """Mask-storage ladder: in-memory stack → sharded on-disk store.

        Invoked when the in-memory (packed or boolean) mask stack cannot
        be allocated.  The sharded store packs the masks one row-shard
        at a time, so its peak memory is one shard rather than the full
        stack; counts stay bit-identical (property-tested).  A second
        ``MemoryError`` here is unrecoverable and surfaces as a typed
        :class:`~repro.exceptions.ResourceError`.
        """
        directory = self.spill_dir
        temporary = directory is None
        if temporary:
            directory = tempfile.mkdtemp(prefix="repro-spill-")
        logger.warning(
            "in-memory mask allocation failed (%s); spilling masks to "
            "sharded store at %s", cause, directory,
        )
        try:
            store = ShardedMaskStore.build(
                cells, directory, shard_rows=self.shard_rows or DEFAULT_SHARD_ROWS
            )
            counter = ShardedCounter(
                store,
                cells=cells,
                backend=self.counting,
                checkpointer=checkpointer,
                verify_reads=self.verify_shards,
            )
        except MemoryError as spill_exc:
            raise ResourceError(
                "out of memory: the mask stack did not fit in memory and "
                f"the sharded spill to {directory} also failed; reduce "
                "shard_rows or run on a larger machine"
            ) from spill_exc
        if temporary:
            # The spilled store must outlive detect() — counter_ stays
            # usable for post-hoc counting — so tie cleanup to the
            # counter's lifetime, not this call's.
            weakref.finalize(counter, shutil.rmtree, directory, True)
        counter.resilience.record_degradation(
            "mask-storage", "in-memory", "sharded", f"MemoryError: {cause}"
        )
        counter.resilience.record_recovery("packed_alloc")
        if sink is not None:
            emit_event(
                sink,
                "degradation_applied",
                **{
                    "chain": "mask-storage",
                    "from": "in-memory",
                    "to": "sharded",
                    "reason": f"MemoryError: {cause}",
                },
            )
            emit_event(sink, "fault_recovered", point="packed_alloc")
        return counter

    # ------------------------------------------------------------------
    def score(self, data) -> np.ndarray:
        """Deviation scores of *new* points against the fitted model.

        Each row of *data* is mapped through the grid fitted by
        :meth:`detect`; its score is the most negative coefficient among
        the mined projections whose cube contains it, or NaN when no
        mined cube covers it (the point looks normal).  More negative =
        more abnormal, matching
        :meth:`~repro.core.results.DetectionResult.point_score`.
        """
        if self.result_ is None or self.discretizer_ is None:
            raise NotFittedError("call detect() before score()")
        array = check_matrix(data, "data")
        cells = self.discretizer_.transform(array)
        scores = np.full(array.shape[0], np.nan)
        for projection in self.result_.projections:
            covered = projection.subspace.covers(cells.codes)
            scores[covered] = np.fmin(scores[covered], projection.coefficient)
        return scores

    def predict(self, data) -> np.ndarray:
        """Boolean outlier mask for *new* points (see :meth:`score`)."""
        return ~np.isnan(self.score(data))

    def resolve_dimensionality(self, n_points: int, n_dims: int) -> int:
        """The k actually used: explicit, or Equation 2's k*, capped at d."""
        if self.dimensionality is not None:
            if self.dimensionality > n_dims:
                raise ValidationError(
                    f"dimensionality ({self.dimensionality}) exceeds the "
                    f"data dimensionality ({n_dims})"
                )
            return self.dimensionality
        k_star = choose_projection_dimensionality(
            n_points, self.n_ranges, self.target_sparsity
        )
        return min(k_star, n_dims)

    # ------------------------------------------------------------------
    def _manifest(self, k: int, cells) -> dict:
        """Run identity for checkpoint staleness checks.

        Any change to the parameters that shape the search trajectory —
        or to the discretized data itself — must invalidate old
        checkpoints.  Budgets (``max_seconds``) are deliberately
        excluded: a resumed run may legitimately get a fresh budget.
        """
        config = self.config or EvolutionaryConfig()
        params = {
            "method": self.method,
            "dimensionality": k,
            "n_ranges": self.n_ranges,
            "n_projections": self.n_projections,
            "threshold": self.threshold,
            "require_nonempty": self.require_nonempty,
            "packed": self.packed,
            "random_state": repr(self.random_state),
            "crossover": (
                self.crossover
                if isinstance(self.crossover, str)
                else type(self.crossover).__name__
            ),
            "config": {
                key: value
                for key, value in vars(config).items()
                if key != "max_seconds"
            },
        }
        return {
            "params": params_fingerprint(params),
            "data": data_fingerprint(cells.codes),
        }

    def _run_search(
        self,
        counter: CubeCounter,
        k: int,
        *,
        cells=None,
        resume: bool = False,
        sink: EventSink | None = None,
    ) -> SearchOutcome:
        """Resolve the engine through the registry and drive its run.

        The engine is constructed by the registered factory (extra
        ``engine_options`` merged over the detector-derived arguments),
        then injected with one :class:`~repro.engine.context.RunContext`
        carrying the cancel token, the remaining wall-clock budget, the
        checkpointer and the event sink.
        """
        controller = self.controller
        spec = engine_spec(self.method)
        checkpointer = None
        if (
            controller is not None
            and controller.store is not None
            and spec.supports_checkpoint
        ):
            manifest = self._manifest(k, cells) if cells is not None else None
            checkpointer = controller.checkpointer(
                f"search_k{k}", manifest=manifest
            )
        resume_from = (
            True
            if resume and checkpointer is not None and checkpointer.exists()
            else None
        )
        engine_kwargs = {
            "require_nonempty": self.require_nonempty,
            "threshold": self.threshold,
            "config": self.config,
            "crossover": self.crossover,
            "selection": self.selection,
            "random_state": self.random_state,
            "strategy": (
                "level_batch" if checkpointer is not None else "depth_first"
            ),
            **self.engine_options,
        }
        engine = create_engine(
            self.method, counter, k, self.n_projections, **engine_kwargs
        )
        if controller is not None:
            context = controller.build_context(
                counter=counter,
                checkpointer=checkpointer,
                sink=sink,
                resume_from=resume_from,
            )
            # The detector's own budget composes with the controller's
            # remaining one; the engine takes the minimum of both.
            context.max_seconds = (
                self.max_seconds
                if context.max_seconds is None
                else context.merged_budget(self.max_seconds)
            )
        else:
            context = RunContext(
                counter=counter,
                max_seconds=self.max_seconds,
                resume_from=resume_from,
            )
            if sink is not None:
                context.sink = sink
        return engine.run(context=context)

    def _postprocess(
        self,
        outcome: SearchOutcome,
        counter: CubeCounter,
        k: int,
        elapsed: float,
        stats_sink: StatsAssemblySink,
        model: GridModel | None = None,
    ) -> DetectionResult:
        """§2.3: map mined projections back to the covered points."""
        coverage: dict[int, list[int]] = {}
        for proj_index, projection in enumerate(outcome.projections):
            for point in counter.covered_points(projection.subspace):
                coverage.setdefault(int(point), []).append(proj_index)
        outlier_indices = np.array(sorted(coverage), dtype=np.intp)
        report = ResilienceReport()
        report.merge(counter.resilience)
        if self.controller is not None:
            report.merge(self.controller.resilience)
        stats = stats_sink.assemble(outcome, counter, elapsed, resilience=report)
        if model is not None:
            stats["model"] = model.stats_dict()
        if report.degraded:
            logger.warning(
                "resilience ladder engaged during detect: %s "
                "(results are bit-identical to the healthy path)",
                report.summary(),
            )
        if counter.health.degraded:
            logger.warning(
                "counting backend degraded during detect: %s "
                "(results are bit-identical to the serial backend)",
                counter.health.summary(),
            )
        return DetectionResult(
            projections=outcome.projections,
            outlier_indices=outlier_indices,
            n_points=counter.n_points,
            n_dims=counter.n_dims,
            n_ranges=counter.n_ranges,
            dimensionality=k,
            coverage={p: tuple(v) for p, v in coverage.items()},
            stats=stats,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def mined_projection(projection: ScoredProjection) -> ScoredProjection:
        """Identity helper kept for API symmetry with baselines."""
        return projection

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SubspaceOutlierDetector(method={self.method!r}, "
            f"k={self.dimensionality}, phi={self.n_ranges}, "
            f"m={self.n_projections}, threshold={self.threshold})"
        )
