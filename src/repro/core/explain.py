"""Interpretability: *why* is a point an outlier? (§1.1 desiderata).

A major selling point of the projection-based definition is that every
flagged point comes with the abnormal low-dimensional pattern that
exposed it — the paper reads these off directly (the 780 cm / 6 kg
arrhythmia record, the low-crime/low-price contrarian Boston suburb).
This module turns a :class:`~repro.core.results.DetectionResult` plus
the grid metadata back into such human-readable findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..exceptions import ValidationError
from ..grid.cells import CellAssignment
from .results import DetectionResult, ScoredProjection

__all__ = ["OutlierExplanation", "explain_point", "render_report"]


@dataclass(frozen=True)
class OutlierExplanation:
    """The abnormal patterns behind one flagged point.

    Attributes
    ----------
    point_index:
        Row index of the point in the analysed data.
    score:
        The point's deviation score (its most negative covering
        coefficient).
    projections:
        The mined projections covering the point, most negative first.
    findings:
        One human-readable line per covering projection, with the
        point's actual attribute values spliced in when raw data was
        supplied.
    """

    point_index: int
    score: float
    projections: tuple[ScoredProjection, ...]
    findings: tuple[str, ...]

    def __str__(self) -> str:
        header = f"point {self.point_index} (score {self.score:.3f})"
        if not self.findings:
            return f"{header}: not covered by any mined projection"
        body = "\n".join(f"  - {line}" for line in self.findings)
        return f"{header}:\n{body}"

    def to_dict(self) -> dict:
        """JSON-compatible representation (used by the CLI's json output)."""
        return {
            "point_index": self.point_index,
            "score": None if self.score != self.score else self.score,
            "findings": list(self.findings),
            "projections": [
                {
                    "dims": list(p.subspace.dims),
                    "ranges": list(p.subspace.ranges),
                    "count": p.count,
                    "coefficient": p.coefficient,
                    "significance": p.significance,
                }
                for p in self.projections
            ],
        }


def _finding_line(
    projection: ScoredProjection,
    cells: CellAssignment,
    row: np.ndarray | None,
    feature_names: Sequence[str] | None,
) -> str:
    """One rendered line: the pattern, its stats, the point's values."""
    clauses = []
    for dim, rng in projection.subspace:
        clause = cells.describe_range(dim, rng)
        if row is not None:
            value = row[dim]
            rendered = "missing" if np.isnan(value) else f"{value:.4g}"
            clause += f" (value {rendered})"
        clauses.append(clause)
    pattern = " AND ".join(clauses)
    return (
        f"{pattern} — only {projection.count} of {cells.n_points} records "
        f"match (sparsity {projection.coefficient:.3f}, "
        f"significance {projection.significance:.4f})"
    )


def explain_point(
    point_index: int,
    result: DetectionResult,
    cells: CellAssignment,
    data=None,
    feature_names: Sequence[str] | None = None,
) -> OutlierExplanation:
    """Build the explanation of one point from a detection result.

    Parameters
    ----------
    point_index:
        The row to explain (need not be a flagged outlier — an
        uncovered point yields an empty explanation).
    result:
        Output of :meth:`SubspaceOutlierDetector.detect`.
    cells:
        The grid assignment used by the run (``detector.cells_``).
    data:
        Optional raw matrix; when given, attribute values are included
        in the findings.
    feature_names:
        Optional names overriding those stored in *cells*.
    """
    point_index = int(point_index)
    if not 0 <= point_index < result.n_points:
        raise ValidationError(
            f"point_index must be in [0, {result.n_points}), got {point_index}"
        )
    if feature_names is None:
        feature_names = cells.feature_names
    row = None
    if data is not None:
        array = np.asarray(data, dtype=np.float64)
        row = array[point_index]
    covering = sorted(
        result.projections_covering(point_index), key=lambda p: p.coefficient
    )
    findings = tuple(
        _finding_line(projection, cells, row, feature_names)
        for projection in covering
    )
    return OutlierExplanation(
        point_index=point_index,
        score=result.point_score(point_index),
        projections=tuple(covering),
        findings=findings,
    )


def render_report(
    result: DetectionResult,
    cells: CellAssignment,
    data=None,
    *,
    top: int = 10,
    feature_names: Sequence[str] | None = None,
) -> str:
    """A full text report: summary, best projections, top outliers.

    This is what the CLI prints and what the examples show; it mirrors
    the qualitative analysis style of §3.1.
    """
    lines = [
        "Subspace outlier detection report",
        "=" * 34,
        (
            f"N={result.n_points}  d={result.n_dims}  phi={result.n_ranges}  "
            f"k={result.dimensionality}"
        ),
        (
            f"projections mined: {len(result.projections)}   "
            f"outliers: {result.n_outliers}   "
            f"best coefficient: {result.best_coefficient:.3f}"
        ),
        "",
        "Most abnormal projections:",
    ]
    names = feature_names if feature_names is not None else cells.feature_names
    for projection in result.projections[:top]:
        lines.append(f"  {projection.describe(names)}")
    lines.append("")
    lines.append(f"Top {top} outliers:")
    for point, score in result.ranked_outliers()[:top]:
        explanation = explain_point(point, result, cells, data, names)
        lines.append(str(explanation))
    return "\n".join(lines)
