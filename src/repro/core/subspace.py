"""Subspace cubes: the unit of search in Aggarwal-Yu outlier detection.

A *subspace* (the paper calls it a k-dimensional cube, or a projection
with grid ranges) is a choice of ``k`` distinct dimensions together with
one grid range per chosen dimension.  The paper encodes these as strings
over the alphabet ``{1..phi, *}`` where ``*`` is a "don't care" — e.g.
``*3*9`` fixes the second dimension to range 3 and the fourth to range 9
in 4-dimensional data.

This module stores ranges **0-based** internally (range ``r`` covers the
``r``-th equi-depth interval produced by the discretizer) while the
string codec speaks the paper's 1-based dialect, so examples from the
paper round-trip verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import ValidationError

__all__ = ["Subspace", "WILDCARD"]

#: The "don't care" marker used by the string codec.
WILDCARD = "*"


@dataclass(frozen=True, slots=True)
class Subspace:
    """An immutable k-dimensional cube: paired dimensions and grid ranges.

    Parameters
    ----------
    dims:
        Strictly ascending tuple of 0-based dimension indices.
    ranges:
        Tuple of 0-based grid-range indices, aligned with ``dims``.

    Notes
    -----
    Instances are hashable and totally determined by ``(dims, ranges)``;
    the searchers use them as cache keys for cube counts.
    """

    dims: tuple[int, ...]
    ranges: tuple[int, ...]

    def __post_init__(self) -> None:
        dims = tuple(int(d) for d in self.dims)
        ranges = tuple(int(r) for r in self.ranges)
        if len(dims) != len(ranges):
            raise ValidationError(
                f"dims and ranges must have equal length, got {len(dims)} and {len(ranges)}"
            )
        if any(d < 0 for d in dims):
            raise ValidationError(f"dimension indices must be >= 0, got {dims}")
        if any(r < 0 for r in ranges):
            raise ValidationError(f"range indices must be >= 0, got {ranges}")
        if any(a >= b for a, b in zip(dims, dims[1:], strict=False)):
            raise ValidationError(f"dims must be strictly ascending, got {dims}")
        object.__setattr__(self, "dims", dims)
        object.__setattr__(self, "ranges", ranges)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[int, int]]) -> "Subspace":
        """Build a subspace from unordered ``(dimension, range)`` pairs."""
        items = sorted((int(d), int(r)) for d, r in pairs)
        dims = tuple(d for d, _ in items)
        ranges = tuple(r for _, r in items)
        return cls(dims, ranges)

    @classmethod
    def empty(cls) -> "Subspace":
        """The 0-dimensional subspace that covers every point."""
        return cls((), ())

    @classmethod
    def from_string(cls, text: str) -> "Subspace":
        """Parse a paper-style solution string into a subspace.

        Two dialects are accepted:

        * compact — one character per gene, ranges ``1``–``9``:
          ``Subspace.from_string("*3*9")``
        * delimited — comma-separated genes for ``phi > 9``:
          ``Subspace.from_string("*,12,*,3")``

        Ranges in the text are 1-based (the paper's convention) and are
        converted to the library's 0-based representation.
        """
        text = text.strip()
        if not text:
            raise ValidationError("cannot parse an empty solution string")
        genes = text.split(",") if "," in text else list(text)
        pairs: list[tuple[int, int]] = []
        for position, gene in enumerate(genes):
            gene = gene.strip()
            if gene == WILDCARD:
                continue
            try:
                value = int(gene)
            except ValueError:
                raise ValidationError(
                    f"gene {position} must be '*' or an integer, got {gene!r}"
                ) from None
            if value < 1:
                raise ValidationError(f"gene {position} must be >= 1 (1-based), got {value}")
            pairs.append((position, value - 1))
        return cls.from_pairs(pairs)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def dimensionality(self) -> int:
        """Number of fixed dimensions (the paper's ``k``)."""
        return len(self.dims)

    def __len__(self) -> int:
        return len(self.dims)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(zip(self.dims, self.ranges, strict=True))

    def range_for(self, dim: int) -> int | None:
        """Return the 0-based range fixed for *dim*, or None if free."""
        try:
            return self.ranges[self.dims.index(dim)]
        except ValueError:
            return None

    def uses_dimension(self, dim: int) -> bool:
        """True if *dim* is one of the fixed dimensions."""
        return dim in self.dims

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def extended(self, dim: int, range_index: int) -> "Subspace":
        """Return a new subspace with ``(dim, range_index)`` added.

        This is the paper's ``⊕`` concatenation restricted to a single
        1-dimensional projection.  Extending with a dimension already in
        the subspace is an error — the paper notes it "only makes sense
        to concatenate with grid ranges from dimensions not included".
        """
        if self.uses_dimension(dim):
            raise ValidationError(f"dimension {dim} is already fixed in {self!r}")
        return Subspace.from_pairs(list(zip(self.dims, self.ranges, strict=True)) + [(dim, range_index)])

    def restricted_to(self, dims: Sequence[int]) -> "Subspace":
        """Return the sub-cube using only the fixed dims listed in *dims*."""
        keep = set(int(d) for d in dims)
        return Subspace.from_pairs((d, r) for d, r in self if d in keep)

    def is_subspace_of(self, other: "Subspace") -> bool:
        """True if every (dim, range) pair of self also appears in other."""
        pairs = set(zip(other.dims, other.ranges, strict=True))
        return all(pair in pairs for pair in zip(self.dims, self.ranges, strict=True))

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------
    def covers(self, cells: np.ndarray) -> np.ndarray:
        """Boolean mask of rows whose grid cells match this cube.

        Parameters
        ----------
        cells:
            ``(N, d)`` integer array of 0-based grid-range codes as
            produced by :class:`repro.grid.cells.CellAssignment`;
            negative entries mark missing values and never match.

        Returns
        -------
        numpy.ndarray
            ``(N,)`` boolean array, True where the point lies in the
            cube on **all** fixed dimensions.
        """
        cells = np.asarray(cells)
        if cells.ndim != 2:
            raise ValidationError(f"cells must be 2-dimensional, got ndim={cells.ndim}")
        if self.dims and self.dims[-1] >= cells.shape[1]:
            raise ValidationError(
                f"subspace uses dimension {self.dims[-1]} but cells has "
                f"only {cells.shape[1]} columns"
            )
        mask = np.ones(len(cells), dtype=bool)
        for dim, rng in self:
            mask &= cells[:, dim] == rng
        return mask

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_string(self, n_dims: int, *, compact: bool | None = None) -> str:
        """Render as a paper-style solution string of length *n_dims*.

        Ranges are printed 1-based.  With ``compact=None`` the compact
        single-character dialect is chosen automatically when every
        range fits in one digit; pass ``compact=False`` to force the
        comma-delimited dialect.
        """
        if self.dims and self.dims[-1] >= n_dims:
            raise ValidationError(
                f"subspace uses dimension {self.dims[-1]} but n_dims={n_dims}"
            )
        genes = [WILDCARD] * n_dims
        for dim, rng in self:
            genes[dim] = str(rng + 1)
        if compact is None:
            compact = all(len(g) == 1 for g in genes)
        if compact:
            if any(len(g) > 1 for g in genes):
                raise ValidationError(
                    "compact rendering requires every range <= 9; use compact=False"
                )
            return "".join(genes)
        return ",".join(genes)

    def describe(self, feature_names: Sequence[str] | None = None) -> str:
        """Human-readable description, e.g. ``crime∈range 8 & tax∈range 1``."""
        parts = []
        for dim, rng in self:
            name = feature_names[dim] if feature_names is not None else f"dim{dim}"
            parts.append(f"{name}∈range {rng + 1}")
        return " & ".join(parts) if parts else "(empty subspace)"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"{d}:{r}" for d, r in self)
        return f"Subspace({body})"
