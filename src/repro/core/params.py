"""Projection-parameter selection (§2.4 / Equation 2).

The dimensionality ``k`` of mined projections cannot be chosen freely:
too large and *every* cube is empty by default (no cube both attains a
very negative sparsity coefficient and covers at least one point), too
small and projections are insufficiently specific.  §2.4 derives the
sweet spot from the sparsity coefficient of an **empty** cube,

    S_empty = −sqrt(N / (φ^k − 1)),

and solves ``S_empty = s`` for the user's target significance ``s``
(−3 by default, the "99.9%" reference point):

    k* = floor( log_φ( N / s² + 1 ) )            (Equation 2)

``k*`` is "the largest value of k at which abnormally sparse projections
may be found before the effects of high dimensionality result in sparse
projections by default", and also the most informative choice.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from .._validation import check_in_range, check_positive_int
from ..exceptions import ValidationError

__all__ = [
    "CountingBackend",
    "FaultPlan",
    "empty_cube_sparsity",
    "expected_cube_count",
    "choose_projection_dimensionality",
    "ParameterAdvisor",
]


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for the process counting backend.

    A plan names the chunks (by their run-wide dispatch sequence number,
    starting at 0) on which a worker should misbehave, so chaos
    scenarios are exactly reproducible: the chunking of a batch is
    deterministic, hence so is the chunk a fault lands on.  Plans are
    inert in production — ``CountingBackend.fault_plan`` defaults to
    ``None`` and no fault checks run.

    Attributes
    ----------
    kill_worker_on_chunk:
        Chunk id on which the executing worker dies hard
        (``os._exit``), breaking the whole pool exactly like a real
        worker crash (``BrokenProcessPool``).
    delay_chunk:
        Chunk id the worker stalls on for ``delay_seconds`` before
        counting — the hung-chunk scenario a per-chunk timeout catches.
    delay_seconds:
        Stall duration for ``delay_chunk``.
    fail_shm_attach_once:
        Worker initializers of the *first* pool generation raise before
        attaching the shared-memory mask stack; the rebuilt pool
        attaches normally.
    trigger_limit:
        Fire the kill/delay faults only on the first this-many dispatch
        attempts of their chunk (attempts are 1-based).  ``None`` (the
        default) fires on every attempt, which forces the chunk all the
        way down to the serial fallback; ``trigger_limit=1`` lets the
        first retry succeed.
    """

    kill_worker_on_chunk: int | None = None
    delay_chunk: int | None = None
    delay_seconds: float = 0.25
    fail_shm_attach_once: bool = False
    trigger_limit: int | None = None

    def __post_init__(self) -> None:
        if self.kill_worker_on_chunk is not None:
            check_positive_int(
                self.kill_worker_on_chunk, "kill_worker_on_chunk", minimum=0
            )
        if self.delay_chunk is not None:
            check_positive_int(self.delay_chunk, "delay_chunk", minimum=0)
        if self.delay_seconds < 0:
            raise ValidationError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )
        if self.trigger_limit is not None:
            check_positive_int(self.trigger_limit, "trigger_limit")

    def applies(self, attempt: int) -> bool:
        """Whether faults fire on this (1-based) dispatch attempt."""
        return self.trigger_limit is None or attempt <= self.trigger_limit


@dataclass(frozen=True)
class CountingBackend:
    """Execution policy for batched cube counting (``count_batch``).

    Attributes
    ----------
    kind:
        Name of a registered counting backend (see
        :mod:`repro.grid.backends`).  ``"serial"`` evaluates batches
        in-process with the vectorized numpy AND/popcount kernel;
        ``"native"`` runs the compiled kernel (numba → C → numpy
        fallback) in-process; ``"process"`` / ``"process-native"``
        additionally fan chunks of a batch out to a pool of worker
        processes that attach to the counter's membership masks through
        shared memory and run the same kernel.  Counts are integers,
        chunk boundaries are deterministic, chunk results are
        reassembled in submission order, and every kernel is proven
        bit-identical to the reference before it serves counts — so all
        kinds return bit-identical results for any worker count.
    n_workers:
        Size of the process pool (``None`` → ``os.cpu_count()``).
        Ignored by the serial backend.
    chunk_size:
        Cubes per worker task.  Batches no larger than one chunk are
        evaluated in-process even under the process backend, since the
        pool round-trip would dominate.
    timeout:
        Seconds to wait for one chunk before declaring it hung
        (``None`` disables the watchdog — the default, so healthy runs
        pay no overhead).  A timed-out chunk counts as a failed attempt
        and the pool is rebuilt, since a wedged worker cannot be
        reclaimed.
    max_retries:
        Failed dispatch attempts per chunk before that chunk degrades
        to the in-process serial kernel (bit-identical counts).
    retry_backoff:
        Base of the exponential backoff slept between retry waves.
    max_rebuilds:
        Pool rebuilds (after ``BrokenProcessPool`` or a timeout) before
        the pool is abandoned and the whole run degrades to serial.
    fault_plan:
        Optional deterministic :class:`FaultPlan` injected into the
        workers — test-only chaos; ``None`` in production.
    """

    kind: str = "serial"
    n_workers: int | None = None
    chunk_size: int = 4096
    timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.05
    max_rebuilds: int = 3
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        # Late import: the registry lives in the grid layer, which
        # imports this module for the policy dataclasses.
        from ..grid.backends import get_backend

        get_backend(self.kind)  # raises with the menu of valid names
        if self.n_workers is not None:
            check_positive_int(self.n_workers, "n_workers")
        check_positive_int(self.chunk_size, "chunk_size")
        if self.timeout is not None and self.timeout <= 0:
            raise ValidationError(f"timeout must be > 0, got {self.timeout}")
        check_positive_int(self.max_retries, "max_retries", minimum=0)
        if self.retry_backoff < 0:
            raise ValidationError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        check_positive_int(self.max_rebuilds, "max_rebuilds", minimum=0)
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ValidationError(
                f"fault_plan must be a FaultPlan, got "
                f"{type(self.fault_plan).__name__}"
            )

    def resolved_workers(self) -> int:
        """The effective pool size: ``n_workers`` or the CPU count."""
        if self.n_workers is not None:
            return self.n_workers
        return os.cpu_count() or 1

    def retry_policy(self):
        """This backend's knobs as a shared :class:`RetryPolicy`.

        ``max_retries`` counts retries, the policy counts attempts, so
        ``max_attempts = max_retries + 1`` — the pool's historical
        "initial dispatch plus ``max_retries`` redispatches" behaviour
        is preserved exactly.
        """
        # Late import for the same layering reason as get_backend above.
        from ..resilience.retry import RetryPolicy

        return RetryPolicy(
            max_attempts=self.max_retries + 1,
            backoff=self.retry_backoff,
            backoff_cap=1.0,
        )


def expected_cube_count(n_points: int, n_ranges: int, dimensionality: int) -> float:
    """Expected points per k-dimensional cube, ``N / φ^k``."""
    n_points = check_positive_int(n_points, "n_points")
    n_ranges = check_positive_int(n_ranges, "n_ranges")
    dimensionality = check_positive_int(dimensionality, "dimensionality", minimum=0)
    return n_points / float(n_ranges**dimensionality)


def empty_cube_sparsity(n_points: int, n_ranges: int, dimensionality: int) -> float:
    """Sparsity coefficient of an empty k-dimensional cube.

    From Equation 1 with ``n(D) = 0``:

        S = −N·f^k / sqrt(N·f^k·(1−f^k)) = −sqrt(N / (φ^k − 1)).

    This is the most negative coefficient any cube can attain, so it
    bounds how significant a k-dimensional finding can possibly be.
    """
    n_points = check_positive_int(n_points, "n_points")
    n_ranges = check_positive_int(n_ranges, "n_ranges", minimum=2)
    dimensionality = check_positive_int(dimensionality, "dimensionality")
    return -math.sqrt(n_points / (float(n_ranges) ** dimensionality - 1.0))


def choose_projection_dimensionality(
    n_points: int,
    n_ranges: int,
    target_sparsity: float = -3.0,
) -> int:
    """Equation 2: ``k* = floor(log_φ(N/s² + 1))``.

    Parameters
    ----------
    n_points:
        Dataset size N.
    n_ranges:
        Grid resolution φ.
    target_sparsity:
        The user's significance reference ``s`` (must be negative;
        −3 ≈ 99.9% under the normal approximation).

    Returns
    -------
    int
        ``k*``, at least 1.  Because of the floor, the *effective*
        sparsity of an empty k*-cube is slightly more negative than
        ``s`` — exactly the rounding behaviour the paper describes.
    """
    n_points = check_positive_int(n_points, "n_points")
    n_ranges = check_positive_int(n_ranges, "n_ranges", minimum=2)
    target_sparsity = check_in_range(target_sparsity, "target_sparsity", high=0.0)
    if target_sparsity == 0.0:
        raise ValidationError("target_sparsity must be strictly negative")
    k_star = math.floor(math.log(n_points / target_sparsity**2 + 1.0, n_ranges))
    return max(1, k_star)


@dataclass(frozen=True)
class ParameterAdvisor:
    """Bundles §2.4's parameter guidance for one dataset.

    Example
    -------
    >>> advisor = ParameterAdvisor(n_points=10_000, n_ranges=10)
    >>> advisor.recommended_k()
    3
    >>> round(advisor.empty_cube_sparsity(advisor.recommended_k()), 3)
    -3.164
    """

    n_points: int
    n_ranges: int = 10
    target_sparsity: float = -3.0

    def __post_init__(self) -> None:
        check_positive_int(self.n_points, "n_points")
        check_positive_int(self.n_ranges, "n_ranges", minimum=2)
        check_in_range(self.target_sparsity, "target_sparsity", high=0.0)
        if self.target_sparsity == 0.0:
            raise ValidationError("target_sparsity must be strictly negative")

    def recommended_k(self) -> int:
        """``k*`` from Equation 2 for this dataset."""
        return choose_projection_dimensionality(
            self.n_points, self.n_ranges, self.target_sparsity
        )

    def empty_cube_sparsity(self, dimensionality: int) -> float:
        """Best-case (most negative) coefficient at dimensionality *k*."""
        return empty_cube_sparsity(self.n_points, self.n_ranges, dimensionality)

    def expected_cube_count(self, dimensionality: int) -> float:
        """Expected points per cube at dimensionality *k*."""
        return expected_cube_count(self.n_points, self.n_ranges, dimensionality)

    def feasible_dimensionalities(self) -> list[int]:
        """All k in [1, k*] — the range where non-trivial findings exist."""
        return list(range(1, self.recommended_k() + 1))

    def summary(self) -> str:
        """One-paragraph human-readable recommendation."""
        k_star = self.recommended_k()
        return (
            f"N={self.n_points}, φ={self.n_ranges}, s={self.target_sparsity}: "
            f"recommended projection dimensionality k*={k_star} "
            f"(empty-cube sparsity {self.empty_cube_sparsity(k_star):.3f}, "
            f"expected {self.expected_cube_count(k_star):.2f} points per cube)"
        )
