"""Intensional knowledge: minimal abnormal subspaces of a single point.

The paper's introduction credits Knorr & Ng [23] with the idea of
*intensional knowledge* — explaining an outlier by the minimal subsets
of attributes in which it is outlying — while criticizing their
roll-up/drill-down search as too expensive in high dimensions.  This
module provides the same interpretability primitive in the Aggarwal-Yu
measure: for one point, the **minimal** cubes (with the point's own
grid ranges) whose sparsity coefficient passes a significance
threshold, i.e. no proper sub-cube is already abnormal.

Unlike the global projection search, this is point-local: the candidate
cubes are anchored to the point's own cell codes, so the search space
is ``C(d, k)`` instead of ``C(d, k)·φ^k``, and minimality pruning cuts
it down further (supersets of an abnormal cube are skipped).  This is
practical up to ``max_dimensionality`` ≈ 3 even at hundreds of
dimensions, and the benchmarks use it to reproduce the paper's
"examine the reported projections" analyses programmatically.
"""

from __future__ import annotations

from itertools import combinations

from .._validation import check_in_range, check_positive_int
from ..exceptions import ValidationError
from ..grid.counter import CubeCounter
from ..sparsity.coefficient import sparsity_coefficient
from .results import ScoredProjection
from .subspace import Subspace

__all__ = ["minimal_abnormal_subspaces"]


def minimal_abnormal_subspaces(
    point_index: int,
    counter: CubeCounter,
    *,
    threshold: float = -3.0,
    max_dimensionality: int = 3,
    max_candidates: int = 2_000_000,
) -> list[ScoredProjection]:
    """Minimal cubes containing *point_index* that are abnormally sparse.

    Parameters
    ----------
    point_index:
        The point to explain.
    counter:
        The cube-counting engine over the discretized data.
    threshold:
        Sparsity-coefficient cutoff (≤ threshold counts as abnormal).
    max_dimensionality:
        Largest cube dimensionality explored.
    max_candidates:
        Safety cap on the number of candidate cubes (raises
        ``ValidationError`` when exceeded, rather than silently
        truncating coverage).

    Returns
    -------
    list[ScoredProjection]
        The minimal abnormal cubes, most negative coefficient first.
        *Minimal* means no returned cube contains another abnormal
        cube; supersets of abnormal cubes are pruned during the level-
        wise sweep, so each explanation is as small as possible.

    Notes
    -----
    Dimensions where the point's value is missing are skipped — a cube
    on a missing coordinate cannot contain the point (§1.2 semantics).
    """
    check_positive_int(max_dimensionality, "max_dimensionality")
    check_in_range(threshold, "threshold", high=0.0)
    if not 0 <= point_index < counter.n_points:
        raise ValidationError(
            f"point_index must be in [0, {counter.n_points}), got {point_index}"
        )
    codes = counter.cells.codes[point_index]
    observed = [dim for dim in range(counter.n_dims) if codes[dim] >= 0]

    total = 0
    for k in range(1, max_dimensionality + 1):
        level = 1
        for i in range(k):
            level = level * (len(observed) - i) // (i + 1)
        total += level
    if total > max_candidates:
        raise ValidationError(
            f"{total} candidate cubes exceed max_candidates="
            f"{max_candidates}; lower max_dimensionality"
        )

    found: list[ScoredProjection] = []
    abnormal_dim_sets: list[frozenset[int]] = []
    for k in range(1, max_dimensionality + 1):
        for dims in combinations(observed, k):
            dim_set = frozenset(dims)
            # Minimality pruning: skip supersets of known abnormal cubes.
            if any(prior <= dim_set for prior in abnormal_dim_sets):
                continue
            cube = Subspace(dims, tuple(int(codes[d]) for d in dims))
            count = counter.count(cube)
            coefficient = sparsity_coefficient(
                count, counter.n_points, counter.n_ranges, k
            )
            if coefficient <= threshold:
                found.append(ScoredProjection(cube, count, coefficient))
                abnormal_dim_sets.append(dim_set)
    found.sort(key=lambda p: (p.coefficient, p.subspace.dims))
    return found
