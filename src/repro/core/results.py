"""Result containers: scored projections and full detection results.

The searchers return :class:`ScoredProjection` records (a cube plus its
count and sparsity coefficient).  The detector facade aggregates them —
together with the §2.3 postprocessing that maps cubes back to the data
points covering them — into a :class:`DetectionResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import ValidationError
from ..sparsity.statistics import significance_of_coefficient
from .subspace import Subspace

__all__ = ["ScoredProjection", "DetectionResult"]


@dataclass(frozen=True, slots=True)
class ScoredProjection:
    """A subspace cube together with its evaluation.

    Attributes
    ----------
    subspace:
        The cube (fixed dimensions + grid ranges).
    count:
        ``n(D)`` — points inside the cube.
    coefficient:
        The sparsity coefficient ``S(D)`` (Equation 1).
    """

    subspace: Subspace
    count: int
    coefficient: float

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValidationError(f"count must be >= 0, got {self.count}")

    @property
    def dimensionality(self) -> int:
        """k — number of fixed dimensions of the cube."""
        return self.subspace.dimensionality

    @property
    def is_empty(self) -> bool:
        """True if the cube covers no points (useless for outliers)."""
        return self.count == 0

    @property
    def significance(self) -> float:
        """Confidence (0..1) that the cube is abnormally sparse."""
        return significance_of_coefficient(self.coefficient)

    def describe(self, feature_names: Sequence[str] | None = None) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.subspace.describe(feature_names)}  "
            f"[n={self.count}, S={self.coefficient:.3f}, "
            f"significance={self.significance:.4f}]"
        )


@dataclass(frozen=True)
class DetectionResult:
    """Everything a detection run produced.

    Attributes
    ----------
    projections:
        The mined abnormal projections, most negative coefficient
        first.
    outlier_indices:
        Ascending indices of the points covered by at least one mined
        projection (§2.3 postprocessing) — the paper's set ``O``.
    n_points, n_dims, n_ranges, dimensionality:
        The run's N, d, φ and k.
    coverage:
        Mapping from outlier point index to the indices (into
        ``projections``) of the cubes covering it.  This is the raw
        material of interpretability (§1.1).
    stats:
        Search metadata (elapsed seconds, evaluations, generations...).
        Runs through :class:`~repro.core.detector.SubspaceOutlierDetector`
        also carry ``stats["counter_stats"]`` (counting throughput) and
        ``stats["backend_health"]`` (fault-tolerance telemetry).
    """

    projections: tuple[ScoredProjection, ...]
    outlier_indices: np.ndarray
    n_points: int
    n_dims: int
    n_ranges: int
    dimensionality: int
    coverage: Mapping[int, tuple[int, ...]] = field(default_factory=dict)
    stats: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "projections", tuple(self.projections))
        indices = np.asarray(self.outlier_indices, dtype=np.intp)
        if indices.ndim != 1:
            raise ValidationError("outlier_indices must be 1-dimensional")
        if indices.size and (indices.min() < 0 or indices.max() >= self.n_points):
            raise ValidationError("outlier_indices out of range")
        object.__setattr__(self, "outlier_indices", np.sort(indices))

    # ------------------------------------------------------------------
    @property
    def n_outliers(self) -> int:
        """Number of points flagged as outliers."""
        return int(self.outlier_indices.size)

    @property
    def best_coefficient(self) -> float:
        """Most negative sparsity coefficient among mined projections."""
        if not self.projections:
            return float("nan")
        return self.projections[0].coefficient

    @property
    def stopped_reason(self) -> str:
        """Why the underlying search returned (see ``SearchOutcome``).

        One of ``converged | generation_cap | deadline | evaluation_cap
        | cancelled``; results from older payloads without the field
        report ``"converged"``.
        """
        return str(self.stats.get("stopped_reason", "converged"))

    @property
    def cancelled(self) -> bool:
        """True when a cooperative cancellation stopped the search."""
        return self.stopped_reason == "cancelled"

    @property
    def backend_health(self) -> dict:
        """The run's counting-backend telemetry (empty if not recorded)."""
        return dict(self.stats.get("backend_health") or {})

    @property
    def backend_degraded(self) -> bool:
        """True if the counting backend retried, rebuilt or fell back.

        Counts are bit-identical across backends even under
        degradation, so a True here flags an infrastructure problem —
        never a correctness one.
        """
        health = self.backend_health
        return bool(
            health.get("retries")
            or health.get("timeouts")
            or health.get("rebuilds")
            or health.get("fallbacks")
            or health.get("pool_degraded")
            or health.get("pool_unavailable")
        )

    def mean_coefficient(self, top: int | None = None) -> float:
        """Mean coefficient of the best *top* projections (Table 1 "quality").

        With ``top=None`` averages over all mined projections.
        """
        chosen = self.projections if top is None else self.projections[:top]
        if not chosen:
            return float("nan")
        return float(np.mean([p.coefficient for p in chosen]))

    def outlier_mask(self) -> np.ndarray:
        """Length-N boolean mask of flagged points."""
        mask = np.zeros(self.n_points, dtype=bool)
        mask[self.outlier_indices] = True
        return mask

    def point_score(self, point_index: int) -> float:
        """Deviation score of a point: its best covering coefficient.

        More negative = more abnormal; ``nan`` if the point is covered
        by no mined projection.
        """
        covering = self.coverage.get(int(point_index), ())
        if not covering:
            return float("nan")
        return min(self.projections[i].coefficient for i in covering)

    def ranked_outliers(self) -> list[tuple[int, float]]:
        """Outliers as ``(point_index, score)``, most abnormal first.

        Ties on score break by coverage multiplicity (covered by more
        abnormal cubes first) and then by index for determinism.
        """

        def sort_key(point: int) -> tuple[float, int, int]:
            return (self.point_score(point), -len(self.coverage.get(point, ())), point)

        ordered = sorted((int(i) for i in self.outlier_indices), key=sort_key)
        return [(i, self.point_score(i)) for i in ordered]

    def projections_covering(self, point_index: int) -> list[ScoredProjection]:
        """All mined projections that cover *point_index*."""
        return [self.projections[i] for i in self.coverage.get(int(point_index), ())]

    def __iter__(self) -> Iterator[ScoredProjection]:
        return iter(self.projections)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DetectionResult(projections={len(self.projections)}, "
            f"outliers={self.n_outliers}, k={self.dimensionality}, "
            f"phi={self.n_ranges})"
        )
