"""Core public objects: subspaces, detector facade, results, parameters."""

from .subspace import Subspace
from .params import (
    choose_projection_dimensionality,
    empty_cube_sparsity,
    expected_cube_count,
    ParameterAdvisor,
)
from .results import DetectionResult, ScoredProjection
from .detector import SubspaceOutlierDetector
from .explain import OutlierExplanation, explain_point, render_report
from .intensional import minimal_abnormal_subspaces
from .multik import MultiKResult, detect_across_dimensionalities

__all__ = [
    "Subspace",
    "choose_projection_dimensionality",
    "empty_cube_sparsity",
    "expected_cube_count",
    "ParameterAdvisor",
    "DetectionResult",
    "ScoredProjection",
    "SubspaceOutlierDetector",
    "OutlierExplanation",
    "explain_point",
    "render_report",
    "minimal_abnormal_subspaces",
    "MultiKResult",
    "detect_across_dimensionalities",
]
