"""Multi-dimensionality mining: one run per k, as the paper's housing analysis.

§3.1's housing experiment mines "interesting 3- and 4-dimensional
projections"; §2.4 notes every k ≤ k* is informative at its own
significance scale.  This helper runs the detector once per requested
dimensionality and aggregates the per-k results — keeping them
*separate*, because sparsity coefficients at different k are not
comparable (§1.1's explicit desideratum).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

import numpy as np

from .._validation import check_matrix
from ..engine.stats import merge_backend_health
from ..exceptions import SearchCancelled, ValidationError
from ..run.cancel import check_stop_reason
from ..run.checkpoint import params_fingerprint
from ..run.controller import RunController
from .detector import SubspaceOutlierDetector
from .params import CountingBackend, choose_projection_dimensionality
from .results import DetectionResult

__all__ = ["MultiKResult", "detect_across_dimensionalities"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class MultiKResult:
    """Per-dimensionality detection results plus a merged outlier view.

    ``stopped_reason`` reports how the *sweep* ended: ``converged``
    when every requested k ran to its natural end, ``cancelled`` /
    ``deadline`` when the run was interrupted — the ``results`` then
    hold every completed k plus the in-flight k's best-so-far partial.
    """

    results: Mapping[int, DetectionResult]
    stopped_reason: str = "converged"

    def __post_init__(self) -> None:
        if not self.results:
            raise ValidationError("MultiKResult needs at least one k")
        object.__setattr__(self, "results", dict(self.results))
        check_stop_reason(self.stopped_reason)

    @property
    def cancelled(self) -> bool:
        """True when a cooperative cancellation stopped the sweep."""
        return self.stopped_reason == "cancelled"

    @property
    def dimensionalities(self) -> list[int]:
        """The mined k values, ascending."""
        return sorted(self.results)

    def outlier_union(self) -> np.ndarray:
        """Points flagged at *any* dimensionality, ascending."""
        union: set[int] = set()
        for result in self.results.values():
            union.update(int(i) for i in result.outlier_indices)
        return np.array(sorted(union), dtype=np.intp)

    def outlier_intersection(self) -> np.ndarray:
        """Points flagged at *every* dimensionality, ascending."""
        iterator = iter(self.results.values())
        common = set(int(i) for i in next(iterator).outlier_indices)
        for result in iterator:
            common &= set(int(i) for i in result.outlier_indices)
        return np.array(sorted(common), dtype=np.intp)

    def flagging_dimensionalities(self, point_index: int) -> list[int]:
        """Which k values flag *point_index* (interpretability aid)."""
        return [
            k
            for k in self.dimensionalities
            if int(point_index) in set(self.results[k].outlier_indices.tolist())
        ]

    def backend_health_totals(self) -> dict:
        """Fault-tolerance telemetry summed over every per-k run.

        Long multi-run sweeps are exactly where a single crashed worker
        must not lose the whole job; this aggregates each run's
        ``stats["backend_health"]`` counters (booleans OR together) so
        ensemble drivers can check one record instead of |K|.
        """
        return merge_backend_health(
            result.backend_health for result in self.results.values()
        )

    @property
    def backend_degraded(self) -> bool:
        """True if any per-k run's counting backend degraded."""
        return any(r.backend_degraded for r in self.results.values())

    def summary_lines(self) -> list[str]:
        """One line per k plus the union/intersection counts."""
        lines = []
        for k in self.dimensionalities:
            result = self.results[k]
            lines.append(
                f"k={k}: {len(result.projections)} projections "
                f"(best {result.best_coefficient:.3f}), "
                f"{result.n_outliers} outliers"
            )
        lines.append(
            f"union {self.outlier_union().size} outliers, "
            f"intersection {self.outlier_intersection().size}"
        )
        if self.stopped_reason != "converged":
            lines.append(f"stopped early: {self.stopped_reason}")
        if self.backend_degraded:
            totals = self.backend_health_totals()
            lines.append(
                "backend degraded: "
                f"{totals['retries']} retries, {totals['timeouts']} timeouts, "
                f"{totals['rebuilds']} rebuilds, {totals['fallbacks']} fallbacks"
            )
        return lines


def detect_across_dimensionalities(
    data,
    dimensionalities: Sequence[int] | None = None,
    *,
    feature_names=None,
    counting: CountingBackend | None = None,
    detector_kwargs: Mapping | None = None,
    controller: RunController | None = None,
    resume: bool = False,
) -> MultiKResult:
    """Run the detector once per k and aggregate.

    Parameters
    ----------
    data:
        ``(N, d)`` matrix; NaN = missing.
    dimensionalities:
        The k values to mine; ``None`` mines every k in ``[1, k*]``
        (Equation 2's feasible range for the configured φ).
    counting:
        Optional :class:`~repro.core.params.CountingBackend` applied to
        every per-k run (the multi-k sweep repeats the whole search per
        dimensionality, so a process backend pays off here first).
    detector_kwargs:
        Forwarded to every :class:`SubspaceOutlierDetector` (must not
        contain ``dimensionality``).
    controller:
        Optional :class:`~repro.run.controller.RunController` shared by
        every per-k run: one wall-clock budget for the whole sweep, one
        cancel token (SIGINT/SIGTERM stops the sweep at a safe boundary
        with every completed k plus the in-flight k's partial result),
        and — with a checkpoint directory — one checkpoint store holding
        each completed k's result and the in-flight k's search state.
    resume:
        Continue an interrupted sweep from the controller's checkpoint
        directory: completed ks are loaded from their result
        checkpoints (no recomputation), the in-flight k resumes from
        its search checkpoint bit-identically, and the remaining ks run
        fresh.

    Raises
    ------
    SearchCancelled
        When the run is cancelled before the first k produced any
        result.
    """
    array = check_matrix(data, "data")
    kwargs = dict(detector_kwargs or {})
    if "dimensionality" in kwargs or "controller" in kwargs:
        raise ValidationError(
            "pass dimensionalities and controller as their own arguments, "
            "not in detector_kwargs"
        )
    if counting is not None:
        kwargs["counting"] = counting
    if resume and (controller is None or controller.store is None):
        raise ValidationError(
            "resume=True needs a controller with a checkpoint_dir"
        )
    if dimensionalities is None:
        phi = int(kwargs.get("n_ranges", 10))
        target = float(kwargs.get("target_sparsity", -3.0))
        k_star = choose_projection_dimensionality(array.shape[0], phi, target)
        dimensionalities = range(1, min(k_star, array.shape[1]) + 1)
    ks = sorted({int(k) for k in dimensionalities})
    if not ks:
        raise ValidationError("no dimensionalities to mine")

    sweep_manifest = None
    if controller is not None and controller.store is not None:
        sweep_manifest = {
            "params": params_fingerprint({"ks": ks, **kwargs}),
        }

    from ..persist import result_from_dict, result_to_dict

    results = {}
    stopped_reason = "converged"
    for k in ks:
        if controller is not None:
            early = controller.should_stop()
            if early is not None:
                stopped_reason = early
                break
        result_stream = (
            controller.checkpointer(f"result_k{k}", manifest=sweep_manifest)
            if sweep_manifest is not None
            else None
        )
        if resume and result_stream is not None and result_stream.exists():
            results[k] = result_from_dict(result_stream.load())
            logger.info("k=%d: loaded completed result from checkpoint", k)
            continue
        detector = SubspaceOutlierDetector(
            dimensionality=k, controller=controller, **kwargs
        )
        result = detector.detect(array, feature_names=feature_names, resume=resume)
        results[k] = result
        if result.stats.get("stopped_reason") in ("cancelled", "deadline"):
            # The in-flight k's partial result is kept in `results` but
            # NOT checkpointed as complete — a resume re-enters it from
            # its own search checkpoint instead.
            stopped_reason = str(result.stats["stopped_reason"])
            break
        if result_stream is not None:
            result_stream.save(result_to_dict(result))
    if not results:
        raise SearchCancelled(
            f"multi-k sweep {stopped_reason} before any dimensionality "
            "produced a result"
        )
    return MultiKResult(results=results, stopped_reason=stopped_reason)
