"""Persistence: JSON round-trips for results and fitted models.

Two levels of persistence:

* **results** — :func:`result_to_dict` / :func:`result_from_dict`
  serialize a :class:`~repro.core.results.DetectionResult` (and the
  subspaces/projections inside it) to plain JSON-compatible data, e.g.
  for the CLI's ``--output json``;
* **models** — :func:`save_model` captures everything needed to score
  *new* data later — the fitted grid boundaries and the mined
  projections — and :func:`load_model` restores it as a
  :class:`SavedModel` with ``score``/``predict`` identical to the
  live detector's.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Mapping

import numpy as np

from ._atomic import atomic_write_json
from ._validation import check_matrix
from .core.results import DetectionResult, ScoredProjection
from .core.subspace import Subspace
from .exceptions import NotFittedError, ValidationError
from .grid.discretizer import EquiDepthDiscretizer

__all__ = [
    "subspace_to_dict",
    "subspace_from_dict",
    "projection_to_dict",
    "projection_from_dict",
    "result_to_dict",
    "result_from_dict",
    "SavedModel",
    "save_model",
    "load_model",
]

_FORMAT_VERSION = 1


def _check_format_version(payload: Mapping, what: str) -> None:
    """Refuse payloads written by a newer library version."""
    version = payload.get("format_version", 1)
    if not isinstance(version, int) or version > _FORMAT_VERSION:
        raise ValidationError(
            f"{what} was written with format version {version!r}; this "
            f"library reads up to version {_FORMAT_VERSION} — upgrade repro"
        )


def subspace_to_dict(subspace: Subspace) -> dict:
    """JSON-compatible representation of a cube."""
    return {"dims": list(subspace.dims), "ranges": list(subspace.ranges)}


def subspace_from_dict(payload: Mapping) -> Subspace:
    """Inverse of :func:`subspace_to_dict`."""
    try:
        return Subspace(tuple(payload["dims"]), tuple(payload["ranges"]))
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed subspace payload: {exc}") from None


def projection_to_dict(projection: ScoredProjection) -> dict:
    """JSON-compatible representation of a scored projection."""
    return {
        "subspace": subspace_to_dict(projection.subspace),
        "count": projection.count,
        "coefficient": projection.coefficient,
    }


def projection_from_dict(payload: Mapping) -> ScoredProjection:
    """Inverse of :func:`projection_to_dict`."""
    try:
        return ScoredProjection(
            subspace=subspace_from_dict(payload["subspace"]),
            count=int(payload["count"]),
            coefficient=float(payload["coefficient"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed projection payload: {exc}") from None


def result_to_dict(result: DetectionResult) -> dict:
    """JSON-compatible representation of a full detection result."""
    return {
        "format_version": _FORMAT_VERSION,
        "projections": [projection_to_dict(p) for p in result.projections],
        "outlier_indices": result.outlier_indices.tolist(),
        "n_points": result.n_points,
        "n_dims": result.n_dims,
        "n_ranges": result.n_ranges,
        "dimensionality": result.dimensionality,
        "coverage": {str(k): list(v) for k, v in result.coverage.items()},
        "stats": {k: v for k, v in result.stats.items()},
    }


def result_from_dict(payload: Mapping) -> DetectionResult:
    """Inverse of :func:`result_to_dict`."""
    _check_format_version(payload, "result payload")
    try:
        return DetectionResult(
            projections=tuple(
                projection_from_dict(p) for p in payload["projections"]
            ),
            outlier_indices=np.asarray(payload["outlier_indices"], dtype=np.intp),
            n_points=int(payload["n_points"]),
            n_dims=int(payload["n_dims"]),
            n_ranges=int(payload["n_ranges"]),
            dimensionality=int(payload["dimensionality"]),
            coverage={
                int(k): tuple(v) for k, v in payload.get("coverage", {}).items()
            },
            stats=dict(payload.get("stats", {})),
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed result payload: {exc}") from None


@dataclass(frozen=True)
class SavedModel:
    """A fitted detector, reduced to what scoring new data needs.

    Attributes
    ----------
    boundaries:
        Per-attribute grid cut points (φ−1 values each).
    n_ranges:
        Grid resolution φ.
    projections:
        The mined abnormal projections.
    feature_names:
        Optional attribute names.
    """

    boundaries: tuple[np.ndarray, ...]
    n_ranges: int
    projections: tuple[ScoredProjection, ...]
    feature_names: tuple[str, ...] | None = None

    # ------------------------------------------------------------------
    def score(self, data) -> np.ndarray:
        """Deviation scores of new points (see ``SubspaceOutlierDetector.score``)."""
        array = check_matrix(data, "data")
        discretizer = EquiDepthDiscretizer.from_cut_points(
            self.boundaries, self.feature_names
        )
        cells = discretizer.transform(array)
        scores = np.full(array.shape[0], np.nan)
        for projection in self.projections:
            covered = projection.subspace.covers(cells.codes)
            scores[covered] = np.fmin(scores[covered], projection.coefficient)
        return scores

    def predict(self, data) -> np.ndarray:
        """Boolean outlier mask for new points."""
        return ~np.isnan(self.score(data))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "format_version": _FORMAT_VERSION,
            "n_ranges": self.n_ranges,
            "boundaries": [cuts.tolist() for cuts in self.boundaries],
            "feature_names": (
                list(self.feature_names) if self.feature_names else None
            ),
            "projections": [projection_to_dict(p) for p in self.projections],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SavedModel":
        """Inverse of :meth:`to_dict`."""
        _check_format_version(payload, "model payload")
        try:
            names = payload.get("feature_names")
            return cls(
                boundaries=tuple(
                    np.asarray(cuts, dtype=np.float64)
                    for cuts in payload["boundaries"]
                ),
                n_ranges=int(payload["n_ranges"]),
                projections=tuple(
                    projection_from_dict(p) for p in payload["projections"]
                ),
                feature_names=tuple(names) if names else None,
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed model payload: {exc}") from None


def save_model(detector, path) -> Path:
    """Persist a fitted :class:`SubspaceOutlierDetector` to JSON.

    Requires :meth:`detect` to have run.  Returns the written path.
    """
    if getattr(detector, "result_", None) is None or detector.discretizer_ is None:
        raise NotFittedError("call detect() before save_model()")
    model = SavedModel(
        boundaries=detector.discretizer_.boundaries,
        n_ranges=detector.cells_.n_ranges,
        projections=detector.result_.projections,
        feature_names=detector.cells_.feature_names,
    )
    # Atomic replace: a crash mid-save never leaves a truncated model
    # file behind (and never clobbers a previously saved good one).
    return atomic_write_json(Path(path), model.to_dict())


def load_model(path) -> SavedModel:
    """Load a model written by :func:`save_model`."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"model file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"model file is not valid JSON: {exc}") from None
    return SavedModel.from_dict(payload)
