"""Persistence: JSON round-trips for results and fitted models.

Two levels of persistence:

* **results** — :func:`result_to_dict` / :func:`result_from_dict`
  serialize a :class:`~repro.core.results.DetectionResult` (and the
  subspaces/projections inside it) to plain JSON-compatible data, e.g.
  for the CLI's ``--output json``;
* **models** — :func:`save_model` captures everything needed to score
  *and keep updating* new data later, and :func:`load_model` restores
  it as a serving-mode :class:`~repro.model.GridModel` whose
  ``score``/``predict`` are identical to the live detector's.

Model snapshots are **schema v2**: a versioned manifest carrying the
grid boundaries and projections (the v1 payload) plus the incremental
state — reservoir sketch, post-fit occupancy, lifecycle counters and
the model version.  v1 snapshots load transparently (migration just
leaves the incremental state empty); missing or unknown versions raise
a typed :class:`~repro.exceptions.PersistError` naming the file and the
version found.  All writes are atomic (:mod:`repro._atomic`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Mapping

import numpy as np

from ._atomic import atomic_write_json
from ._validation import check_matrix
from .core.results import DetectionResult, ScoredProjection
from .core.subspace import Subspace
from .engine.events import EventSink
from .exceptions import (
    DiscretizationError,
    NotFittedError,
    PersistError,
    ValidationError,
)
from .grid.discretizer import EquiDepthDiscretizer
from .grid.health import DEFAULT_DRIFT_THRESHOLD
from .model import GridModel

__all__ = [
    "subspace_to_dict",
    "subspace_from_dict",
    "projection_to_dict",
    "projection_from_dict",
    "result_to_dict",
    "result_from_dict",
    "SavedModel",
    "model_payload",
    "save_model",
    "load_model",
]

#: Result payloads (and the legacy :class:`SavedModel` shape) are
#: still the original schema; only model *snapshots* moved to v2.
_FORMAT_VERSION = 1

#: Schema of model snapshots written by :func:`save_model`: the v1
#: grid+projections payload plus the incremental model state.
MODEL_FORMAT_VERSION = 2


def _check_format_version(
    payload: Mapping, what: str, maximum: int = _FORMAT_VERSION
) -> None:
    """Refuse payloads written by a newer library version."""
    version = payload.get("format_version", 1)
    if not isinstance(version, int) or version > maximum:
        raise ValidationError(
            f"{what} was written with format version {version!r}; this "
            f"library reads up to version {maximum} — upgrade repro"
        )


def subspace_to_dict(subspace: Subspace) -> dict:
    """JSON-compatible representation of a cube."""
    return {"dims": list(subspace.dims), "ranges": list(subspace.ranges)}


def subspace_from_dict(payload: Mapping) -> Subspace:
    """Inverse of :func:`subspace_to_dict`."""
    try:
        return Subspace(tuple(payload["dims"]), tuple(payload["ranges"]))
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed subspace payload: {exc}") from None


def projection_to_dict(projection: ScoredProjection) -> dict:
    """JSON-compatible representation of a scored projection."""
    return {
        "subspace": subspace_to_dict(projection.subspace),
        "count": projection.count,
        "coefficient": projection.coefficient,
    }


def projection_from_dict(payload: Mapping) -> ScoredProjection:
    """Inverse of :func:`projection_to_dict`."""
    try:
        return ScoredProjection(
            subspace=subspace_from_dict(payload["subspace"]),
            count=int(payload["count"]),
            coefficient=float(payload["coefficient"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed projection payload: {exc}") from None


def result_to_dict(result: DetectionResult) -> dict:
    """JSON-compatible representation of a full detection result."""
    return {
        "format_version": _FORMAT_VERSION,
        "projections": [projection_to_dict(p) for p in result.projections],
        "outlier_indices": result.outlier_indices.tolist(),
        "n_points": result.n_points,
        "n_dims": result.n_dims,
        "n_ranges": result.n_ranges,
        "dimensionality": result.dimensionality,
        "coverage": {str(k): list(v) for k, v in result.coverage.items()},
        "stats": {k: v for k, v in result.stats.items()},
    }


def result_from_dict(payload: Mapping) -> DetectionResult:
    """Inverse of :func:`result_to_dict`."""
    _check_format_version(payload, "result payload")
    try:
        return DetectionResult(
            projections=tuple(
                projection_from_dict(p) for p in payload["projections"]
            ),
            outlier_indices=np.asarray(payload["outlier_indices"], dtype=np.intp),
            n_points=int(payload["n_points"]),
            n_dims=int(payload["n_dims"]),
            n_ranges=int(payload["n_ranges"]),
            dimensionality=int(payload["dimensionality"]),
            coverage={
                int(k): tuple(v) for k, v in payload.get("coverage", {}).items()
            },
            stats=dict(payload.get("stats", {})),
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed result payload: {exc}") from None


@dataclass(frozen=True)
class SavedModel:
    """A fitted detector, reduced to what scoring new data needs.

    Attributes
    ----------
    boundaries:
        Per-attribute grid cut points (φ−1 values each).
    n_ranges:
        Grid resolution φ.
    projections:
        The mined abnormal projections.
    feature_names:
        Optional attribute names.
    """

    boundaries: tuple[np.ndarray, ...]
    n_ranges: int
    projections: tuple[ScoredProjection, ...]
    feature_names: tuple[str, ...] | None = None

    # ------------------------------------------------------------------
    def score(self, data) -> np.ndarray:
        """Deviation scores of new points (see ``SubspaceOutlierDetector.score``)."""
        array = check_matrix(data, "data")
        discretizer = EquiDepthDiscretizer.from_cut_points(
            self.boundaries, self.feature_names
        )
        cells = discretizer.transform(array)
        scores = np.full(array.shape[0], np.nan)
        for projection in self.projections:
            covered = projection.subspace.covers(cells.codes)
            scores[covered] = np.fmin(scores[covered], projection.coefficient)
        return scores

    def predict(self, data) -> np.ndarray:
        """Boolean outlier mask for new points."""
        return ~np.isnan(self.score(data))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "format_version": _FORMAT_VERSION,
            "n_ranges": self.n_ranges,
            "boundaries": [cuts.tolist() for cuts in self.boundaries],
            "feature_names": (
                list(self.feature_names) if self.feature_names else None
            ),
            "projections": [projection_to_dict(p) for p in self.projections],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SavedModel":
        """Inverse of :meth:`to_dict`.

        Reads the v1 shape and the v2 superset alike (v2 carries the
        same four keys plus the incremental state this legacy view
        ignores).
        """
        _check_format_version(payload, "model payload", MODEL_FORMAT_VERSION)
        try:
            names = payload.get("feature_names")
            return cls(
                boundaries=tuple(
                    np.asarray(cuts, dtype=np.float64)
                    for cuts in payload["boundaries"]
                ),
                n_ranges=int(payload["n_ranges"]),
                projections=tuple(
                    projection_from_dict(p) for p in payload["projections"]
                ),
                feature_names=tuple(names) if names else None,
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed model payload: {exc}") from None


_COUNTER_KEYS = ("updates", "rows_appended", "merges", "rebins", "drift_events")


def model_payload(model: GridModel) -> dict:
    """The schema-v2 snapshot of a :class:`~repro.model.GridModel`.

    A strict superset of the v1 shape (``n_ranges`` / ``boundaries`` /
    ``feature_names`` / ``projections``), so v1-era readers of those
    keys — including :meth:`SavedModel.from_dict` — keep working.
    """
    sketch = model.persistable_sketch()
    stats = model.stats_dict()
    return {
        "format_version": MODEL_FORMAT_VERSION,
        "kind": "grid_model",
        "n_ranges": model.n_ranges,
        "boundaries": [cuts.tolist() for cuts in model.boundaries],
        "feature_names": (
            list(model.feature_names) if model.feature_names else None
        ),
        "projections": [projection_to_dict(p) for p in model.projections],
        "n_points": model.n_points,
        "model_version": model.version,
        "rebin_policy": model.rebin_policy,
        "drift_threshold": model.drift_threshold,
        "counters": {key: stats[key] for key in _COUNTER_KEYS},
        "occupancy": model.occupancy.tolist(),
        "sketch": None if sketch is None else sketch.state_dict(),
    }


def save_model(model, path) -> Path:
    """Persist a fitted detector or a :class:`~repro.model.GridModel`.

    Accepts either a :class:`~repro.core.detector.SubspaceOutlierDetector`
    whose :meth:`detect` has run, or a ``GridModel`` directly.  Writes a
    schema-v2 snapshot; returns the written path.
    """
    if not isinstance(model, GridModel):
        detector = model
        if getattr(detector, "result_", None) is None or detector.discretizer_ is None:
            raise NotFittedError("call detect() before save_model()")
        model = getattr(detector, "model_", None)
        if model is None:
            model = GridModel.from_snapshot(
                boundaries=detector.discretizer_.boundaries,
                n_ranges=detector.cells_.n_ranges,
                projections=detector.result_.projections,
                feature_names=detector.cells_.feature_names,
                n_points=detector.cells_.n_points,
            )
    # Atomic replace: a crash mid-save never leaves a truncated model
    # file behind (and never clobbers a previously saved good one).
    return atomic_write_json(Path(path), model_payload(model))


def load_model(path, *, event_sink: EventSink | None = None) -> GridModel:
    """Load a model snapshot as a serving-mode ``GridModel``.

    Reads schema v2 (full incremental state) and v1 (grid + projections
    only; the incremental state starts empty).  A missing or unreadable
    ``format_version`` raises :class:`~repro.exceptions.PersistError`
    naming the file and the version found — never a silent misread.
    *event_sink* receives the loaded model's lifecycle events.
    """
    path = Path(path)
    if not path.exists():
        raise PersistError(f"model file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise PersistError(f"model file is not valid JSON: {exc}") from None
    if not isinstance(payload, Mapping):
        raise PersistError(
            f"malformed model payload in {path}: expected an object, got "
            f"{type(payload).__name__}"
        )
    version = payload.get("format_version")
    if version is None:
        raise PersistError(
            f"malformed model payload in {path}: missing format_version "
            f"(found: none; this library reads versions 1..{MODEL_FORMAT_VERSION})"
        )
    if (
        not isinstance(version, int)
        or isinstance(version, bool)
        or not 1 <= version <= MODEL_FORMAT_VERSION
    ):
        raise PersistError(
            f"model payload in {path} has unsupported format version "
            f"{version!r}; this library reads versions "
            f"1..{MODEL_FORMAT_VERSION} — upgrade repro"
        )
    try:
        if version == 1:
            return _load_model_v1(payload, event_sink)
        return _load_model_v2(payload, event_sink)
    except PersistError:
        raise
    except (KeyError, TypeError, ValueError, DiscretizationError) as exc:
        raise PersistError(
            f"malformed model payload in {path}: {exc}"
        ) from None


def _load_model_v1(payload: Mapping, event_sink: EventSink | None) -> GridModel:
    """Migrate a v1 snapshot: grid + projections, no incremental state."""
    legacy = SavedModel.from_dict(payload)
    return GridModel.from_snapshot(
        boundaries=legacy.boundaries,
        n_ranges=legacy.n_ranges,
        projections=legacy.projections,
        feature_names=legacy.feature_names,
        event_sink=event_sink,
    )


def _load_model_v2(payload: Mapping, event_sink: EventSink | None) -> GridModel:
    names = payload.get("feature_names")
    return GridModel.from_snapshot(
        boundaries=payload["boundaries"],
        n_ranges=int(payload["n_ranges"]),
        projections=tuple(
            projection_from_dict(p) for p in payload["projections"]
        ),
        feature_names=tuple(names) if names else None,
        sketch_state=payload.get("sketch"),
        occupancy=payload.get("occupancy"),
        n_points=int(payload.get("n_points", 0)),
        version=int(payload.get("model_version", 0)),
        counters=payload.get("counters"),
        drift_threshold=float(
            payload.get("drift_threshold", DEFAULT_DRIFT_THRESHOLD)
        ),
        rebin_policy=str(payload.get("rebin_policy", "manual")),
        event_sink=event_sink,
    )
