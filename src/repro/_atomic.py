"""Crash-safe file writes: temp file in the target directory + ``os.replace``.

Long-running sweeps persist checkpoints, models and exported datasets
while they may be killed at any instant (SIGTERM, OOM, Ctrl-C).  A
naive ``open(path, "w")`` interrupted mid-write leaves a truncated file
that poisons the next run; every on-disk writer in this library
therefore goes through these helpers:

1. write the full payload to a uniquely-named temp file *in the same
   directory* as the target (so the final rename never crosses a
   filesystem boundary),
2. flush and ``fsync`` the temp file,
3. ``os.replace`` it over the target — atomic on POSIX and Windows.

Readers consequently only ever observe the old file or the complete new
one, never a partial write.  On any error the temp file is removed and
the original target is left untouched.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from collections.abc import Iterator
from typing import IO

__all__ = [
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
]


@contextlib.contextmanager
def atomic_writer(path, *, newline: str | None = None) -> Iterator[IO[str]]:
    """Context manager yielding a text handle that commits atomically.

    The handle writes to a temp file next to *path*; on clean exit the
    temp file is fsynced and renamed over *path*.  If the body raises,
    the temp file is deleted and *path* is untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "w", newline=newline) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def atomic_write_bytes(path, data: bytes) -> Path:
    """Atomically replace *path* with binary *data*; returns the path.

    Same temp-file + fsync + ``os.replace`` protocol as the text
    helpers, so a kill mid-write never leaves a truncated binary
    artifact (mask shards, packed arrays) behind.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return path


def atomic_write_text(path, text: str) -> Path:
    """Atomically replace *path* with *text*; returns the written path."""
    path = Path(path)
    with atomic_writer(path) as handle:
        handle.write(text)
    return path


def atomic_write_json(path, payload, *, indent: int | None = 2) -> Path:
    """Atomically replace *path* with *payload* serialized as JSON.

    Serialization happens *before* the target is touched, so a payload
    that fails to encode never clobbers an existing file.
    """
    text = json.dumps(payload, indent=indent)
    return atomic_write_text(path, text)
