"""Crash-safe file writes: temp file in the target directory + ``os.replace``.

Long-running sweeps persist checkpoints, models and exported datasets
while they may be killed at any instant (SIGTERM, OOM, Ctrl-C).  A
naive ``open(path, "w")`` interrupted mid-write leaves a truncated file
that poisons the next run; every on-disk writer in this library
therefore goes through these helpers:

1. write the full payload to a uniquely-named temp file *in the same
   directory* as the target (so the final rename never crosses a
   filesystem boundary),
2. flush and ``fsync`` the temp file,
3. ``os.replace`` it over the target — atomic on POSIX and Windows.

Readers consequently only ever observe the old file or the complete new
one, never a partial write.  On any error the temp file is removed and
the original target is left untouched.  A full disk (ENOSPC/EDQUOT)
surfaces as a typed :class:`~repro.exceptions.ResourceError` naming the
path and payload size instead of a raw ``OSError``; the
``atomic_write`` fault point lets chaos tests inject exactly that.
"""

from __future__ import annotations

import contextlib
import errno
import json
import os
import tempfile
from pathlib import Path
from collections.abc import Iterator
from typing import IO

from .exceptions import ResourceError
from .resilience.faults import maybe_inject

__all__ = [
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
]

_FULL_DISK_ERRNOS = frozenset({errno.ENOSPC, errno.EDQUOT})


def _wrap_full_disk(exc: BaseException, path: Path, nbytes: int | None):
    """Re-raise ENOSPC/EDQUOT as a typed, actionable ResourceError."""
    if isinstance(exc, OSError) and exc.errno in _FULL_DISK_ERRNOS:
        size = f"~{nbytes} bytes needed" if nbytes is not None else \
            "size unknown"
        raise ResourceError(
            exc.errno,
            f"disk full writing {path} ({size}); free space on "
            f"{path.parent or '.'} or point the run at another volume",
        ) from exc


@contextlib.contextmanager
def atomic_writer(path, *, newline: str | None = None) -> Iterator[IO[str]]:
    """Context manager yielding a text handle that commits atomically.

    The handle writes to a temp file next to *path*; on clean exit the
    temp file is fsynced and renamed over *path*.  If the body raises,
    the temp file is deleted and *path* is untouched.
    """
    path = Path(path)
    try:
        maybe_inject("atomic_write", path=str(path))
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or "."
        )
    except OSError as exc:
        _wrap_full_disk(exc, path, None)
        raise
    try:
        with os.fdopen(fd, "w", newline=newline) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException as exc:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        _wrap_full_disk(exc, path, None)
        raise


def atomic_write_bytes(path, data: bytes) -> Path:
    """Atomically replace *path* with binary *data*; returns the path.

    Same temp-file + fsync + ``os.replace`` protocol as the text
    helpers, so a kill mid-write never leaves a truncated binary
    artifact (mask shards, packed arrays) behind.
    """
    path = Path(path)
    try:
        maybe_inject("atomic_write", path=str(path), nbytes=len(data))
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or "."
        )
    except OSError as exc:
        _wrap_full_disk(exc, path, len(data))
        raise
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException as exc:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        _wrap_full_disk(exc, path, len(data))
        raise
    return path


def atomic_write_text(path, text: str) -> Path:
    """Atomically replace *path* with *text*; returns the written path."""
    path = Path(path)
    with atomic_writer(path) as handle:
        handle.write(text)
    return path


def atomic_write_json(path, payload, *, indent: int | None = 2) -> Path:
    """Atomically replace *path* with *payload* serialized as JSON.

    Serialization happens *before* the target is touched, so a payload
    that fails to encode never clobbers an existing file.
    """
    text = json.dumps(payload, indent=indent)
    return atomic_write_text(path, text)
