"""Paper-style comparison tables (Table 1 reconstruction).

Builds the brute / gen / gen° grid over a list of datasets and renders
it as fixed-width text the way the paper lays it out: one row per
dataset, time and quality per algorithm, ``-`` for runs that did not
complete (the paper's musk brute-force cell), and ``(*)`` marking
datasets where the evolutionary search matched the brute-force optimum
quality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

from ..data.loaders import Dataset
from ..search.evolutionary.config import EvolutionaryConfig
from .harness import ExperimentResult, timed_detection

__all__ = ["ComparisonRow", "build_table1", "render_table"]

_QUALITY_MATCH_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ComparisonRow:
    """One Table 1 row: a dataset measured under all three algorithms."""

    dataset: str
    n_dims: int
    brute: ExperimentResult | None
    gen: ExperimentResult
    gen_opt: ExperimentResult

    @property
    def gen_opt_matches_brute(self) -> bool:
        """True when Gen° reaches brute-force quality (the paper's ``*``)."""
        if self.brute is None or not self.brute.completed:
            return False
        return abs(self.gen_opt.quality - self.brute.quality) <= max(
            _QUALITY_MATCH_TOLERANCE, 1e-3 * abs(self.brute.quality)
        )


def build_table1(
    datasets: Sequence[Dataset],
    *,
    n_projections: int = 20,
    config: EvolutionaryConfig | None = None,
    brute_max_seconds: float | None = None,
    skip_brute_above_dims: int | None = None,
    random_state: int = 0,
) -> list[ComparisonRow]:
    """Run the full Table 1 protocol over *datasets*.

    Parameters
    ----------
    brute_max_seconds:
        Budget after which a brute-force run is declared not completed
        (reported as ``-``, like the paper's musk row).
    skip_brute_above_dims:
        Skip brute force entirely above this dimensionality (the
        paper could not even start it on 160-dimensional musk for
        k = 3).
    """
    rows = []
    for dataset in datasets:
        brute: ExperimentResult | None = None
        skip = (
            skip_brute_above_dims is not None
            and dataset.n_dims > skip_brute_above_dims
        )
        if not skip:
            brute = timed_detection(
                dataset,
                "brute",
                n_projections=n_projections,
                max_seconds=brute_max_seconds,
            )
        gen = timed_detection(
            dataset,
            "gen",
            n_projections=n_projections,
            config=config,
            random_state=random_state,
        )
        gen_opt = timed_detection(
            dataset,
            "gen_opt",
            n_projections=n_projections,
            config=config,
            random_state=random_state,
        )
        rows.append(
            ComparisonRow(
                dataset=dataset.name,
                n_dims=dataset.n_dims,
                brute=brute,
                gen=gen,
                gen_opt=gen_opt,
            )
        )
    return rows


def _fmt_time(cell: ExperimentResult | None) -> str:
    if cell is None or not cell.completed:
        return "-"
    return f"{cell.elapsed_seconds:.3f}"


def _fmt_quality(cell: ExperimentResult | None, star: bool = False) -> str:
    if cell is None or not cell.completed or math.isnan(cell.quality):
        return "-"
    text = f"{cell.quality:.2f}"
    return f"{text} (*)" if star else text


def render_table(rows: Sequence[ComparisonRow]) -> str:
    """Fixed-width text table in the paper's Table 1 layout."""
    header = (
        f"{'Data Set':<22}{'Brute':>10}{'Gen':>10}{'Gen^o':>10}"
        f"{'Brute':>12}{'Gen':>12}{'Gen^o':>14}"
    )
    subheader = (
        f"{'':<22}{'(time s)':>10}{'(time s)':>10}{'(time s)':>10}"
        f"{'(quality)':>12}{'(quality)':>12}{'(quality)':>14}"
    )
    lines = [header, subheader, "-" * len(header)]
    for row in rows:
        name = f"{row.dataset} ({row.n_dims})"
        lines.append(
            f"{name:<22}"
            f"{_fmt_time(row.brute):>10}"
            f"{_fmt_time(row.gen):>10}"
            f"{_fmt_time(row.gen_opt):>10}"
            f"{_fmt_quality(row.brute):>12}"
            f"{_fmt_quality(row.gen):>12}"
            f"{_fmt_quality(row.gen_opt, star=row.gen_opt_matches_brute):>14}"
        )
    return "\n".join(lines)
