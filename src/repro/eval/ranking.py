"""Ranking-quality metrics: ROC AUC and precision@n from raw scores.

The synthetic stand-ins carry exact planted ground truth, which the
paper's real datasets never had — so beyond the paper's rare-class
counting we can evaluate detectors as *rankers*.  Implemented from
scratch (no sklearn in this environment): AUC via the Mann-Whitney
rank statistic with midrank tie handling.

Score conventions differ per detector; use :func:`outlyingness_from_
subspace_scores` to convert the subspace detector's negative-is-worse,
NaN-is-normal scores into the larger-is-more-outlying convention these
metrics expect (the baselines already follow it).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError

__all__ = [
    "roc_auc",
    "precision_at",
    "outlyingness_from_subspace_scores",
]


def _check_inputs(scores, labels) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=bool)
    if scores.ndim != 1 or labels.shape != scores.shape:
        raise ValidationError("scores and labels must be 1-D and equal length")
    if np.isnan(scores).any():
        raise ValidationError(
            "scores must not contain NaN; map 'not scored' to a floor "
            "first (see outlyingness_from_subspace_scores)"
        )
    return scores, labels


def roc_auc(scores, labels) -> float:
    """Area under the ROC curve (larger score = predicted outlier).

    Computed as the Mann-Whitney statistic with midrank ties:
    the probability that a random true outlier outscores a random
    inlier (ties count half).
    """
    scores, labels = _check_inputs(scores, labels)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValidationError("roc_auc needs at least one outlier and one inlier")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    # Midranks for tied groups (1-based).
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[labels].sum()
    u_statistic = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def precision_at(scores, labels, n: int) -> float:
    """Fraction of the top-n scored points that are true outliers.

    Ties at the cutoff break by index (ascending) for determinism.
    """
    scores, labels = _check_inputs(scores, labels)
    n = check_positive_int(n, "n")
    if n > scores.size:
        raise ValidationError(f"n ({n}) exceeds the number of points")
    top = np.lexsort((np.arange(scores.size), -scores))[:n]
    return float(labels[top].mean())


def outlyingness_from_subspace_scores(scores) -> np.ndarray:
    """Convert detector ``score()`` output to larger-is-more-outlying.

    The subspace detector scores are negative-is-more-abnormal, with
    NaN for points covered by no mined projection.  Negate them and
    floor the NaNs just below the least outlying covered point, so
    uncovered points rank last (ties among themselves).
    """
    scores = np.asarray(scores, dtype=np.float64)
    out = -scores
    covered = ~np.isnan(out)
    if covered.any():
        floor = out[covered].min() - 1.0
    else:
        floor = 0.0
    out[~covered] = floor
    return out
