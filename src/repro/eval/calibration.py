"""Permutation calibration: how negative is *negative enough*?

The sparsity coefficient's significance story (§1.3) is per-cube: a −3
cube is 99.9%-significant *if you looked at that one cube*.  But the
searchers look at up to ``C(d,k)·φ^k`` cubes and report the most
negative — a textbook selection effect.  ``bonferroni_significance``
bounds it analytically; this module measures it **empirically**:

permute every column of the data independently (destroying all
inter-attribute structure while keeping each marginal — exactly the
null hypothesis behind Equation 1), re-run the same mining procedure,
and record the best coefficient found.  Repeating this yields the null
distribution of the *search result*, against which the real run's best
coefficient gets an honest p-value.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from .._validation import check_matrix, check_positive_int, check_rng
from ..core.detector import SubspaceOutlierDetector
from ..exceptions import ValidationError

__all__ = [
    "column_permuted",
    "permutation_null_best_coefficients",
    "empirical_p_value",
]


def column_permuted(data, random_state=None) -> np.ndarray:
    """A copy of *data* with every column independently shuffled.

    Marginal distributions (and hence equi-depth ranges) are preserved
    exactly; all joint structure is destroyed.  Missing values shuffle
    along with their column.
    """
    array = check_matrix(data, "data").copy()
    rng = check_rng(random_state)
    for j in range(array.shape[1]):
        rng.shuffle(array[:, j])
    return array


def permutation_null_best_coefficients(
    data,
    detector_factory: Callable[[], SubspaceOutlierDetector],
    *,
    n_permutations: int = 20,
    random_state=None,
) -> np.ndarray:
    """Null distribution of the mined best coefficient.

    Parameters
    ----------
    data:
        The real data matrix (only its permutations are mined here).
    detector_factory:
        Zero-argument callable returning a **fresh, identically
        configured** detector — the same configuration used on the real
        data, so the selection effect is measured for the procedure
        actually run.
    n_permutations:
        Number of permuted datasets to mine.

    Returns
    -------
    numpy.ndarray
        ``n_permutations`` best coefficients mined from structureless
        data.  NaN entries mark permutations where the detector mined
        nothing (possible in strict threshold mode).
    """
    array = check_matrix(data, "data")
    n_permutations = check_positive_int(n_permutations, "n_permutations")
    rng = check_rng(random_state)
    out = np.empty(n_permutations)
    for i in range(n_permutations):
        permuted = column_permuted(array, rng)
        detector = detector_factory()
        if not isinstance(detector, SubspaceOutlierDetector):
            raise ValidationError(
                "detector_factory must return a SubspaceOutlierDetector, "
                f"got {type(detector).__name__}"
            )
        result = detector.detect(permuted)
        out[i] = result.best_coefficient
    return out


def empirical_p_value(observed: float, null_values) -> float:
    """P(null best coefficient <= observed), with the +1 correction.

    Uses the standard permutation-test estimator
    ``(1 + #{null <= observed}) / (1 + n)``, which never returns 0 and
    is valid for any number of permutations.  NaN null entries (runs
    that mined nothing) count as *not* exceeding — they are evidence
    the observed structure is real.
    """
    null = np.asarray(null_values, dtype=np.float64)
    if null.ndim != 1 or null.size == 0:
        raise ValidationError("null_values must be a non-empty 1-D array")
    observed = float(observed)
    if np.isnan(observed):
        raise ValidationError("observed best coefficient is NaN (nothing mined)")
    hits = int(np.sum(null[~np.isnan(null)] <= observed))
    return (1 + hits) / (1 + null.size)
