"""Parameter sweep utilities: structured grids over detector knobs.

The paper's §2.4 discussion and our ablation benchmarks all have the
same shape — vary one knob (k, φ, m, population size) with everything
else fixed, and tabulate quality/coverage/cost.  This module gives that
pattern a reusable implementation producing tidy row dictionaries ready
for table rendering or downstream analysis.
"""

from __future__ import annotations

import math
import time
from collections.abc import Iterable, Mapping, Sequence

from .._validation import check_matrix
from ..core.detector import SubspaceOutlierDetector
from ..exceptions import ValidationError

__all__ = ["sweep_detector_parameter", "render_sweep"]

#: Detector constructor keywords a sweep may vary.
_SWEEPABLE = {
    "dimensionality",
    "n_ranges",
    "n_projections",
    "method",
    "threshold",
    "crossover",
    "packed",
}


def sweep_detector_parameter(
    data,
    parameter: str,
    values: Iterable,
    *,
    base_kwargs: Mapping | None = None,
    top: int = 20,
) -> list[dict]:
    """Run the detector once per value of *parameter* and tabulate.

    Parameters
    ----------
    data:
        The dataset to mine (same data for every run).
    parameter:
        Which detector constructor argument to vary (one of
        ``dimensionality``, ``n_ranges``, ``n_projections``, ``method``,
        ``threshold``, ``crossover``, ``packed``).
    values:
        The settings to sweep.
    base_kwargs:
        Fixed detector arguments shared by every run (seed your
        ``random_state`` here for reproducibility).
    top:
        How many best projections the quality column averages.

    Returns
    -------
    list[dict]
        One row per setting: ``{parameter, quality, best_coefficient,
        n_outliers, n_projections_mined, elapsed_seconds, k, phi}``.
    """
    array = check_matrix(data, "data")
    if parameter not in _SWEEPABLE:
        raise ValidationError(
            f"parameter must be one of {sorted(_SWEEPABLE)}, got {parameter!r}"
        )
    base = dict(base_kwargs or {})
    if parameter in base:
        raise ValidationError(
            f"{parameter!r} appears in base_kwargs and as the swept parameter"
        )
    rows = []
    for value in values:
        detector = SubspaceOutlierDetector(**{**base, parameter: value})
        start = time.perf_counter()
        result = detector.detect(array)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                parameter: value,
                "quality": result.mean_coefficient(top=top),
                "best_coefficient": result.best_coefficient,
                "n_outliers": result.n_outliers,
                "n_projections_mined": len(result.projections),
                "elapsed_seconds": elapsed,
                "k": result.dimensionality,
                "phi": result.n_ranges,
            }
        )
    return rows


def render_sweep(rows: Sequence[Mapping], parameter: str) -> str:
    """Fixed-width text table for a sweep's rows."""
    if not rows:
        raise ValidationError("cannot render an empty sweep")
    header = (
        f"{parameter:>14}{'quality':>10}{'best':>9}{'outliers':>10}"
        f"{'mined':>8}{'time_s':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        quality = row["quality"]
        quality_text = "-" if math.isnan(quality) else f"{quality:.3f}"
        best = row["best_coefficient"]
        best_text = "-" if math.isnan(best) else f"{best:.3f}"
        lines.append(
            f"{str(row[parameter]):>14}{quality_text:>10}{best_text:>9}"
            f"{row['n_outliers']:>10}{row['n_projections_mined']:>8}"
            f"{row['elapsed_seconds']:>9.3f}"
        )
    return "\n".join(lines)
