"""Timed experiment runs over named datasets.

The harness standardizes how every benchmark executes a detector:
resolve per-dataset grid parameters, run, time, and package the
numbers Table 1 reports — wall-clock and the mean sparsity coefficient
of the best 20 non-empty projections ("quality").
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from collections.abc import Mapping

from ..core.detector import SubspaceOutlierDetector
from ..core.results import DetectionResult
from ..data.loaders import Dataset
from ..exceptions import ValidationError
from ..search.evolutionary.config import EvolutionaryConfig

__all__ = ["ExperimentResult", "timed_detection", "detector_for_dataset"]


@dataclass(frozen=True)
class ExperimentResult:
    """One experiment cell: dataset × algorithm.

    Attributes
    ----------
    dataset:
        Dataset name.
    algorithm:
        Human-readable algorithm label (``brute``, ``gen``, ``gen_opt``).
    elapsed_seconds:
        Wall-clock of the detection call.
    quality:
        Mean sparsity coefficient of the best 20 non-empty mined
        projections — Table 1's quality metric.
    completed:
        False when the run hit its budget (the paper's musk "-" cell).
    result:
        The full :class:`~repro.core.results.DetectionResult`.
    extra:
        Anything else a benchmark wants to carry along.
    """

    dataset: str
    algorithm: str
    elapsed_seconds: float
    quality: float
    completed: bool
    result: DetectionResult
    extra: Mapping[str, float] = field(default_factory=dict)

    def row(self) -> dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "time_s": round(self.elapsed_seconds, 4),
            "quality": None if math.isnan(self.quality) else round(self.quality, 4),
            "completed": self.completed,
            "n_outliers": self.result.n_outliers,
        }


def detector_for_dataset(
    dataset: Dataset,
    algorithm: str,
    *,
    dimensionality: int | None = None,
    n_projections: int = 20,
    config: EvolutionaryConfig | None = None,
    max_seconds: float | None = None,
    random_state=None,
) -> SubspaceOutlierDetector:
    """Build the detector variant a Table 1 column names.

    *algorithm* is one of:

    * ``"brute"`` — brute-force enumeration (Figure 2);
    * ``"gen"`` — evolutionary search with the two-point crossover
      baseline (the paper's *Gen* columns);
    * ``"gen_opt"`` — evolutionary search with optimized crossover
      (the paper's *Gen°* columns).

    The grid resolution φ comes from the dataset's metadata (falling
    back to 10); k defaults to Equation 2's recommendation.
    """
    phi = int(dataset.metadata.get("phi", 10))
    common = dict(
        dimensionality=dimensionality,
        n_ranges=phi,
        n_projections=n_projections,
        max_seconds=max_seconds,
    )
    if algorithm == "brute":
        return SubspaceOutlierDetector(method="brute_force", **common)
    if algorithm == "gen":
        return SubspaceOutlierDetector(
            method="evolutionary",
            crossover="two_point",
            config=config,
            random_state=random_state,
            **common,
        )
    if algorithm == "gen_opt":
        return SubspaceOutlierDetector(
            method="evolutionary",
            crossover="optimized",
            config=config,
            random_state=random_state,
            **common,
        )
    raise ValidationError(
        f"unknown algorithm {algorithm!r}; expected brute | gen | gen_opt"
    )


def timed_detection(
    dataset: Dataset,
    algorithm: str,
    *,
    dimensionality: int | None = None,
    n_projections: int = 20,
    config: EvolutionaryConfig | None = None,
    max_seconds: float | None = None,
    random_state=None,
) -> ExperimentResult:
    """Run one Table-1-style cell and package the outcome."""
    detector = detector_for_dataset(
        dataset,
        algorithm,
        dimensionality=dimensionality,
        n_projections=n_projections,
        config=config,
        max_seconds=max_seconds,
        random_state=random_state,
    )
    start = time.perf_counter()
    result = detector.detect(dataset.values, feature_names=dataset.feature_names)
    elapsed = time.perf_counter() - start
    return ExperimentResult(
        dataset=dataset.name,
        algorithm=algorithm,
        elapsed_seconds=elapsed,
        quality=result.mean_coefficient(top=n_projections),
        completed=bool(result.stats.get("completed", 1.0)),
        result=result,
        extra={
            "k": result.dimensionality,
            "phi": result.n_ranges,
            "evaluations": float(result.stats.get("evaluations", 0)),
        },
    )
