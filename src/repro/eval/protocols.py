"""Reusable experiment protocols from the paper's evaluation (§3).

Each protocol bundles one of the paper's experiments — workload,
parameters, method and comparator — behind a single function returning
a structured result, so the benchmarks, the CLI (``repro-outliers
experiment ...``) and downstream users all run the *same* procedure.

* :func:`run_arrhythmia_protocol` — threshold mining at s ≤ −3 plus the
  same-size kNN comparison (1-NN and k-NN), §3.1.
* :func:`run_figure1_protocol` — planted view-outliers vs full-dim
  baselines, Figure 1.
* :func:`run_housing_protocol` — contrarian-record mining with
  explanations, §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

import numpy as np

from ..baselines.knn import KNNDistanceOutlierDetector
from ..baselines.lof import LOFOutlierDetector
from ..core.detector import SubspaceOutlierDetector
from ..core.explain import OutlierExplanation, explain_point
from ..core.results import DetectionResult
from ..data.loaders import Dataset
from ..data.preprocess import drop_low_variance_columns
from ..exceptions import ValidationError
from ..search.evolutionary.config import EvolutionaryConfig
from .metrics import RareClassReport, rare_class_report, recall_of_planted

__all__ = [
    "ArrhythmiaProtocolResult",
    "Figure1ProtocolResult",
    "HousingProtocolResult",
    "run_arrhythmia_protocol",
    "run_figure1_protocol",
    "run_housing_protocol",
]


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ArrhythmiaProtocolResult:
    """Outcome of the §3.1 rare-class experiment."""

    result: DetectionResult
    subspace_report: RareClassReport
    knn_reports: Mapping[int, RareClassReport]

    def summary_lines(self) -> list[str]:
        """Paper-style comparison rows."""
        lines = [
            f"projections mined at threshold: {len(self.result.projections)}",
            f"subspace: {self.subspace_report}",
        ]
        for k, report in sorted(self.knn_reports.items()):
            lines.append(f"kNN ({k}-NN): {report}")
        return lines


def run_arrhythmia_protocol(
    dataset: Dataset,
    *,
    threshold: float = -3.0,
    config: EvolutionaryConfig | None = None,
    knn_variants: tuple[int, ...] = (1, 5),
    random_state=0,
) -> ArrhythmiaProtocolResult:
    """§3.1: mine all projections ≤ *threshold*, compare with kNN.

    Requires a labelled dataset whose metadata lists ``rare_classes``
    (the built-in arrhythmia stand-in qualifies).
    """
    if dataset.labels is None:
        raise ValidationError("the arrhythmia protocol needs a labelled dataset")
    rare = dataset.metadata.get("rare_classes")
    if rare is None:
        raise ValidationError(
            "the dataset's metadata must list its rare_classes"
        )
    config = config or EvolutionaryConfig(
        population_size=100, max_generations=60, restarts=10
    )
    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=int(dataset.metadata.get("phi", 5)),
        n_projections=None,
        threshold=threshold,
        config=config,
        random_state=random_state,
    )
    result = detector.detect(dataset.values, feature_names=dataset.feature_names)
    subspace_report = rare_class_report(
        result.outlier_indices, dataset.labels, rare
    )
    knn_reports = {}
    n_flagged = max(result.n_outliers, 1)
    for k in knn_variants:
        baseline = KNNDistanceOutlierDetector(
            n_neighbors=k, n_outliers=n_flagged
        ).detect(dataset.values)
        knn_reports[k] = rare_class_report(
            baseline.outlier_indices, dataset.labels, rare
        )
    return ArrhythmiaProtocolResult(
        result=result,
        subspace_report=subspace_report,
        knn_reports=knn_reports,
    )


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Figure1ProtocolResult:
    """Outcome of the Figure 1 masking experiment."""

    result: DetectionResult
    subspace_ranks: Mapping[int, int | None]
    knn_ranks: Mapping[int, int]
    lof_ranks: Mapping[int, int]

    def summary_lines(self) -> list[str]:
        lines = [
            f"{'point':>7}{'subspace':>10}{'kNN':>7}{'LOF':>7}   (rank, 0 = most outlying)"
        ]
        for point in sorted(self.knn_ranks):
            sub = self.subspace_ranks.get(point)
            lines.append(
                f"{point:>7}{str(sub if sub is not None else '-'):>10}"
                f"{self.knn_ranks[point]:>7}{self.lof_ranks[point]:>7}"
            )
        return lines


def _outlyingness_rank(scores: np.ndarray, point: int) -> int:
    order = np.argsort(-scores)
    return int(np.where(order == point)[0][0])


def run_figure1_protocol(
    dataset: Dataset,
    *,
    config: EvolutionaryConfig | None = None,
    random_state=0,
) -> Figure1ProtocolResult:
    """Figure 1: rank the planted outliers under all three methods."""
    if dataset.planted_outliers is None or dataset.planted_outliers.size == 0:
        raise ValidationError(
            "the figure-1 protocol needs planted ground-truth outliers"
        )
    config = config or EvolutionaryConfig(
        population_size=60, max_generations=60, restarts=4
    )
    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=int(dataset.metadata.get("phi", 5)),
        n_projections=10,
        config=config,
        random_state=random_state,
    )
    result = detector.detect(dataset.values, feature_names=dataset.feature_names)
    ranked = [point for point, _ in result.ranked_outliers()]
    knn_scores = KNNDistanceOutlierDetector(n_neighbors=1).scores(dataset.values)
    lof_scores = LOFOutlierDetector(n_neighbors=10).scores(dataset.values)
    planted = [int(p) for p in dataset.planted_outliers]
    return Figure1ProtocolResult(
        result=result,
        subspace_ranks={
            p: (ranked.index(p) if p in ranked else None) for p in planted
        },
        knn_ranks={p: _outlyingness_rank(knn_scores, p) for p in planted},
        lof_ranks={p: _outlyingness_rank(lof_scores, p) for p in planted},
    )


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HousingProtocolResult:
    """Outcome of the §3.1 housing qualitative analysis."""

    result: DetectionResult
    recall: float
    explanations: tuple[OutlierExplanation, ...]
    feature_names: tuple[str, ...] = field(default=())

    def summary_lines(self) -> list[str]:
        lines = [f"planted-contrarian recall: {self.recall:.2f}"]
        for explanation in self.explanations:
            lines.append(str(explanation))
        return lines


def run_housing_protocol(
    dataset: Dataset,
    *,
    dimensionality: int = 2,
    method: str = "brute_force",
    config: EvolutionaryConfig | None = None,
    random_state=0,
) -> HousingProtocolResult:
    """§3.1 housing: drop the binary attribute, mine, explain contrarians."""
    if dataset.planted_outliers is None:
        raise ValidationError(
            "the housing protocol needs planted ground-truth records"
        )
    values, kept = drop_low_variance_columns(dataset.values, min_unique=3)
    names = tuple(dataset.feature_names[i] for i in kept)
    detector = SubspaceOutlierDetector(
        dimensionality=dimensionality,
        n_ranges=int(dataset.metadata.get("phi", 4)),
        n_projections=20,
        method=method,
        config=config
        or EvolutionaryConfig(population_size=60, max_generations=60, restarts=3),
        random_state=random_state,
    )
    result = detector.detect(values, feature_names=names)
    recall = recall_of_planted(result.outlier_indices, dataset.planted_outliers)
    explanations = tuple(
        explain_point(int(row), result, detector.cells_, values, names)
        for row in dataset.planted_outliers
    )
    return HousingProtocolResult(
        result=result,
        recall=recall,
        explanations=explanations,
        feature_names=names,
    )
