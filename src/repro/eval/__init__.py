"""Evaluation harness: metrics, timed runs, and paper-style tables."""

from .metrics import (
    enrichment_lift,
    jaccard_overlap,
    rare_class_report,
    recall_of_planted,
)
from .harness import ExperimentResult, timed_detection
from .comparison import ComparisonRow, build_table1, render_table
from .calibration import (
    column_permuted,
    empirical_p_value,
    permutation_null_best_coefficients,
)
from .ranking import (
    outlyingness_from_subspace_scores,
    precision_at,
    roc_auc,
)
from .sweeps import render_sweep, sweep_detector_parameter
from .protocols import (
    ArrhythmiaProtocolResult,
    Figure1ProtocolResult,
    HousingProtocolResult,
    run_arrhythmia_protocol,
    run_figure1_protocol,
    run_housing_protocol,
)

__all__ = [
    "rare_class_report",
    "enrichment_lift",
    "recall_of_planted",
    "jaccard_overlap",
    "ExperimentResult",
    "timed_detection",
    "ComparisonRow",
    "build_table1",
    "render_table",
    "ArrhythmiaProtocolResult",
    "Figure1ProtocolResult",
    "HousingProtocolResult",
    "run_arrhythmia_protocol",
    "run_figure1_protocol",
    "run_housing_protocol",
    "column_permuted",
    "permutation_null_best_coefficients",
    "empirical_p_value",
    "sweep_detector_parameter",
    "render_sweep",
    "roc_auc",
    "precision_at",
    "outlyingness_from_subspace_scores",
]
