"""Metrics for the paper's evaluation protocols.

The arrhythmia experiment (§3.1) measures how over-represented *rare
diagnosis classes* are among the flagged outliers ("43 of 85 belonged
to one of the rare classes" for the subspace method vs "28 of 85" for
the kNN baseline); the synthetic stand-ins additionally know their
planted ground truth exactly.  This module provides both measurements
plus set-overlap helpers used when comparing methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "RareClassReport",
    "rare_class_report",
    "enrichment_lift",
    "recall_of_planted",
    "jaccard_overlap",
]


@dataclass(frozen=True)
class RareClassReport:
    """Rare-class composition of a flagged outlier set.

    Attributes
    ----------
    n_flagged:
        Size of the flagged set.
    n_rare_hits:
        How many flagged points belong to a rare class (the paper's
        "43 of 85" style number).
    rare_fraction_in_data:
        Base rate of rare classes in the whole dataset.
    precision:
        ``n_rare_hits / n_flagged``.
    lift:
        Precision divided by the base rate — how much better than
        random the flagged set is at concentrating rare classes.
    """

    n_flagged: int
    n_rare_hits: int
    rare_fraction_in_data: float
    precision: float
    lift: float

    def __str__(self) -> str:
        return (
            f"{self.n_rare_hits} of {self.n_flagged} flagged points are "
            f"rare-class (precision {self.precision:.3f}, base rate "
            f"{self.rare_fraction_in_data:.3f}, lift {self.lift:.2f}x)"
        )


def rare_class_report(
    flagged: Iterable[int],
    labels: np.ndarray,
    rare_labels: Iterable[int],
) -> RareClassReport:
    """Measure rare-class enrichment in a flagged set (arrhythmia protocol)."""
    labels = np.asarray(labels)
    flagged_idx = np.asarray(list(flagged), dtype=np.intp)
    if flagged_idx.size and (
        flagged_idx.min() < 0 or flagged_idx.max() >= labels.size
    ):
        raise ValidationError("flagged indices out of range for labels")
    rare = set(int(r) for r in rare_labels)
    rare_mask = np.isin(labels, sorted(rare))
    base_rate = float(rare_mask.mean())
    n_flagged = int(flagged_idx.size)
    n_hits = int(rare_mask[flagged_idx].sum()) if n_flagged else 0
    precision = n_hits / n_flagged if n_flagged else 0.0
    lift = precision / base_rate if base_rate > 0 else float("nan")
    return RareClassReport(
        n_flagged=n_flagged,
        n_rare_hits=n_hits,
        rare_fraction_in_data=base_rate,
        precision=precision,
        lift=lift,
    )


def enrichment_lift(
    flagged: Iterable[int],
    labels: np.ndarray,
    rare_labels: Iterable[int],
) -> float:
    """Shorthand for :func:`rare_class_report`'s lift."""
    return rare_class_report(flagged, labels, rare_labels).lift


def recall_of_planted(flagged: Iterable[int], planted: Iterable[int]) -> float:
    """Fraction of planted anomalies present in the flagged set.

    Returns 1.0 for an empty planted set (nothing to miss).
    """
    planted_set = {int(p) for p in planted}
    if not planted_set:
        return 1.0
    flagged_set = {int(f) for f in flagged}
    return len(planted_set & flagged_set) / len(planted_set)


def jaccard_overlap(a: Iterable[int], b: Iterable[int]) -> float:
    """Jaccard similarity of two flagged sets (1.0 when both empty)."""
    set_a = {int(x) for x in a}
    set_b = {int(x) for x in b}
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)
