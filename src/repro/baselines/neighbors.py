"""Chunked nearest-neighbor machinery for the baseline detectors.

No approximate index is needed at the paper's scale (hundreds to a few
thousand points), but a naive ``(N, N)`` distance matrix is wasteful at
the larger synthetic sizes the benchmarks sweep, so distances are
computed in row chunks: memory stays ``O(chunk · N)`` while the inner
arithmetic remains fully vectorized.

All functions operate on complete (NaN-free) ``float64`` matrices with
Euclidean (L2) or Manhattan (L1) metrics — the ``L_p``-norms the paper
discusses.  Self-distances are always excluded.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..exceptions import ValidationError

__all__ = [
    "pairwise_distance_chunks",
    "kth_neighbor_distances",
    "nearest_neighbors",
    "neighbor_counts_within",
]

_METRICS = ("euclidean", "manhattan")


def _check_metric(metric: str) -> str:
    if metric not in _METRICS:
        raise ValidationError(f"metric must be one of {_METRICS}, got {metric!r}")
    return metric


def _chunk_distances(chunk: np.ndarray, data: np.ndarray, metric: str) -> np.ndarray:
    """Dense distances from every row of *chunk* to every row of *data*."""
    if metric == "euclidean":
        # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b ; clip negatives from rounding.
        sq = (
            np.sum(chunk**2, axis=1)[:, None]
            + np.sum(data**2, axis=1)[None, :]
            - 2.0 * chunk @ data.T
        )
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)
    return np.abs(chunk[:, :, None] - data.T[None, :, :]).sum(axis=1)


def pairwise_distance_chunks(
    data,
    *,
    metric: str = "euclidean",
    chunk_size: int = 256,
) -> Iterator[tuple[int, np.ndarray]]:
    """Yield ``(row_offset, distances)`` blocks of the distance matrix.

    Each block holds the distances from ``chunk_size`` consecutive
    points to the whole dataset, with the self-distance set to +inf so
    downstream order statistics never count a point as its own
    neighbor.
    """
    array = check_matrix(data, "data", allow_nan=False, min_rows=2)
    metric = _check_metric(metric)
    chunk_size = check_positive_int(chunk_size, "chunk_size")
    n = array.shape[0]
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        block = _chunk_distances(array[start:stop], array, metric)
        block[np.arange(stop - start), np.arange(start, stop)] = np.inf
        yield start, block


def kth_neighbor_distances(
    data,
    k: int = 1,
    *,
    metric: str = "euclidean",
    chunk_size: int = 256,
) -> np.ndarray:
    """Distance from each point to its kth nearest neighbor (1-based k).

    ``k = 1`` is the plain nearest-neighbor distance.  This is the
    score ``D^k(p)`` of Ramaswamy et al. [25].
    """
    array = check_matrix(data, "data", allow_nan=False, min_rows=2)
    k = check_positive_int(k, "k")
    if k >= array.shape[0]:
        raise ValidationError(
            f"k ({k}) must be smaller than the number of points ({array.shape[0]})"
        )
    out = np.empty(array.shape[0])
    for start, block in pairwise_distance_chunks(
        array, metric=metric, chunk_size=chunk_size
    ):
        # kth smallest (0-based k-1) along each row via partial selection.
        part = np.partition(block, k - 1, axis=1)[:, k - 1]
        out[start : start + len(part)] = part
    return out


def nearest_neighbors(
    data,
    k: int = 1,
    *,
    metric: str = "euclidean",
    chunk_size: int = 256,
) -> tuple[np.ndarray, np.ndarray]:
    """Indices and distances of each point's k nearest neighbors.

    Returns
    -------
    (indices, distances):
        Both ``(N, k)``, sorted by ascending distance.  Ties break by
        index (numpy argsort stability on the partitioned block).
    """
    array = check_matrix(data, "data", allow_nan=False, min_rows=2)
    k = check_positive_int(k, "k")
    if k >= array.shape[0]:
        raise ValidationError(
            f"k ({k}) must be smaller than the number of points ({array.shape[0]})"
        )
    n = array.shape[0]
    indices = np.empty((n, k), dtype=np.intp)
    distances = np.empty((n, k))
    for start, block in pairwise_distance_chunks(
        array, metric=metric, chunk_size=chunk_size
    ):
        rows = block.shape[0]
        nearest = np.argpartition(block, k - 1, axis=1)[:, :k]
        block_rows = np.arange(rows)[:, None]
        near_dists = block[block_rows, nearest]
        order = np.argsort(near_dists, axis=1, kind="stable")
        indices[start : start + rows] = nearest[block_rows, order]
        distances[start : start + rows] = near_dists[block_rows, order]
    return indices, distances


def neighbor_counts_within(
    data,
    radius: float,
    *,
    metric: str = "euclidean",
    chunk_size: int = 256,
) -> np.ndarray:
    """Number of other points within *radius* of each point.

    This is the neighborhood cardinality behind the DB(k, λ) definition
    of Knorr & Ng [22].
    """
    array = check_matrix(data, "data", allow_nan=False, min_rows=2)
    radius = float(radius)
    if not radius > 0 or np.isnan(radius):
        raise ValidationError(f"radius must be positive, got {radius}")
    out = np.empty(array.shape[0], dtype=np.int64)
    for start, block in pairwise_distance_chunks(
        array, metric=metric, chunk_size=chunk_size
    ):
        counts = np.count_nonzero(block <= radius, axis=1)
        out[start : start + len(counts)] = counts
    return out
