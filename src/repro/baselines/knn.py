"""Ramaswamy-Rastogi-Shim kth-NN distance outliers (reference [25]).

Definition reproduced from the paper's introduction: *given k and n, a
point p is an outlier if the distance to its kth nearest neighbor is
smaller than the corresponding value for no more than n − 1 other
points* — i.e. the n points with the largest kth-NN distances.

This is the comparator used in the arrhythmia experiment (§3.1), where
the paper ran it "using the 1-nearest neighbor" and reports that
results "did not change significantly (and in fact worsened slightly)
when the k-nearest neighbor was used".
"""

from __future__ import annotations

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..exceptions import ValidationError
from .neighbors import kth_neighbor_distances
from .result import BaselineResult

__all__ = ["KNNDistanceOutlierDetector"]


class KNNDistanceOutlierDetector:
    """Top-n outliers by distance to the kth nearest neighbor.

    Parameters
    ----------
    n_neighbors:
        k — which neighbor's distance is the score (1 = nearest).
    n_outliers:
        n — how many points to report.
    metric:
        ``"euclidean"`` (default) or ``"manhattan"``.
    """

    def __init__(
        self,
        n_neighbors: int = 1,
        n_outliers: int = 10,
        *,
        metric: str = "euclidean",
        chunk_size: int = 256,
    ):
        self.n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
        self.n_outliers = check_positive_int(n_outliers, "n_outliers")
        self.metric = metric
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")

    def scores(self, data) -> np.ndarray:
        """Per-point kth-NN distance (larger = more outlying)."""
        return kth_neighbor_distances(
            data,
            self.n_neighbors,
            metric=self.metric,
            chunk_size=self.chunk_size,
        )

    def detect(self, data) -> BaselineResult:
        """Report the n points with the largest kth-NN distances.

        Ties at the cutoff break by point index (ascending) so results
        are deterministic.
        """
        array = check_matrix(data, "data", allow_nan=False, min_rows=2)
        if self.n_outliers > array.shape[0]:
            raise ValidationError(
                f"n_outliers ({self.n_outliers}) exceeds the number of "
                f"points ({array.shape[0]})"
            )
        scores = self.scores(array)
        # Sort by descending score, ascending index on ties.
        order = np.lexsort((np.arange(len(scores)), -scores))
        return BaselineResult(
            outlier_indices=order[: self.n_outliers],
            scores=scores,
            method=f"knn_distance(k={self.n_neighbors})",
            params={
                "n_neighbors": self.n_neighbors,
                "n_outliers": self.n_outliers,
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KNNDistanceOutlierDetector(k={self.n_neighbors}, "
            f"n={self.n_outliers}, metric={self.metric!r})"
        )
