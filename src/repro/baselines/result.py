"""Result container shared by all baseline detectors."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

import numpy as np

from ..exceptions import ValidationError

__all__ = ["BaselineResult"]


@dataclass(frozen=True)
class BaselineResult:
    """Outliers reported by a full-dimensional baseline.

    Attributes
    ----------
    outlier_indices:
        Flagged points, most outlying first.
    scores:
        Per-point outlyingness, length N (semantics depend on the
        detector: kth-NN distance, LOF value, or negated neighbor
        count — always *larger = more outlying*).
    method:
        Detector name for reporting.
    params:
        The parameters that produced the result.
    """

    outlier_indices: np.ndarray
    scores: np.ndarray
    method: str
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        indices = np.asarray(self.outlier_indices, dtype=np.intp)
        scores = np.asarray(self.scores, dtype=np.float64)
        if indices.ndim != 1 or scores.ndim != 1:
            raise ValidationError("outlier_indices and scores must be 1-dimensional")
        if indices.size and (indices.min() < 0 or indices.max() >= scores.size):
            raise ValidationError("outlier_indices out of range for scores")
        object.__setattr__(self, "outlier_indices", indices)
        object.__setattr__(self, "scores", scores)

    @property
    def n_outliers(self) -> int:
        """Number of flagged points."""
        return int(self.outlier_indices.size)

    @property
    def n_points(self) -> int:
        """Dataset size N."""
        return int(self.scores.size)

    def outlier_mask(self) -> np.ndarray:
        """Length-N boolean mask of flagged points."""
        mask = np.zeros(self.n_points, dtype=bool)
        mask[self.outlier_indices] = True
        return mask

    def top(self, n: int) -> np.ndarray:
        """The *n* most outlying flagged points."""
        return self.outlier_indices[:n]
