"""LOF — Local Outlier Factor (Breunig, Kriegel, Ng & Sander; ref [10]).

The density-based method the paper discusses as the strongest related
work: it scores each point by how much sparser its neighborhood is than
its neighbors' neighborhoods.

Implementation follows the original construction:

* ``k_distance(p)`` — distance to the kth nearest neighbor;
* ``reach_dist_k(p, o) = max(k_distance(o), d(p, o))`` — smoothed
  distance;
* ``lrd(p)`` — inverse mean reachability distance of p from its
  neighbors (local reachability density);
* ``LOF(p)`` — mean ratio ``lrd(o) / lrd(p)`` over p's neighbors.

LOF ≈ 1 means the point sits in a region of homogeneous density;
LOF ≫ 1 marks a local outlier.  Like the common open-source
implementations we use exactly the k nearest neighbors rather than the
tie-expanded k-distance neighborhood; with continuous data they
coincide almost surely.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_matrix, check_positive_int
from ..exceptions import ValidationError
from .neighbors import nearest_neighbors
from .result import BaselineResult

__all__ = ["LOFOutlierDetector"]


class LOFOutlierDetector:
    """Top-n outliers by Local Outlier Factor.

    Parameters
    ----------
    n_neighbors:
        The MinPts parameter k of the LOF construction.
    n_outliers:
        How many points to report.
    """

    def __init__(
        self,
        n_neighbors: int = 10,
        n_outliers: int = 10,
        *,
        metric: str = "euclidean",
        chunk_size: int = 256,
    ):
        self.n_neighbors = check_positive_int(n_neighbors, "n_neighbors")
        self.n_outliers = check_positive_int(n_outliers, "n_outliers")
        self.metric = metric
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")

    # ------------------------------------------------------------------
    def scores(self, data) -> np.ndarray:
        """The LOF value of every point (larger = more outlying)."""
        array = check_matrix(data, "data", allow_nan=False, min_rows=2)
        if self.n_neighbors >= array.shape[0]:
            raise ValidationError(
                f"n_neighbors ({self.n_neighbors}) must be smaller than "
                f"the number of points ({array.shape[0]})"
            )
        neighbors, distances = nearest_neighbors(
            array, self.n_neighbors, metric=self.metric, chunk_size=self.chunk_size
        )
        # k-distance of each point = distance to its kth neighbor.
        k_distance = distances[:, -1]
        # reach_dist(p, o) = max(k_distance(o), d(p, o)) for o in kNN(p).
        reach = np.maximum(k_distance[neighbors], distances)
        mean_reach = reach.mean(axis=1)
        # Duplicate clusters give zero mean reachability (infinite
        # density).  Like scikit-learn, regularize with a small epsilon
        # so densities stay finite; the per-neighbor ratio then cancels
        # the epsilon within a duplicate cluster while still assigning a
        # very large (finite) LOF to points adjacent to one.
        lrd = 1.0 / (mean_reach + 1e-10)
        lof = (lrd[neighbors] / lrd[:, None]).mean(axis=1)
        return lof

    def detect(self, data) -> BaselineResult:
        """Report the n points with the largest LOF values."""
        array = check_matrix(data, "data", allow_nan=False, min_rows=2)
        if self.n_outliers > array.shape[0]:
            raise ValidationError(
                f"n_outliers ({self.n_outliers}) exceeds the number of "
                f"points ({array.shape[0]})"
            )
        scores = self.scores(array)
        order = np.lexsort((np.arange(len(scores)), -scores))
        return BaselineResult(
            outlier_indices=order[: self.n_outliers],
            scores=scores,
            method=f"lof(k={self.n_neighbors})",
            params={
                "n_neighbors": self.n_neighbors,
                "n_outliers": self.n_outliers,
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LOFOutlierDetector(k={self.n_neighbors}, n={self.n_outliers}, "
            f"metric={self.metric!r})"
        )
