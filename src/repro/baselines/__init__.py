"""Full-dimensional baseline detectors the paper compares against.

These are the "proximity in full dimensional space" methods whose
failure at high dimensionality motivates the paper:

* :class:`KNNDistanceOutlierDetector` — Ramaswamy, Rastogi & Shim
  (SIGMOD 2000) [25]: rank points by the distance to their kth nearest
  neighbor, report the top n.
* :class:`DBOutlierDetector` — Knorr & Ng (VLDB 1998) [22]: a point is
  an outlier if no more than k points lie within distance λ of it.
* :class:`LOFOutlierDetector` — Breunig et al. (SIGMOD 2000) [10]:
  local outlier factor from local reachability densities.
"""

from .result import BaselineResult
from .neighbors import (
    kth_neighbor_distances,
    neighbor_counts_within,
    nearest_neighbors,
)
from .knn import KNNDistanceOutlierDetector
from .distance_threshold import DBOutlierDetector, suggest_radius
from .lof import LOFOutlierDetector
from .deviation import SequentialDeviationDetector

__all__ = [
    "BaselineResult",
    "kth_neighbor_distances",
    "neighbor_counts_within",
    "nearest_neighbors",
    "KNNDistanceOutlierDetector",
    "DBOutlierDetector",
    "suggest_radius",
    "LOFOutlierDetector",
    "SequentialDeviationDetector",
]
