"""Knorr-Ng distance-threshold outliers DB(k, λ) (reference [22]).

Definition as quoted by the paper: *a point p in a data set is an
outlier with respect to the parameters k and λ, if no more than k
points in the data set are at a distance λ or less from p.*

The paper criticizes exactly the property this implementation makes
easy to demonstrate: λ is brutally hard to pick in high dimensions
because almost all pairwise distances concentrate in a thin shell —
slightly small λ flags everything, slightly large λ flags nothing.
:func:`suggest_radius` implements the natural quantile heuristic so the
benchmarks can show that cliff.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    check_matrix,
    check_non_negative_int,
    check_positive_int,
    check_probability,
)
from ..exceptions import ValidationError
from .neighbors import neighbor_counts_within, pairwise_distance_chunks
from .result import BaselineResult

__all__ = ["DBOutlierDetector", "suggest_radius"]


def suggest_radius(
    data,
    quantile: float = 0.05,
    *,
    metric: str = "euclidean",
    max_sample: int = 500,
    random_state=None,
) -> float:
    """A λ heuristic: the given quantile of sampled pairwise distances.

    Uses at most *max_sample* points (sampled without replacement) so
    the suggestion stays cheap on large datasets.
    """
    array = check_matrix(data, "data", allow_nan=False, min_rows=2)
    quantile = check_probability(quantile, "quantile")
    max_sample = check_positive_int(max_sample, "max_sample", minimum=2)
    if array.shape[0] > max_sample:
        rng = np.random.default_rng(random_state)
        rows = rng.choice(array.shape[0], size=max_sample, replace=False)
        array = array[rows]
    values = []
    for start, block in pairwise_distance_chunks(array, metric=metric):
        # Keep the strict upper triangle: each unordered pair once.
        for i in range(block.shape[0]):
            row = block[i, start + i + 1 :]
            values.append(row[np.isfinite(row)])
    flat = np.concatenate(values) if values else np.array([])
    if flat.size == 0:
        raise ValidationError("not enough points to suggest a radius")
    return float(np.quantile(flat, quantile))


class DBOutlierDetector:
    """DB(k, λ) outliers: sparse λ-neighborhoods.

    Parameters
    ----------
    max_neighbors:
        k — the largest neighborhood size a point may have (within
        radius λ, excluding itself) while still being an outlier.
    radius:
        λ — the neighborhood radius; ``None`` defers to
        :func:`suggest_radius` at detect time.
    radius_quantile:
        The quantile used when *radius* is None.
    """

    def __init__(
        self,
        max_neighbors: int = 1,
        radius: float | None = None,
        *,
        radius_quantile: float = 0.05,
        metric: str = "euclidean",
        chunk_size: int = 256,
        random_state=None,
    ):
        self.max_neighbors = check_non_negative_int(max_neighbors, "max_neighbors")
        if radius is not None:
            radius = float(radius)
            if not radius > 0:
                raise ValidationError(f"radius must be positive, got {radius}")
        self.radius = radius
        self.radius_quantile = check_probability(radius_quantile, "radius_quantile")
        self.metric = metric
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self.random_state = random_state

    def resolve_radius(self, data) -> float:
        """The λ actually used: explicit, or the quantile heuristic."""
        if self.radius is not None:
            return self.radius
        return suggest_radius(
            data,
            self.radius_quantile,
            metric=self.metric,
            random_state=self.random_state,
        )

    def detect(self, data) -> BaselineResult:
        """Flag points with at most k λ-neighbors.

        Scores are negated neighbor counts, so larger = more outlying,
        consistent with the other baselines; flagged points are ordered
        fewest-neighbors-first.
        """
        array = check_matrix(data, "data", allow_nan=False, min_rows=2)
        radius = self.resolve_radius(array)
        counts = neighbor_counts_within(
            array, radius, metric=self.metric, chunk_size=self.chunk_size
        )
        flagged = np.nonzero(counts <= self.max_neighbors)[0]
        order = np.lexsort((flagged, counts[flagged]))
        return BaselineResult(
            outlier_indices=flagged[order],
            scores=-counts.astype(np.float64),
            method=f"db_outlier(k={self.max_neighbors}, lambda={radius:.4g})",
            params={"max_neighbors": self.max_neighbors, "radius": radius},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DBOutlierDetector(k={self.max_neighbors}, radius={self.radius}, "
            f"metric={self.metric!r})"
        )
