"""Sequential-exception deviation detection (Arning et al., KDD 1995; ref [7]).

The paper cites Arning, Agrawal & Raghavan's *linear method for
deviation detection* among the non-proximity outlier families: scan the
data once, measure how much each arriving item increases a
**dissimilarity function** of the set scanned so far, and report the
items with the largest *smoothing factor* — the dissimilarity reduction
their removal would buy.

This implementation uses the classic instantiation for numeric data:
the dissimilarity of a set is its total within-set variance, maintained
incrementally (Welford), so one scan is O(N·d).  Because the sequential
scan is order-dependent (an early-arriving deviant inflates the
baseline for everyone after it), the detector averages smoothing
factors over ``n_shuffles`` random orders — the standard remedy, also
suggested in the original paper's discussion of scan order.

Like the other full-dimensional baselines, this method measures
deviation against *all* attributes at once, so subspace-local anomalies
get diluted by noise dimensions — which is exactly the contrast the
Aggarwal-Yu method draws.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_matrix, check_positive_int, check_rng
from ..exceptions import ValidationError
from .result import BaselineResult

__all__ = ["SequentialDeviationDetector"]


def _sequential_smoothing_factors(data: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Smoothing factor per point for one scan order.

    Scanning in *order*, maintain the running mean and the total sum of
    squared deviations (the set's dissimilarity, up to 1/n).  A point's
    smoothing factor is the dissimilarity increase its arrival caused —
    equivalently the reduction its removal would have bought at that
    moment.
    """
    n, d = data.shape
    factors = np.zeros(n)
    mean = np.zeros(d)
    for position, index in enumerate(order):
        row = data[index]
        delta = row - mean
        mean = mean + delta / (position + 1)
        # Welford's update: contribution of this item to the total
        # sum of squared deviations of the prefix.
        factors[index] = float(delta @ (row - mean))
    return factors


class SequentialDeviationDetector:
    """Top-n deviants by (order-averaged) sequential smoothing factor.

    Parameters
    ----------
    n_outliers:
        How many points to report.
    n_shuffles:
        Number of random scan orders averaged (1 = a single
        order-dependent scan, the original algorithm's behaviour).
    standardize:
        Scale attributes to unit variance before scanning, so no single
        attribute's units dominate the variance-based dissimilarity.
    """

    def __init__(
        self,
        n_outliers: int = 10,
        *,
        n_shuffles: int = 5,
        standardize: bool = True,
        random_state=None,
    ):
        self.n_outliers = check_positive_int(n_outliers, "n_outliers")
        self.n_shuffles = check_positive_int(n_shuffles, "n_shuffles")
        self.standardize = bool(standardize)
        self.random_state = random_state

    def scores(self, data) -> np.ndarray:
        """Mean smoothing factor per point (larger = more deviant)."""
        array = check_matrix(data, "data", allow_nan=False, min_rows=2)
        if self.standardize:
            std = array.std(axis=0)
            std[std == 0] = 1.0
            array = (array - array.mean(axis=0)) / std
        rng = check_rng(self.random_state)
        totals = np.zeros(array.shape[0])
        for _ in range(self.n_shuffles):
            order = rng.permutation(array.shape[0])
            totals += _sequential_smoothing_factors(array, order)
        return totals / self.n_shuffles

    def detect(self, data) -> BaselineResult:
        """Report the n points with the largest smoothing factors."""
        array = check_matrix(data, "data", allow_nan=False, min_rows=2)
        if self.n_outliers > array.shape[0]:
            raise ValidationError(
                f"n_outliers ({self.n_outliers}) exceeds the number of "
                f"points ({array.shape[0]})"
            )
        scores = self.scores(array)
        order = np.lexsort((np.arange(len(scores)), -scores))
        return BaselineResult(
            outlier_indices=order[: self.n_outliers],
            scores=scores,
            method=f"sequential_deviation(shuffles={self.n_shuffles})",
            params={
                "n_outliers": self.n_outliers,
                "n_shuffles": self.n_shuffles,
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SequentialDeviationDetector(n={self.n_outliers}, "
            f"shuffles={self.n_shuffles})"
        )
