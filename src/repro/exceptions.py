"""Exception hierarchy for the :mod:`repro` library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError``
from misuse of numpy, etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "NotFittedError",
    "DiscretizationError",
    "PersistError",
    "SearchError",
    "SearchCancelled",
    "CheckpointError",
    "DatasetError",
    "ResourceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or type).

    Subclasses ``ValueError`` so that idiomatic ``except ValueError``
    handlers written against the public API keep working.
    """


class NotFittedError(ReproError, RuntimeError):
    """A component was used before ``fit`` (or equivalent) was called."""


class DiscretizationError(ReproError):
    """The grid discretizer could not build valid equi-depth ranges."""


class PersistError(ValidationError):
    """A persisted artifact could not be loaded or understood.

    Raised by the persistence layer (:mod:`repro.persist`) when a model
    snapshot is missing, unparseable, malformed, or carries a schema
    version this library does not read.  Subclasses
    :class:`ValidationError` so handlers written against the original
    load errors keep working.
    """


class SearchError(ReproError):
    """A projection search (brute-force or evolutionary) failed."""


class SearchCancelled(ReproError):
    """A cooperative cancellation request interrupted in-flight work.

    Raised from *inside* batch counting when a
    :class:`~repro.run.cancel.CancelToken` flips mid-batch, so the
    search loops can discard the partial generation/level and exit at
    the last safe boundary.  Search ``run()`` methods never propagate
    this — they catch it and return a partial outcome with
    ``stopped_reason="cancelled"``.
    """


class CheckpointError(ReproError):
    """A checkpoint could not be loaded: missing, corrupt, or stale.

    Stale means the checkpoint's run manifest (parameter hash + data
    fingerprint) does not match the run trying to resume from it —
    resuming would silently mix incompatible state, so it is refused.
    """


class DatasetError(ReproError):
    """A dataset could not be loaded, parsed, or generated."""


class ResourceError(ReproError, OSError):
    """A system resource was exhausted or irrecoverably unavailable.

    Raised in place of raw ``OSError``/``MemoryError`` when the library
    runs out of disk (ENOSPC/EDQUOT during an atomic write), cannot
    rebuild a corrupted mask shard, or exhausts its retry budget on an
    I/O path.  Subclasses ``OSError`` so handlers written against the
    raw errors keep working, while the message carries actionable
    context (path, bytes needed, recovery hints).
    """
