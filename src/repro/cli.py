"""Command-line interface: ``repro-outliers`` / ``python -m repro``.

Subcommands
-----------
``detect``
    Run the subspace detector on a CSV file or a built-in dataset and
    print the report (projections, outliers, explanations).  Supports
    ``--output json`` for machine-readable results and ``--save`` to
    persist the fitted model.
``multik``
    Run the detector across several dimensionalities with one shared
    time budget, checkpoint directory and SIGINT/SIGTERM handling —
    an interrupted sweep exits with the conventional ``128+signum``
    code and ``--resume`` picks up where it stopped without
    recomputing completed ks.
``score``
    Score one or more data batches against a model saved by ``detect
    --save``.  Extra batches ride along via repeated ``--in``; the
    model file is stat/digest-checked and hot-reloaded between batches,
    and ``--update`` absorbs each scored batch back into the model
    (atomic save-back) so its sketch and drift state keep tracking the
    served traffic.
``explain``
    Explain a single point of a dataset.
``table1``
    Regenerate the paper's Table 1 comparison on the built-in
    stand-ins (a lighter-weight version of the full benchmark suite).
``datasets``
    List the built-in datasets.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from .core.detector import SubspaceOutlierDetector
from .core.explain import explain_point, render_report
from .core.params import CountingBackend
from .data.loaders import load_csv
from .data.registry import DATASETS, load_dataset
from .engine.registry import engine_names
from .eval.comparison import build_table1, render_table
from .grid.backends import registered_backends
from .exceptions import ReproError, SearchCancelled
from .persist import result_to_dict, save_model
from .run.controller import RunController
from .search.evolutionary.config import EvolutionaryConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-outliers",
        description=(
            "Subspace outlier detection for high dimensional data "
            "(Aggarwal & Yu, SIGMOD 2001)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="run the detector and print a report")
    _add_data_arguments(detect)
    _add_detector_arguments(detect)
    _add_lifecycle_arguments(detect)
    detect.add_argument(
        "--top", type=int, default=10, help="outliers/projections to print"
    )
    detect.add_argument(
        "--output",
        choices=["report", "json"],
        default="report",
        help="report (human-readable) or json (machine-readable result)",
    )
    detect.add_argument(
        "--save", metavar="MODEL.json", default=None,
        help="persist the fitted model for later `score` runs",
    )

    multik = sub.add_parser(
        "multik",
        help="mine several dimensionalities under one budget/checkpoint dir",
    )
    _add_data_arguments(multik)
    _add_detector_arguments(multik)
    _add_lifecycle_arguments(multik)
    multik.add_argument(
        "--ks", nargs="+", type=int, default=None, metavar="K",
        help="dimensionalities to mine (default: every k in [1, k*])",
    )
    multik.add_argument(
        "--output",
        choices=["report", "json"],
        default="report",
        help="report (human-readable) or json (per-k results)",
    )

    score = sub.add_parser("score", help="score new data with a saved model")
    _add_data_arguments(score)
    score.add_argument(
        "--model", required=True, metavar="MODEL.json",
        help="model file written by `detect --save`",
    )
    score.add_argument(
        "--top", type=int, default=10, help="most abnormal points to print"
    )
    score.add_argument(
        "--in", dest="inputs", action="append", default=None, metavar="CSV",
        help=(
            "additional CSV batch to score after the primary input (may "
            "repeat); the model file is re-checked and hot-reloaded "
            "between batches"
        ),
    )
    score.add_argument(
        "--update", action="store_true",
        help=(
            "after scoring each batch, absorb its rows into the model's "
            "incremental state (sketch + occupancy drift) and atomically "
            "save the model back"
        ),
    )
    score.add_argument(
        "--trace-file", default=None, metavar="PATH",
        help=(
            "stream score_request / model_updated / grid_drift_detected "
            "events to PATH as one JSON object per line"
        ),
    )

    explain = sub.add_parser("explain", help="explain one point of a dataset")
    _add_data_arguments(explain)
    _add_detector_arguments(explain)
    explain.add_argument("--point", type=int, required=True, help="row index")
    explain.add_argument(
        "--output",
        choices=["report", "json"],
        default="report",
        help="report (human-readable) or json",
    )

    experiment = sub.add_parser(
        "experiment", help="run one of the paper's evaluation protocols"
    )
    experiment.add_argument(
        "protocol", choices=["arrhythmia", "figure1", "housing"]
    )
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--restarts", type=int, default=None,
        help="GA restarts (protocol default if omitted)",
    )

    table1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument(
        "--datasets",
        nargs="+",
        default=["breast_cancer", "ionosphere", "segmentation", "musk", "machine"],
        help="built-in dataset names",
    )
    table1.add_argument(
        "--brute-budget",
        type=float,
        default=60.0,
        help="seconds before a brute-force run is reported as '-'",
    )
    table1.add_argument(
        "--skip-brute-above",
        type=int,
        default=100,
        help="skip brute force above this dimensionality",
    )
    table1.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep", help="sweep one detector parameter over a dataset"
    )
    _add_data_arguments(sweep)
    sweep.add_argument(
        "--parameter", required=True,
        choices=["dimensionality", "n_ranges", "n_projections"],
    )
    sweep.add_argument(
        "--values", required=True, nargs="+", type=int, help="settings to sweep"
    )
    sweep.add_argument("-k", "--dimensionality", type=int, default=None)
    sweep.add_argument("--phi", type=int, default=None)
    sweep.add_argument("-m", "--projections", type=int, default=20)
    sweep.add_argument(
        "--method", choices=engine_names(), default="brute_force"
    )
    sweep.add_argument("--seed", type=int, default=0)

    export = sub.add_parser(
        "export", help="materialize a built-in dataset as CSV or ARFF"
    )
    export.add_argument("--dataset", choices=sorted(DATASETS), required=True)
    export.add_argument("--format", choices=["csv", "arff"], default="csv")
    export.add_argument("--out", required=True, help="output file path")

    sub.add_parser("datasets", help="list built-in datasets")
    return parser


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--csv", help="path to a headered CSV file")
    source.add_argument(
        "--dataset", choices=sorted(DATASETS), help="built-in dataset name"
    )
    parser.add_argument(
        "--label-column", default=None, help="CSV column holding class labels"
    )


def _add_detector_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-k", "--dimensionality", type=int, default=None)
    parser.add_argument("--phi", type=int, default=None, help="grid ranges per dim")
    parser.add_argument("-m", "--projections", type=int, default=20)
    parser.add_argument(
        "--method",
        choices=engine_names(),
        default="evolutionary",
        help="search engine (from the engine registry)",
    )
    parser.add_argument(
        "--search",
        choices=engine_names(),
        default=None,
        metavar="ENGINE",
        help="search engine to use; overrides --method (same registry names)",
    )
    parser.add_argument("--threshold", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--population", type=int, default=50)
    parser.add_argument("--generations", type=int, default=100)
    parser.add_argument(
        "--packed",
        action="store_true",
        help="use the bit-packed cube counter (8x less mask memory)",
    )
    parser.add_argument(
        "--mmap-dir",
        default=None,
        metavar="DIR",
        help=(
            "count out-of-core: write the packed membership masks to "
            "DIR in row shards and stream them back through read-only "
            "mmap views, so peak counting memory is one shard instead "
            "of the whole mask stack (counts stay bit-identical); a "
            "directory already holding the store for identical data is "
            "reused, and with --checkpoint-dir an interrupted run "
            "resumes mid-dataset"
        ),
    )
    parser.add_argument(
        "--shard-rows",
        type=int,
        default=None,
        metavar="ROWS",
        help=(
            "rows per mask shard for --mmap-dir (default: 2^20); "
            "smaller shards lower peak memory and checkpoint more "
            "often, larger shards amortize per-shard overhead"
        ),
    )
    parser.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help=(
            "where the degradation ladder spills the packed masks when "
            "the in-memory stack cannot be allocated (MemoryError): the "
            "run continues out-of-core with bit-identical counts "
            "(default: a temporary directory removed afterwards); "
            "incompatible with --mmap-dir, which is already out-of-core"
        ),
    )
    parser.add_argument(
        "--verify-shards",
        action="store_true",
        help=(
            "verify every mask shard against its manifest checksum "
            "before counting it (out-of-core runs); a corrupt shard is "
            "quarantined and rebuilt from the in-memory codes"
        ),
    )
    parser.add_argument(
        "--count-backend",
        choices=registered_backends(),
        default="serial",
        help=(
            "how batched cube counts execute (from the backend "
            "registry): 'native' runs the compiled AND+popcount kernel "
            "(numba, else a cc-compiled library, else a numpy "
            "fallback); 'process'/'process-native' fan chunks out to a "
            "shared-memory worker pool"
        ),
    )
    parser.add_argument(
        "--count-workers",
        type=int,
        default=None,
        help="worker processes for --count-backend process (default: all cores)",
    )
    parser.add_argument(
        "--count-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-chunk watchdog for --count-backend process: a chunk "
            "exceeding this is retried and the pool rebuilt (default: "
            "no timeout)"
        ),
    )
    parser.add_argument(
        "--count-retries",
        type=int,
        default=None,
        help=(
            "failed attempts per chunk before it degrades to the serial "
            "kernel (default: 2); counts stay bit-identical either way"
        ),
    )
    parser.add_argument(
        "--count-chunk-size",
        type=int,
        default=None,
        metavar="CUBES",
        help=(
            "cubes per worker task for --count-backend process; batches "
            "smaller than this stay serial (default: 4096)"
        ),
    )


def _add_lifecycle_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="wall-clock budget for the whole run (partial results after)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "write crash-safe checkpoints at every search boundary; an "
            "interrupted run continues bit-identically with --resume"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="boundaries (GA generations / brute-force levels) per checkpoint",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from the checkpoints in --checkpoint-dir",
    )
    parser.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help=(
            "stream every engine event (generations, levels, retries, "
            "checkpoints) to PATH as one JSON object per line"
        ),
    )


def _controller(args) -> RunController:
    """Run lifecycle shared by detect/multik: budget + signals + checkpoints."""
    if args.resume and args.checkpoint_dir is None:
        raise ReproError("--resume requires --checkpoint-dir")
    sink = None
    if getattr(args, "trace_file", None) is not None:
        from .engine.events import JsonlTraceSink

        sink = JsonlTraceSink(args.trace_file)
    return RunController(
        max_seconds=args.max_seconds,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        sink=sink,
    )


def _report_interruption(controller: RunController, stopped_reason: str) -> int:
    """Stderr note + exit code for a run that stopped early."""
    if stopped_reason == "cancelled":
        hint = (
            "; resume with --resume" if controller.store is not None
            else "; rerun with --checkpoint-dir to make runs resumable"
        )
        print(
            f"interrupted: partial results above ({stopped_reason}){hint}",
            file=sys.stderr,
        )
    elif stopped_reason == "deadline":
        print(
            "time budget exhausted: partial results above", file=sys.stderr
        )
    return controller.exit_code()


def _load(args) -> tuple:
    if args.csv:
        dataset = load_csv(args.csv, label_column=args.label_column)
    else:
        dataset = load_dataset(args.dataset)
    return dataset


def _detector(args, dataset, controller=None) -> SubspaceOutlierDetector:
    phi = args.phi or int(dataset.metadata.get("phi", 10))
    config = EvolutionaryConfig(
        population_size=args.population, max_generations=args.generations
    )
    counting = None
    if getattr(args, "count_backend", "serial") != "serial":
        backend_kwargs = {
            "kind": args.count_backend,
            "n_workers": args.count_workers,
        }
        if getattr(args, "count_timeout", None) is not None:
            backend_kwargs["timeout"] = args.count_timeout
        if getattr(args, "count_retries", None) is not None:
            backend_kwargs["max_retries"] = args.count_retries
        if getattr(args, "count_chunk_size", None) is not None:
            backend_kwargs["chunk_size"] = args.count_chunk_size
        counting = CountingBackend(**backend_kwargs)
    return SubspaceOutlierDetector(
        dimensionality=args.dimensionality,
        n_ranges=phi,
        n_projections=args.projections,
        method=getattr(args, "search", None) or args.method,
        threshold=args.threshold,
        config=config,
        packed=getattr(args, "packed", False),
        mmap_dir=getattr(args, "mmap_dir", None),
        shard_rows=getattr(args, "shard_rows", None),
        spill_dir=getattr(args, "spill_dir", None),
        verify_shards=getattr(args, "verify_shards", False),
        counting=counting,
        random_state=args.seed,
        controller=controller,
    )


def _cmd_detect(args) -> int:
    dataset = _load(args)
    controller = _controller(args)
    detector = _detector(args, dataset, controller)
    try:
        with controller.signal_handlers():
            result = detector.detect(
                dataset.values,
                feature_names=dataset.feature_names,
                resume=args.resume,
            )
    finally:
        if controller.sink is not None:
            controller.sink.close()
    if args.output == "json":
        print(json.dumps(result_to_dict(result), indent=2))
    else:
        print(
            render_report(
                result, detector.cells_, dataset.values, top=args.top,
                feature_names=dataset.feature_names,
            )
        )
    if result.backend_degraded:
        health = result.backend_health
        print(
            "warning: counting backend degraded "
            f"({health.get('retries', 0)} retries, "
            f"{health.get('timeouts', 0)} timeouts, "
            f"{health.get('rebuilds', 0)} rebuilds, "
            f"{health.get('fallbacks', 0)} fallbacks); "
            "results are bit-identical to the serial backend",
            file=sys.stderr,
        )
    resilience = result.stats.get("resilience", {})
    if resilience.get("degraded"):
        parts = []
        for entry in resilience.get("degradations", []):
            parts.append(
                f"{entry['chain']}: {entry['from']} -> {entry['to']}"
            )
        for shard in resilience.get("quarantines", []):
            parts.append(f"quarantined shard {shard['shard']}")
        print(
            "warning: resilience ladder engaged ("
            + "; ".join(parts)
            + "); results are bit-identical to the healthy path",
            file=sys.stderr,
        )
    if args.save:
        path = save_model(detector, args.save)
        print(f"model saved to {path}", file=sys.stderr)
    return _report_interruption(controller, result.stopped_reason)


def _cmd_multik(args) -> int:
    from .core.multik import detect_across_dimensionalities

    dataset = _load(args)
    controller = _controller(args)
    phi = args.phi or int(dataset.metadata.get("phi", 10))
    detector_kwargs = {
        "n_ranges": phi,
        "n_projections": args.projections,
        "method": getattr(args, "search", None) or args.method,
        "threshold": args.threshold,
        "config": EvolutionaryConfig(
            population_size=args.population, max_generations=args.generations
        ),
        "packed": args.packed,
        "mmap_dir": getattr(args, "mmap_dir", None),
        "shard_rows": getattr(args, "shard_rows", None),
        "spill_dir": getattr(args, "spill_dir", None),
        "verify_shards": getattr(args, "verify_shards", False),
        "random_state": args.seed,
    }
    try:
        with controller.signal_handlers():
            outcome = detect_across_dimensionalities(
                dataset.values,
                args.ks,
                feature_names=dataset.feature_names,
                detector_kwargs=detector_kwargs,
                controller=controller,
                resume=args.resume,
            )
    except SearchCancelled as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return controller.exit_code() or 1
    finally:
        if controller.sink is not None:
            controller.sink.close()
    if args.output == "json":
        payload = {
            "stopped_reason": outcome.stopped_reason,
            "results": {
                str(k): result_to_dict(result)
                for k, result in outcome.results.items()
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"dataset: {dataset.summary()}")
        for line in outcome.summary_lines():
            print(line)
    return _report_interruption(controller, outcome.stopped_reason)


def _cmd_score(args) -> int:
    from .model import ModelHandle

    sink = None
    if getattr(args, "trace_file", None) is not None:
        from .engine.events import JsonlTraceSink

        sink = JsonlTraceSink(args.trace_file)
    batches = [(None, _load(args))]
    for extra in getattr(args, "inputs", None) or []:
        batches.append((extra, load_csv(extra, label_column=args.label_column)))
    handle = ModelHandle(args.model, event_sink=sink)
    try:
        for label, dataset in batches:
            # Hot reload: a concurrent retrain/update that rewrote the
            # model file between batches is picked up here.
            model = handle.current()
            if label is not None:
                print(f"--- {label}")
            scores = model.score(dataset.values)
            flagged = [
                (int(i), float(scores[i]))
                for i in np.argsort(scores)
                if not np.isnan(scores[i])
            ]
            print(
                f"{len(flagged)} of {dataset.n_points} points covered by the "
                f"model's {len(model.projections)} projections"
            )
            for point, value in flagged[: args.top]:
                print(f"  point {point:>6}  score {value:.3f}")
            if getattr(args, "update", False):
                drift = model.update(dataset.values)
                handle.save(model)
                note = (
                    f"; drift {drift.max_divergence:.3f} over "
                    f"{drift.n_rows} absorbed rows"
                    + (" [DRIFTED past threshold]" if drift.drifted else "")
                )
                print(
                    f"model updated (+{dataset.n_points} rows, "
                    f"version {model.version}){note}",
                    file=sys.stderr,
                )
    finally:
        if sink is not None:
            sink.close()
    return 0


def _cmd_explain(args) -> int:
    dataset = _load(args)
    detector = _detector(args, dataset)
    result = detector.detect(dataset.values, feature_names=dataset.feature_names)
    explanation = explain_point(
        args.point, result, detector.cells_, dataset.values, dataset.feature_names
    )
    if args.output == "json":
        print(json.dumps(explanation.to_dict(), indent=2))
    else:
        print(explanation)
    return 0


def _cmd_experiment(args) -> int:
    from .eval.protocols import (
        run_arrhythmia_protocol,
        run_figure1_protocol,
        run_housing_protocol,
    )

    if args.protocol == "arrhythmia":
        dataset = load_dataset("arrhythmia")
        config = EvolutionaryConfig(
            population_size=100,
            max_generations=60,
            restarts=args.restarts or 10,
        )
        outcome = run_arrhythmia_protocol(
            dataset, config=config, random_state=args.seed
        )
    elif args.protocol == "figure1":
        dataset = load_dataset("figure1_views")
        config = EvolutionaryConfig(
            population_size=60,
            max_generations=60,
            restarts=args.restarts or 4,
        )
        outcome = run_figure1_protocol(
            dataset, config=config, random_state=args.seed
        )
    else:
        dataset = load_dataset("housing")
        outcome = run_housing_protocol(dataset, random_state=args.seed)
    print(f"protocol: {args.protocol}  ({dataset.summary()})")
    for line in outcome.summary_lines():
        print(line)
    return 0


def _cmd_table1(args) -> int:
    datasets = [load_dataset(name) for name in args.datasets]
    rows = build_table1(
        datasets,
        brute_max_seconds=args.brute_budget,
        skip_brute_above_dims=args.skip_brute_above,
        random_state=args.seed,
    )
    print(render_table(rows))
    return 0


def _cmd_sweep(args) -> int:
    from .eval.sweeps import render_sweep, sweep_detector_parameter

    dataset = _load(args)
    base = {
        "n_projections": args.projections,
        "method": args.method,
        "random_state": args.seed,
    }
    if args.parameter != "n_ranges":
        base["n_ranges"] = args.phi or int(dataset.metadata.get("phi", 10))
    if args.parameter != "dimensionality" and args.dimensionality is not None:
        base["dimensionality"] = args.dimensionality
    if args.parameter == "n_projections":
        base.pop("n_projections")
    rows = sweep_detector_parameter(
        dataset.values, args.parameter, args.values, base_kwargs=base
    )
    print(f"dataset: {dataset.summary()}")
    print(render_sweep(rows, args.parameter))
    return 0


def _cmd_export(args) -> int:
    from .data.export import write_arff, write_csv

    dataset = load_dataset(args.dataset)
    writer = write_csv if args.format == "csv" else write_arff
    path = writer(dataset, args.out)
    print(f"wrote {dataset.summary()} to {path}")
    return 0


def _cmd_datasets(_args) -> int:
    for name in sorted(DATASETS):
        dataset = load_dataset(name)
        print(f"{name:<16} {dataset.summary()}")
    return 0


_COMMANDS = {
    "detect": _cmd_detect,
    "multik": _cmd_multik,
    "score": _cmd_score,
    "explain": _cmd_explain,
    "experiment": _cmd_experiment,
    "table1": _cmd_table1,
    "sweep": _cmd_sweep,
    "export": _cmd_export,
    "datasets": _cmd_datasets,
}


def main(argv=None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
