"""The incremental, mergeable model unit: :class:`GridModel`.

Before this layer existed, the pipeline was strictly batch: the
detector fitted a discretizer, built a counter, searched, and every
artifact died with the call.  :class:`GridModel` packages the three
pieces of fitted state — the discretizer (grid cut points + row
sketch), the cell assignment, and the cube counter (packed mask stacks
+ cached counts) — into one versioned unit that can keep living:

* :meth:`update` absorbs new rows *without* refitting: they are coded
  under the frozen grid, appended to the counter by popcount deltas
  (:meth:`~repro.grid.counter.CubeCounter.append_rows`), and fed to the
  discretizer's reservoir sketch;
* :meth:`merge` folds another model fitted on a disjoint row shard into
  this one (distributed fits);
* :meth:`rebin` lazily recuts the grid from everything absorbed so far
  and rebuilds the masks — bit-identical to a one-shot batch fit on the
  concatenated rows (the layer's defining invariant, locked by
  ``tests/test_model_incremental.py``);
* :meth:`score` / :meth:`predict` serve new points against the mined
  projections, also available on a model restored from disk without the
  training data (*serving mode*).

Every mutation bumps :attr:`version` and emits a registered event
(``model_updated`` / ``rebin_triggered`` / ``grid_drift_detected`` /
``score_request``), so operators can watch a long-lived model drift and
rebin through the ordinary event bus.  Occupancy of absorbed rows is
tracked per (dimension, range) and checked against the equi-depth
``f = 1/φ`` design point (:func:`~repro.grid.health.check_grid_drift`);
with ``rebin_policy="auto"`` a drifted model recuts itself.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from .._validation import check_matrix
from ..core.results import ScoredProjection
from ..engine.events import EventSink, emit_event
from ..exceptions import NotFittedError, ValidationError
from ..grid.cells import CellAssignment
from ..grid.counter import CubeCounter
from ..grid.discretizer import EquiDepthDiscretizer, GridDiscretizer, StreamingReservoir
from ..grid.health import DEFAULT_DRIFT_THRESHOLD, GridDriftReport, check_grid_drift
from ..grid.packed_counter import PackedCubeCounter

__all__ = ["GridModel", "CounterFactory", "REBIN_POLICIES"]

#: Builds the cube counter for a cell assignment — the seam the
#: detector uses to route its packed/sharded/spill counter ladder
#: through the model layer.
CounterFactory = Callable[[CellAssignment], CubeCounter]

#: ``manual`` — :meth:`GridModel.rebin` only when called; ``auto`` —
#: also whenever an absorbed batch pushes occupancy drift past the
#: threshold (serving-mode models never auto-rebin: no masks to rebuild).
REBIN_POLICIES = ("manual", "auto")

_COUNTER_KEYS = ("updates", "rows_appended", "merges", "rebins", "drift_events")


def _checked_projections(
    value: Sequence[ScoredProjection],
) -> tuple[ScoredProjection, ...]:
    projections = tuple(value)
    for p in projections:
        if not isinstance(p, ScoredProjection):
            raise ValidationError(
                f"projections must be ScoredProjection, got {type(p).__name__}"
            )
    return projections


class GridModel:
    """Discretizer + cell assignment + cube counter as one updatable unit.

    Build one with :meth:`fit` (full state, in-memory rows retained) or
    :meth:`from_snapshot` (serving mode: grid + projections only, as
    restored by :func:`repro.persist.load_model`).  The low-level
    constructor wires pre-built parts together and validates they agree.

    Parameters
    ----------
    discretizer:
        A *fitted* grid discretizer.
    counter:
        The cube counter over the model's rows (``None`` in serving
        mode).
    data:
        The raw rows the counter was built from, retained so
        :meth:`rebin` can recut exactly (``None`` in serving mode).
    projections:
        Mined abnormal projections (what :meth:`score` serves).
    counter_factory:
        How :meth:`rebin` rebuilds the counter after recutting.
    event_sink:
        Where model lifecycle events go (``None`` drops them).
    drift_threshold:
        Per-dimension occupancy divergence past which absorbed rows
        count as drifted.
    rebin_policy:
        One of :data:`REBIN_POLICIES`.
    sketch_size:
        Reservoir capacity used when the model lazily enables the
        discretizer's sketch on first update (``None``: the
        discretizer's own default).
    occupancy, n_points, version, counters:
        Restored bookkeeping (snapshot loads); fresh models start at
        zero.
    """

    def __init__(
        self,
        discretizer: GridDiscretizer,
        *,
        counter: CubeCounter | None = None,
        data: Any | None = None,
        projections: Sequence[ScoredProjection] = (),
        counter_factory: CounterFactory | None = None,
        event_sink: EventSink | None = None,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        rebin_policy: str = "manual",
        sketch_size: int | None = None,
        occupancy: Any | None = None,
        n_points: int | None = None,
        version: int = 0,
        counters: Mapping[str, int] | None = None,
    ) -> None:
        if not discretizer.is_fitted:
            raise ValidationError(
                "GridModel needs a fitted discretizer — use GridModel.fit(data)"
            )
        if rebin_policy not in REBIN_POLICIES:
            raise ValidationError(
                f"rebin_policy must be one of {REBIN_POLICIES}, got {rebin_policy!r}"
            )
        if not 0.0 < float(drift_threshold) <= 1.0:
            raise ValidationError(
                f"drift threshold must be in (0, 1], got {drift_threshold!r}"
            )
        self.discretizer = discretizer
        n_dims = len(discretizer.boundaries)
        if data is not None:
            data = np.ascontiguousarray(data, dtype=np.float64)
            if data.ndim != 2 or data.shape[1] != n_dims:
                raise ValidationError(
                    f"data must be 2-D with {n_dims} columns, got "
                    f"shape {data.shape}"
                )
        if counter is not None:
            if counter.cells.n_ranges != discretizer.n_ranges:
                raise ValidationError(
                    f"counter has n_ranges={counter.cells.n_ranges}, "
                    f"discretizer has {discretizer.n_ranges}"
                )
            if data is not None and counter.n_points != data.shape[0]:
                raise ValidationError(
                    f"counter holds {counter.n_points} points, data has "
                    f"{data.shape[0]} rows"
                )
        self.counter = counter
        self._data: np.ndarray | None = data
        self._projections = _checked_projections(projections)
        self._counter_factory: CounterFactory = (
            counter_factory or self.default_counter_factory()
        )
        self.event_sink = event_sink
        self.drift_threshold = float(drift_threshold)
        self.rebin_policy = rebin_policy
        self._sketch_size = sketch_size
        if occupancy is None:
            occ = np.zeros((n_dims, discretizer.n_ranges), dtype=np.int64)
        else:
            occ = np.asarray(occupancy, dtype=np.int64)
            if occ.shape != (n_dims, discretizer.n_ranges):
                raise ValidationError(
                    f"occupancy must have shape ({n_dims}, "
                    f"{discretizer.n_ranges}), got {occ.shape}"
                )
        self._occupancy = occ
        if n_points is not None:
            self._n_points = int(n_points)
        elif counter is not None:
            self._n_points = int(counter.n_points)
        else:
            self._n_points = 0 if data is None else int(data.shape[0])
        self.version = int(version)
        restored = dict(counters or {})
        self._n_updates = int(restored.get("updates", 0))
        self._rows_appended = int(restored.get("rows_appended", 0))
        self._n_merges = int(restored.get("merges", 0))
        self._n_rebins = int(restored.get("rebins", 0))
        self._n_drift_events = int(restored.get("drift_events", 0))
        self._last_drift: GridDriftReport | None = None

    # -- construction ---------------------------------------------------
    @staticmethod
    def default_counter_factory(*, packed: bool = False) -> CounterFactory:
        """In-memory counter builder (packed masks on request)."""

        def build(cells: CellAssignment) -> CubeCounter:
            if packed:
                return PackedCubeCounter(cells)
            return CubeCounter(cells)

        return build

    @classmethod
    def fit(
        cls,
        data: Any,
        *,
        n_ranges: int = 10,
        feature_names: Sequence[str] | None = None,
        discretizer: GridDiscretizer | None = None,
        packed: bool = False,
        counter_factory: CounterFactory | None = None,
        event_sink: EventSink | None = None,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        rebin_policy: str = "manual",
        sketch_size: int | None = None,
    ) -> "GridModel":
        """Fit a fresh model on *data* — the batch entry point.

        Single discretization pass (``fit_transform``), one counter
        build; the rows are retained so later :meth:`rebin` calls are
        exact.
        """
        array = check_matrix(data, "data")
        disc = discretizer or EquiDepthDiscretizer(n_ranges)
        cells = disc.fit_transform(array, feature_names=feature_names)
        factory = counter_factory or cls.default_counter_factory(packed=packed)
        counter = factory(cells)
        return cls(
            disc,
            counter=counter,
            data=array,
            counter_factory=factory,
            event_sink=event_sink,
            drift_threshold=drift_threshold,
            rebin_policy=rebin_policy,
            sketch_size=sketch_size,
        )

    @classmethod
    def from_snapshot(
        cls,
        *,
        boundaries: Sequence[Any],
        n_ranges: int,
        projections: Sequence[ScoredProjection] = (),
        feature_names: Sequence[str] | None = None,
        sketch_state: Mapping[str, Any] | None = None,
        occupancy: Any | None = None,
        n_points: int = 0,
        version: int = 0,
        counters: Mapping[str, int] | None = None,
        event_sink: EventSink | None = None,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
        rebin_policy: str = "manual",
    ) -> "GridModel":
        """Restore a *serving-mode* model from persisted grid state.

        No raw rows, no mask stacks: :meth:`score`, :meth:`predict` and
        sketch/occupancy-only :meth:`update` work; :meth:`rebin` and
        :meth:`merge` need the full state and refuse.
        """
        disc = EquiDepthDiscretizer.from_cut_points(boundaries, feature_names)
        if disc.n_ranges != int(n_ranges):
            raise ValidationError(
                f"boundaries imply n_ranges={disc.n_ranges}, payload says "
                f"{n_ranges}"
            )
        if sketch_state is not None:
            disc.restore_sketch(dict(sketch_state))
        return cls(
            disc,
            projections=projections,
            occupancy=occupancy,
            n_points=n_points,
            version=version,
            counters=counters,
            event_sink=event_sink,
            drift_threshold=drift_threshold,
            rebin_policy=rebin_policy,
        )

    # -- introspection --------------------------------------------------
    @property
    def projections(self) -> tuple[ScoredProjection, ...]:
        """The mined abnormal projections currently served by ``score``."""
        return self._projections

    @projections.setter
    def projections(self, value: Sequence[ScoredProjection]) -> None:
        self._projections = _checked_projections(value)

    @property
    def cells(self) -> CellAssignment | None:
        """The counter's cell assignment (``None`` in serving mode)."""
        return None if self.counter is None else self.counter.cells

    @property
    def boundaries(self) -> tuple[np.ndarray, ...]:
        """Per-attribute grid cut points."""
        return self.discretizer.boundaries

    @property
    def feature_names(self) -> tuple[str, ...] | None:
        """Attribute names, when the model was fitted with any."""
        if self.counter is not None:
            return self.counter.cells.feature_names
        return self.discretizer._feature_names

    @property
    def n_ranges(self) -> int:
        """Grid resolution φ."""
        return self.discretizer.n_ranges

    @property
    def n_dims(self) -> int:
        """Number of attributes the grid covers."""
        return len(self.discretizer.boundaries)

    @property
    def n_points(self) -> int:
        """Rows the model has absorbed (fit + updates + merges)."""
        return self._n_points

    @property
    def raw_data(self) -> np.ndarray | None:
        """The retained rows (``None`` in serving mode)."""
        return self._data

    @property
    def is_serving(self) -> bool:
        """True for a model restored without rows and mask stacks."""
        return self.counter is None

    @property
    def can_rebin(self) -> bool:
        """True when the model holds everything a rebin rebuild needs."""
        return self.counter is not None and self._data is not None

    @property
    def occupancy(self) -> np.ndarray:
        """Post-fit ``(d, φ)`` occupancy counts of absorbed rows (copy)."""
        return self._occupancy.copy()

    @property
    def last_drift(self) -> GridDriftReport | None:
        """The most recent drift check (``None`` before any update)."""
        return self._last_drift

    # -- mutation -------------------------------------------------------
    def update(self, points: Any) -> GridDriftReport:
        """Absorb new rows without refitting; returns the drift check.

        The rows are coded under the *current* grid and appended to the
        counter by popcount deltas — counts afterwards are bit-identical
        to a from-scratch build on the concatenated rows.  The grid
        itself does not move until :meth:`rebin` (or immediately, under
        ``rebin_policy="auto"`` with drift past the threshold).
        """
        array = check_matrix(points, "points")
        assignment = self.discretizer.transform(array)
        self._ensure_sketch()
        self.discretizer.partial_fit(array)
        if self.counter is not None:
            self.counter.append_rows(assignment)
        if self._data is not None:
            self._data = np.concatenate([self._data, array], axis=0)
        self._absorb_occupancy(assignment.codes)
        rows = int(array.shape[0])
        self._n_points += rows
        self._n_updates += 1
        self._rows_appended += rows
        self.version += 1
        emit_event(
            self.event_sink,
            "model_updated",
            action="update",
            rows=rows,
            n_points=self._n_points,
            version=self.version,
        )
        return self._after_absorb()

    def merge(self, other: "GridModel") -> GridDriftReport:
        """Fold *other* (fitted on different rows) into this model.

        *other*'s raw rows are re-coded under **this** model's grid and
        appended; its discretizer sketch is folded into this sketch so a
        later :meth:`rebin` sees the union (exact while the combined
        rows fit the reservoir; a documented deterministic approximation
        beyond — see ``docs/streaming.md``).
        """
        if not isinstance(other, GridModel):
            raise ValidationError(
                f"can only merge another GridModel, got {type(other).__name__}"
            )
        if other.n_ranges != self.n_ranges:
            raise ValidationError(
                f"cannot merge models with n_ranges {other.n_ranges} and "
                f"{self.n_ranges}"
            )
        if self.counter is None or self._data is None:
            raise ValidationError(
                "a serving-mode model (restored without its rows and mask "
                "stacks) cannot absorb a merge; re-fit with GridModel.fit"
            )
        if other._data is None:
            raise ValidationError(
                "the other model was restored without its raw rows; merge "
                "needs them to recode under this model's grid"
            )
        block = other._data
        assignment = self.discretizer.transform(block)
        self._ensure_sketch()
        other._ensure_sketch()
        self.discretizer.merge(other.discretizer)
        self.counter.append_rows(assignment)
        self._data = np.concatenate([self._data, block], axis=0)
        self._absorb_occupancy(assignment.codes)
        rows = int(block.shape[0])
        self._n_points += rows
        self._n_merges += 1
        self._rows_appended += rows
        self.version += 1
        emit_event(
            self.event_sink,
            "model_updated",
            action="merge",
            rows=rows,
            n_points=self._n_points,
            version=self.version,
        )
        return self._after_absorb()

    def rebin(self, *, force: bool = False, reason: str = "manual") -> bool:
        """Recut the grid over everything absorbed; rebuild the masks.

        Lazy: a model with nothing absorbed since the last (re)fit
        returns ``False`` untouched (``force=True`` recuts anyway).
        The recut runs on the retained rows, so the resulting model is
        bit-identical to a one-shot batch fit on the concatenated data.
        Mined projections reference the old grid and are cleared —
        re-mine with ``SubspaceOutlierDetector.detect_model``.
        """
        if self.counter is None or self._data is None:
            raise ValidationError(
                "this model was restored for serving (no raw rows or mask "
                "stacks) and cannot rebin; re-fit with GridModel.fit or "
                "rebuild it via detect()"
            )
        if not force and not self.discretizer.sketch_stale:
            return False
        cells = self.discretizer.fit_transform(
            self._data, feature_names=self.feature_names
        )
        self.counter.close()
        self.counter = self._counter_factory(cells)
        self._occupancy = np.zeros_like(self._occupancy)
        self._projections = ()
        self._last_drift = None
        self._n_rebins += 1
        self.version += 1
        emit_event(
            self.event_sink,
            "rebin_triggered",
            reason=reason,
            n_points=self._n_points,
            version=self.version,
        )
        return True

    # -- serving --------------------------------------------------------
    def score(self, points: Any) -> np.ndarray:
        """Deviation score per point: best covering coefficient, else NaN."""
        if not self._projections:
            raise NotFittedError(
                "model has no mined projections — run "
                "SubspaceOutlierDetector.detect_model(model) first (a "
                "rebin clears them)"
            )
        array = check_matrix(points, "points")
        cells = self.discretizer.transform(array)
        scores = np.full(array.shape[0], np.nan)
        for projection in self._projections:
            covered = projection.subspace.covers(cells.codes)
            scores[covered] = np.fmin(scores[covered], projection.coefficient)
        emit_event(
            self.event_sink,
            "score_request",
            n_points=int(array.shape[0]),
            n_flagged=int(np.count_nonzero(~np.isnan(scores))),
            version=self.version,
        )
        return scores

    def predict(self, points: Any) -> np.ndarray:
        """Boolean outlier mask for new points."""
        return ~np.isnan(self.score(points))

    # -- bookkeeping ----------------------------------------------------
    def stats_dict(self) -> dict[str, Any]:
        """JSON-friendly lifecycle snapshot (``result.stats["model"]``)."""
        sketch = self.discretizer.sketch
        return {
            "model_version": self.version,
            "n_points": self._n_points,
            "serving": self.counter is None,
            "rebin_policy": self.rebin_policy,
            "drift_threshold": self.drift_threshold,
            "updates": self._n_updates,
            "rows_appended": self._rows_appended,
            "merges": self._n_merges,
            "rebins": self._n_rebins,
            "drift_events": self._n_drift_events,
            "last_drift": (
                None if self._last_drift is None else self._last_drift.as_dict()
            ),
            "sketch": (
                None
                if sketch is None
                else {
                    "capacity": sketch.capacity,
                    "n_seen": sketch.n_seen,
                    "stale": self.discretizer.sketch_stale,
                }
            ),
        }

    def to_dict(self) -> dict[str, Any]:
        """The persistence-layer v2 payload (see :mod:`repro.persist`)."""
        from ..persist import model_payload

        return model_payload(self)

    def persistable_sketch(self) -> StreamingReservoir | None:
        """The sketch to persist: the live one, else one built from rows.

        A freshly fitted model may never have enabled its sketch (zero
        overhead for plain batch detection); at save time we still want
        the snapshot updatable, so the retained rows are streamed
        through a throwaway reservoir without mutating the model.
        """
        sketch = self.discretizer.sketch
        if sketch is not None:
            return sketch
        if self._data is None:
            return None
        return StreamingReservoir(self._default_sketch_capacity()).update(
            self._data
        )

    def close(self) -> None:
        """Release the counter's resources (pools, mmaps).  Idempotent."""
        if self.counter is not None:
            self.counter.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "serving" if self.is_serving else "full"
        return (
            f"GridModel(N={self._n_points}, d={self.n_dims}, "
            f"phi={self.n_ranges}, projections={len(self._projections)}, "
            f"version={self.version}, {mode})"
        )

    # -- internals ------------------------------------------------------
    def _default_sketch_capacity(self) -> int:
        from ..grid.discretizer import DEFAULT_SAMPLE_SIZE

        return self._sketch_size or DEFAULT_SAMPLE_SIZE

    def _ensure_sketch(self) -> None:
        """Lazily enable the discretizer sketch before the first absorb.

        Seeded with the retained rows the current grid was fitted on, so
        a later rebin sees the full history — equivalent (chunk-boundary
        invariance of the reservoir) to having sketched at fit time.
        """
        if self.discretizer.sketch is not None:
            return
        if self._data is not None:
            self.discretizer.enable_sketch(
                self._data, capacity=self._default_sketch_capacity()
            )
        else:
            self.discretizer.enable_sketch(
                capacity=self._default_sketch_capacity()
            )

    def _absorb_occupancy(self, codes: np.ndarray) -> None:
        for j in range(codes.shape[1]):
            column = codes[:, j]
            observed = column[column >= 0]
            if observed.size:
                self._occupancy[j] += np.bincount(
                    observed, minlength=self.n_ranges
                ).astype(np.int64)

    def _after_absorb(self) -> GridDriftReport:
        report = check_grid_drift(self._occupancy, self.drift_threshold)
        self._last_drift = report
        if report.drifted:
            self._n_drift_events += 1
            emit_event(
                self.event_sink,
                "grid_drift_detected",
                version=self.version,
                **report.as_dict(),
            )
            if self.rebin_policy == "auto" and self.can_rebin:
                self.rebin(reason="drift")
        return report
