"""Serving a saved model file with hot reload: :class:`ModelHandle`.

The CLI's ``score`` endpoint (and any long-lived host process) holds a
handle on a model *file* rather than a loaded model: each request goes
through :meth:`ModelHandle.current`, which reloads the model when the
file changed underneath — a concurrent ``repro score --update`` run, a
retrain job, an rsync.  Change detection is two-level so the hot path
stays cheap:

1. a ``stat`` stamp (``st_mtime_ns``, ``st_size``) — one syscall per
   request; unchanged stamp means the cached model is served as-is;
2. on a stamp change, a SHA-256 of the file contents — a rewrite with
   identical bytes (same snapshot re-saved) refreshes the stamp without
   a reload, so model identity follows content, not timestamps.

Saves go through the handle too (:meth:`ModelHandle.save`): the write
is atomic (:mod:`repro._atomic`) and the stamp/digest are refreshed so
the process never reloads its own save.  Every genuine reload emits a
``model_updated`` event with ``action="hot_reload"``.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

from .._atomic import atomic_write_json
from ..engine.events import EventSink, emit_event
from ..exceptions import PersistError
from .grid_model import GridModel

__all__ = ["ModelHandle"]


class ModelHandle:
    """A hot-reloadable handle on a model file written by ``save_model``."""

    def __init__(self, path: str | Path, *, event_sink: EventSink | None = None):
        self.path = Path(path)
        self.event_sink = event_sink
        self._model: GridModel | None = None
        self._stamp: tuple[int, int] | None = None
        self._digest: str | None = None
        self.reloads = 0

    # ------------------------------------------------------------------
    def current(self) -> GridModel:
        """The up-to-date model, reloading it if the file changed."""
        stamp = self._file_stamp()
        if self._model is not None and stamp == self._stamp:
            return self._model
        digest = self._file_digest()
        if self._model is not None and digest == self._digest:
            # Touched (new mtime) but byte-identical: adopt the stamp so
            # the next request is back on the one-syscall path.
            self._stamp = stamp
            return self._model
        from ..persist import load_model

        model = load_model(self.path, event_sink=self.event_sink)
        first = self._model is None
        self._model = model
        self._stamp = stamp
        self._digest = digest
        if not first:
            self.reloads += 1
            emit_event(
                self.event_sink,
                "model_updated",
                action="hot_reload",
                path=str(self.path),
                version=model.version,
            )
        return model

    def save(self, model: GridModel) -> Path:
        """Atomically write *model* back to the file and adopt it."""
        atomic_write_json(self.path, model.to_dict())
        self._model = model
        self._stamp = self._file_stamp()
        self._digest = self._file_digest()
        return self.path

    # ------------------------------------------------------------------
    def _file_stamp(self) -> tuple[int, int]:
        try:
            stat = self.path.stat()
        except FileNotFoundError:
            raise PersistError(f"model file not found: {self.path}") from None
        return (stat.st_mtime_ns, stat.st_size)

    def _file_digest(self) -> str:
        return hashlib.sha256(self.path.read_bytes()).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        loaded = "unloaded" if self._model is None else f"v{self._model.version}"
        return f"ModelHandle({self.path}, {loaded}, reloads={self.reloads})"
