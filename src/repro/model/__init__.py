"""Incremental, mergeable model layer over the batch pipeline.

:class:`GridModel` owns the fitted state the batch detector used to
throw away — discretizer grid + sketch, cell assignment, packed cube
counter — as one versioned unit with ``update`` / ``merge`` / ``rebin``
/ ``score``; :class:`ModelHandle` serves a saved model file with hot
reload.  See ``docs/streaming.md`` for the incremental algebra and its
bit-identity guarantees.
"""

from .grid_model import REBIN_POLICIES, CounterFactory, GridModel
from .serving import ModelHandle

__all__ = ["GridModel", "ModelHandle", "CounterFactory", "REBIN_POLICIES"]
