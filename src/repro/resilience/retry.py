"""A shared retry policy for every transient-failure loop in the stack.

PRs 2/3 each grew their own ad-hoc retry loop (chunk redispatch in
``grid/parallel.py``, current→prev fallback in ``run/checkpoint.py``).
This module centralizes the knobs — bounded attempts, exponential
backoff with a cap, per-class retryability — so all layers degrade the
same way and chaos tests can reason about one policy.

Backoff jitter is a **deterministic** hash of the attempt number (a
Weyl-style multiplicative mix), not a random draw: the repro-lint rules
ban unseeded randomness (RPL001) and wall-clock reads (RPL002) in
library code, and determinism here keeps chaos-test timings stable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..exceptions import ValidationError

__all__ = ["RetryPolicy"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-attempt retry with capped exponential backoff.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    initial attempt plus two retries.  ``backoff`` is the delay before
    the first retry, doubling each retry up to ``backoff_cap``.
    ``jitter`` scales a deterministic per-attempt perturbation (0 → no
    jitter) so co-scheduled retries de-synchronize without randomness.
    ``retryable`` is the exception tuple worth retrying; anything else
    propagates on first failure.
    """

    max_attempts: int = 3
    backoff: float = 0.05
    backoff_cap: float = 1.0
    jitter: float = 0.0
    retryable: tuple[type[BaseException], ...] = (OSError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError("max_attempts must be >= 1")
        if self.backoff < 0 or self.backoff_cap < 0 or self.jitter < 0:
            raise ValidationError(
                "backoff, backoff_cap and jitter must be >= 0"
            )

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether *exc* belongs to a class this policy retries."""
        return isinstance(exc, self.retryable)

    def delay(self, attempt: int) -> float:
        """Backoff before retry number *attempt* (1-based), in seconds."""
        if attempt < 1:
            return 0.0
        base = min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))
        if not self.jitter:
            return base
        # Deterministic jitter: Knuth's multiplicative hash of the
        # attempt index, folded to [0, 1).
        frac = ((attempt * 2654435761) & 0xFFF) / 4096.0
        return base * (1.0 + self.jitter * frac)

    def call(
        self,
        fn: Callable[[], T],
        *,
        describe: str = "operation",
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[int, BaseException], None] | None = None,
        on_recover: Callable[[int], None] | None = None,
    ) -> T:
        """Run *fn* under this policy, returning its result.

        ``on_retry(attempt, exc)`` fires before each backoff sleep;
        ``on_recover(retries)`` fires when a call succeeds after at
        least one retry.  The last retryable exception is re-raised
        unchanged once the attempt budget is exhausted — callers wrap
        it in a typed :class:`~repro.exceptions.ReproError` at the API
        boundary.
        """
        last: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                result = fn()
            except self.retryable as exc:
                last = exc
                if attempt == self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                pause = self.delay(attempt)
                if pause > 0:
                    sleep(pause)
                continue
            if attempt > 1 and on_recover is not None:
                on_recover(attempt - 1)
            return result
        raise last if last is not None else RuntimeError(
            f"{describe}: retry loop exited without result"
        )
