"""Degradation ladder: explicit downgrade chains plus a run-wide report.

When a layer fails repeatedly it should step down to a slower-but-safe
configuration rather than crash: ``process-native → native → serial``
kernels, in-memory packed stacks → the out-of-core
:class:`~repro.grid.sharded.ShardedMaskStore` on :class:`MemoryError`,
quarantine-plus-rebuild for a corrupted shard.  Every completed
fallback is bit-identical to the healthy path — the chains only ever
trade speed or memory, never results.

:class:`ResilienceReport` accumulates what happened (retries,
recoveries, degradations, quarantines, final ladder positions) and
lands in ``result.stats["resilience"]``; :class:`DegradationLadder`
applies downgrades, emitting typed ``degradation_applied`` /
``fault_recovered`` events on the run's event bus as it goes.
"""

from __future__ import annotations

from typing import Any, Callable

from ..exceptions import SearchCancelled

__all__ = ["DegradationLadder", "ResilienceReport"]


class ResilienceReport:
    """Mutable accumulator of resilience activity for one run.

    Mirrors :class:`~repro.grid.health.BackendHealth` in shape:
    ``as_dict`` is JSON-safe for ``result.stats``, ``merge`` folds a
    child report (e.g. a per-counter report into the run-wide one), and
    ``summary`` renders one log-friendly line.
    """

    __slots__ = ("retries", "recoveries", "degradations", "quarantines",
                 "ladder")

    def __init__(self) -> None:
        self.retries: dict[str, int] = {}
        self.recoveries: dict[str, int] = {}
        self.degradations: list[dict[str, Any]] = []
        self.quarantines: list[dict[str, Any]] = []
        self.ladder: dict[str, str] = {}

    # ------------------------------------------------------------------
    def record_retry(self, site: str, count: int = 1) -> None:
        """Count *count* retries at *site* (e.g. ``"checkpoint.load"``)."""
        if count > 0:
            self.retries[site] = self.retries.get(site, 0) + count

    def record_recovery(self, point: str, count: int = 1) -> None:
        """Count a fault at *point* that the run survived."""
        if count > 0:
            self.recoveries[point] = self.recoveries.get(point, 0) + count

    def record_degradation(
        self, chain: str, src: str, dst: str, reason: str
    ) -> None:
        """Record a ladder step ``src → dst`` on *chain*."""
        self.degradations.append(
            {"chain": chain, "from": src, "to": dst, "reason": reason}
        )
        self.ladder[chain] = dst

    def record_quarantine(self, shard: int, reason: str) -> None:
        """Record one shard quarantined and rebuilt."""
        self.quarantines.append({"shard": int(shard), "reason": reason})

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether anything at all had to be retried or downgraded."""
        return bool(
            self.retries or self.recoveries or self.degradations
            or self.quarantines
        )

    def merge(self, other: "ResilienceReport") -> None:
        """Fold *other* into this report in place."""
        for site, count in other.retries.items():
            self.record_retry(site, count)
        for point, count in other.recoveries.items():
            self.record_recovery(point, count)
        self.degradations.extend(other.degradations)
        self.quarantines.extend(other.quarantines)
        self.ladder.update(other.ladder)

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe snapshot for ``result.stats["resilience"]``."""
        return {
            "degraded": self.degraded,
            "retries": dict(self.retries),
            "recoveries": dict(self.recoveries),
            "degradations": [dict(d) for d in self.degradations],
            "quarantines": [dict(q) for q in self.quarantines],
            "ladder": dict(self.ladder),
        }

    def summary(self) -> str:
        """One human-readable line, e.g. for CLI warnings."""
        if not self.degraded:
            return "resilience: clean run"
        parts = []
        if self.retries:
            parts.append(f"{sum(self.retries.values())} retries")
        if self.recoveries:
            parts.append(f"{sum(self.recoveries.values())} faults recovered")
        if self.degradations:
            steps = ", ".join(
                f"{d['chain']}:{d['from']}→{d['to']}"
                for d in self.degradations
            )
            parts.append(f"degraded ({steps})")
        if self.quarantines:
            parts.append(f"{len(self.quarantines)} shards quarantined")
        return "resilience: " + "; ".join(parts)


class DegradationLadder:
    """Applies downgrade chains and narrates them on the event bus.

    *sink_provider* is a zero-arg callable returning the current event
    sink (or ``None``); it is a callable rather than a sink because the
    counter's sink is attached after construction and may change per
    ``detect`` call.
    """

    def __init__(
        self,
        report: ResilienceReport,
        sink_provider: Callable[[], Any] | None = None,
    ) -> None:
        self.report = report
        self._sink_provider = sink_provider

    def _emit(self, event_type: str, payload: dict[str, Any]) -> None:
        sink = self._sink_provider() if self._sink_provider else None
        if sink is None:
            return
        from ..engine.events import emit_event

        emit_event(sink, event_type, **payload)

    # ------------------------------------------------------------------
    def apply(self, chain: str, src: str, dst: str, reason: str) -> None:
        """Record and announce one ladder step ``src → dst``."""
        self.report.record_degradation(chain, src, dst, reason)
        self._emit(
            "degradation_applied",
            {"chain": chain, "from": src, "to": dst, "reason": reason},
        )

    def recovered(self, point: str, **detail: Any) -> None:
        """Record and announce a fault at *point* the run survived."""
        self.report.record_recovery(point)
        self._emit("fault_recovered", {"point": point, **detail})

    def quarantine(self, shard: int, reason: str) -> None:
        """Record and announce one shard quarantined and rebuilt."""
        self.report.record_quarantine(shard, reason)
        self.recovered("shard_quarantine", shard=int(shard), reason=reason)

    def guarded(
        self,
        chain: str,
        src: str,
        dst: str,
        primary: Callable[[], Any],
        fallback: Callable[[], Any],
        on_downgrade: Callable[[BaseException], None] | None = None,
    ):
        """Run *primary*; on failure step down the ladder and run *fallback*.

        Cooperative cancellation is never swallowed — a
        :class:`SearchCancelled` from *primary* propagates unchanged.
        Everything else (a native kernel segfault surfacing as a pool
        error, a transient numpy failure) triggers the downgrade: the
        step is recorded, ``on_downgrade(exc)`` runs (e.g. to disable
        the broken backend), and *fallback* produces the bit-identical
        result.
        """
        try:
            return primary()
        except SearchCancelled:
            raise
        except Exception as exc:
            self.apply(chain, src, dst, f"{type(exc).__name__}: {exc}")
            if on_downgrade is not None:
                on_downgrade(exc)
            return fallback()
