"""Deterministic fault injection at named points across the stack.

PR 2 threaded :class:`~repro.core.params.FaultPlan` through the
counting pool so chaos tests could kill workers reproducibly.  This
module generalizes the idea: any layer can declare a **fault point** —
a named seam where a specific failure class can occur — and call
:func:`maybe_inject` there.  Chaos tests then arm one or more
:class:`FaultSpec` instances via the :func:`fault_injection` context
manager; production runs pay a single global ``None`` check.

Injection is deterministic by construction: each fault point keeps a
run-wide invocation counter, and a spec fires when that counter reaches
its ``trigger`` index (and keeps firing for ``times`` invocations).  No
clocks, no randomness — the same program order yields the same faults,
which is what lets the chaos suite assert bit-identical recovery.

.. note::
   Counters live in the :class:`FaultInjector` of the *current
   process*.  Pool workers forked after the context manager is entered
   inherit the armed specs but keep independent counters, so pool-side
   chaos tests should use ``trigger=0`` (fire on first invocation) or
   ``times=None`` (fire always) rather than relying on a cross-process
   invocation order.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass
from typing import Callable, Iterator
import contextlib

__all__ = [
    "FAULT_POINTS",
    "FaultInjector",
    "FaultSpec",
    "active_injector",
    "fault_injection",
    "maybe_inject",
    "register_fault_point",
]


def _enospc(detail: dict) -> BaseException:
    exc = OSError(errno.ENOSPC, "injected: no space left on device")
    return exc


def _eio(detail: dict) -> BaseException:
    return OSError(errno.EIO, "injected: I/O error")


def _oom(detail: dict) -> BaseException:
    return MemoryError("injected: allocation failure")


#: Registry of named fault points → default error factory.  A factory
#: takes the ``detail`` mapping passed to :func:`maybe_inject` and
#: returns the exception instance to raise.
FAULT_POINTS: dict[str, Callable[[dict], BaseException]] = {
    "atomic_write": _enospc,
    "shard_open": _eio,
    "shard_read": _eio,
    "checkpoint_load": _eio,
    "packed_alloc": _oom,
}


def register_fault_point(
    name: str, default_error: Callable[[dict], BaseException]
) -> None:
    """Declare a new named fault point with its default error factory."""
    if not name or not isinstance(name, str):
        raise ValueError("fault point name must be a non-empty string")
    FAULT_POINTS[name] = default_error


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: fire at *point* starting at invocation *trigger*.

    ``trigger`` is the 0-based invocation index of the fault point at
    which the fault first fires; ``times`` bounds how many consecutive
    invocations fail (``None`` = every invocation from *trigger* on,
    modelling a persistent fault).  ``error`` overrides the point's
    default error factory with a fixed exception instance.
    """

    point: str
    trigger: int = 0
    times: int | None = 1
    error: BaseException | None = None

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            known = ", ".join(sorted(FAULT_POINTS))
            raise ValueError(
                f"unknown fault point {self.point!r}; registered points: "
                f"{known}"
            )
        if self.trigger < 0:
            raise ValueError("trigger must be >= 0")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 or None")


class FaultInjector:
    """Holds armed specs plus per-point invocation/fired counters."""

    def __init__(self, specs: tuple[FaultSpec, ...]) -> None:
        self.specs = specs
        self._invocations: dict[str, int] = {}
        self._fired: dict[int, int] = {}

    def check(self, point: str, detail: dict) -> None:
        """Raise the armed fault for *point* if its trigger is reached."""
        seen = self._invocations.get(point, 0)
        self._invocations[point] = seen + 1
        for i, spec in enumerate(self.specs):
            if spec.point != point or seen < spec.trigger:
                continue
            fired = self._fired.get(i, 0)
            if spec.times is not None and fired >= spec.times:
                continue
            self._fired[i] = fired + 1
            exc = spec.error
            if exc is None:
                exc = FAULT_POINTS[point](detail)
            raise exc

    def invocations(self, point: str) -> int:
        """How many times *point* was reached in this process."""
        return self._invocations.get(point, 0)

    def fired(self) -> int:
        """Total faults raised by this injector in this process."""
        return sum(self._fired.values())


#: Process-global active injector; ``None`` outside chaos tests, so the
#: hot-path cost of an unarmed fault point is one global load.
_ACTIVE: FaultInjector | None = None


def active_injector() -> FaultInjector | None:
    """The currently armed injector, or ``None`` outside chaos tests."""
    return _ACTIVE


def maybe_inject(point: str, **detail) -> None:
    """Hook placed at a fault point; no-op unless an injector is armed."""
    if _ACTIVE is not None:
        _ACTIVE.check(point, detail)


@contextlib.contextmanager
def fault_injection(*specs: FaultSpec) -> Iterator[FaultInjector]:
    """Arm *specs* for the duration of the ``with`` block.

    Nested arming is rejected — overlapping injectors would make
    trigger indices ambiguous, and no test needs it.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("fault injection is already active")
    injector = FaultInjector(tuple(specs))
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = None
