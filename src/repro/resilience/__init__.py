"""Cross-layer robustness: fault injection, retry policy, degradation.

Three pieces, shared by every layer that touches the OS or a pool:

- :mod:`~repro.resilience.faults` — named fault points with
  deterministic, trigger-indexed injection for chaos tests;
- :mod:`~repro.resilience.retry` — one :class:`RetryPolicy` replacing
  the ad-hoc retry loops in the counting pools and checkpoint store;
- :mod:`~repro.resilience.ladder` — explicit downgrade chains
  (kernel → serial, in-memory → out-of-core, shard quarantine) with a
  run-wide :class:`ResilienceReport` surfaced in
  ``result.stats["resilience"]``.

See ``docs/resilience.md`` for the failure-envelope matrix.
"""

from .faults import (
    FAULT_POINTS,
    FaultInjector,
    FaultSpec,
    active_injector,
    fault_injection,
    maybe_inject,
    register_fault_point,
)
from .ladder import DegradationLadder, ResilienceReport
from .retry import RetryPolicy

__all__ = [
    "FAULT_POINTS",
    "DegradationLadder",
    "FaultInjector",
    "FaultSpec",
    "ResilienceReport",
    "RetryPolicy",
    "active_injector",
    "fault_injection",
    "maybe_inject",
    "register_fault_point",
]
