"""Ground-truth ranking comparison across all planted stand-ins.

The paper could only evaluate indirectly (rare classes as a proxy)
because real UCI data has no outlier ground truth.  The synthetic
stand-ins do — every dataset carries its planted anomaly indices — so
this benchmark reports what the paper couldn't: ROC AUC of each method
as a *ranker* of the planted anomalies, per dataset.

Methods: the subspace detector's score (GA-mined projections), kNN
distance, LOF, and sequential deviation — all full-dimensional
baselines sharing the same mean-imputed input.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.deviation import SequentialDeviationDetector
from repro.baselines.knn import KNNDistanceOutlierDetector
from repro.baselines.lof import LOFOutlierDetector
from repro.core.detector import SubspaceOutlierDetector
from repro.data.registry import load_dataset
from repro.eval.ranking import outlyingness_from_subspace_scores, roc_auc

from conftest import register_report, run_once

DATASETS = ["breast_cancer", "ionosphere", "segmentation", "musk", "machine"]

_ROWS: dict[str, tuple] = {}


def _aucs_for(name: str) -> tuple:
    dataset = load_dataset(name)
    labels = np.zeros(dataset.n_points, dtype=bool)
    labels[dataset.planted_outliers] = True

    # Protocol note: the planted anomalies are 2-dimensional rare
    # combinations, so the ranking model mines k = 2 at phi = 5 and —
    # since this benchmark measures the *measure*, not the search —
    # uses exhaustive enumeration (k = 2 is cheap even at 160 dims).
    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=5,
        n_projections=40,
        method="brute_force",
    )
    detector.detect(dataset.values)
    subspace = roc_auc(
        outlyingness_from_subspace_scores(detector.score(dataset.values)),
        labels,
    )
    knn = roc_auc(
        KNNDistanceOutlierDetector(n_neighbors=1).scores(dataset.values), labels
    )
    lof = roc_auc(
        LOFOutlierDetector(n_neighbors=10).scores(dataset.values), labels
    )
    deviation = roc_auc(
        SequentialDeviationDetector(n_shuffles=5, random_state=0).scores(
            dataset.values
        ),
        labels,
    )
    return subspace, knn, lof, deviation


@pytest.mark.parametrize("name", DATASETS)
def test_dataset(benchmark, name):
    row = run_once(benchmark, lambda: _aucs_for(name))
    _ROWS[name] = row
    subspace = row[0]
    assert subspace > 0.7


def test_report_and_shape(benchmark):
    def build():
        lines = [
            "ROC AUC of each method ranking the planted anomalies "
            "(subspace model: exhaustive k=2, phi=5 projections)",
            "",
            f"{'dataset':<16}{'subspace':>10}{'kNN':>8}{'LOF':>8}{'deviation':>11}",
            "-" * 53,
        ]
        for name in DATASETS:
            subspace, knn, lof, deviation = _ROWS[name]
            lines.append(
                f"{name:<16}{subspace:>10.3f}{knn:>8.3f}{lof:>8.3f}"
                f"{deviation:>11.3f}"
            )
        return lines

    lines = run_once(benchmark, build)
    wins = sum(
        1
        for name in DATASETS
        if _ROWS[name][0] >= max(_ROWS[name][1:]) - 1e-9
    )
    lines += [
        "",
        f"subspace is the best (or tied-best) ranker on {wins}/"
        f"{len(DATASETS)} datasets.",
        "Paper shape: the subspace advantage grows with dimensionality "
        "— starkest on 160-d musk (0.99 vs 0.63/0.50); at 8 dims "
        "(machine) full-dimensional distance is still competitive, "
        "exactly the regime the paper concedes to prior methods.",
    ]
    register_report("Ground-truth ranking - AUC across stand-ins", lines)
    assert wins >= 4
