"""Ablation: convergence dynamics of the GA (history instrumentation).

Tracks the per-generation best coefficient and the population's
modal-string share for the optimized and two-point crossover variants.
The curve is the mechanism behind Table 1's quality gap: the optimized
crossover drives the best set down fast and keeps the whole population
feasible, while the two-point baseline leaks fitness into infeasible
children every generation.
"""

from __future__ import annotations

import pytest

from repro.data.registry import load_dataset
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer
from repro.search.evolutionary.config import EvolutionaryConfig
from repro.search.evolutionary.engine import EvolutionarySearch

from conftest import register_report, run_once

CHECKPOINTS = [0, 5, 10, 20, 40]
_CURVES: dict[str, list] = {}


@pytest.fixture(scope="module")
def counter():
    dataset = load_dataset("ionosphere")
    cells = EquiDepthDiscretizer(int(dataset.metadata["phi"])).fit_transform(
        dataset.values
    )
    return CubeCounter(cells)


@pytest.mark.parametrize("crossover", ["optimized", "two_point"])
def test_track_curve(benchmark, counter, crossover):
    def run():
        return EvolutionarySearch(
            counter,
            dimensionality=3,
            n_projections=20,
            config=EvolutionaryConfig(
                population_size=40,
                max_generations=max(CHECKPOINTS),
                track_history=True,
            ),
            crossover=crossover,
            random_state=0,
        ).run()

    outcome = run_once(benchmark, run)
    _CURVES[crossover] = list(outcome.history)
    assert outcome.history
    best = [r.best_coefficient for r in outcome.history]
    assert all(b <= a + 1e-12 for a, b in zip(best, best[1:], strict=False))


def test_report_and_shape(benchmark):
    def build_lines():
        lines = [
            "dataset: ionosphere stand-in (d=34, phi=3, k=3); "
            "best-set coefficient and feasible-population share by generation",
            "",
            f"{'gen':>5}"
            f"{'opt best':>11}{'opt feas':>10}{'opt conv':>10}"
            f"{'2pt best':>11}{'2pt feas':>10}{'2pt conv':>10}",
            "-" * 67,
        ]
        for generation in CHECKPOINTS:
            row = f"{generation:>5}"
            for variant in ("optimized", "two_point"):
                curve = _CURVES[variant]
                record = next(
                    (r for r in curve if r.generation == generation), curve[-1]
                )
                row += (
                    f"{record.best_coefficient:>11.3f}"
                    f"{record.n_feasible:>10}"
                    f"{record.convergence:>10.2f}"
                )
            lines.append(row)
        return lines

    lines = run_once(benchmark, build_lines)
    lines += [
        "",
        "Shape: the optimized crossover keeps every child feasible and "
        "reaches its final quality within a few generations; the "
        "two-point variant bleeds population into infeasible strings.",
    ]
    register_report("Ablation - GA convergence dynamics", lines)

    # Feasibility shape: optimized keeps the whole population feasible
    # at every recorded generation; two-point does not.
    opt_min_feasible = min(r.n_feasible for r in _CURVES["optimized"])
    two_point_min_feasible = min(r.n_feasible for r in _CURVES["two_point"])
    assert opt_min_feasible == 40
    assert two_point_min_feasible < 40
    # Quality shape at the end of the run.
    assert (
        _CURVES["optimized"][-1].best_coefficient
        <= _CURVES["two_point"][-1].best_coefficient + 1e-9
    )
