"""Substrate micro-benchmark: cube-counting engines.

Not a paper table — this measures the reproduction's own engine-room
(DESIGN.md "Counting" decision): the boolean-mask counter vs the
bit-packed counter vs naive row scanning, at a scale larger than any
paper dataset, plus the memoisation hit rate a GA-shaped workload
achieves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.subspace import Subspace
from repro.grid.cells import CellAssignment
from repro.grid.counter import CubeCounter
from repro.grid.packed_counter import PackedCubeCounter

N_POINTS = 100_000
N_DIMS = 32
PHI = 8
N_CUBES = 300

_LINES: list[str] = []


@pytest.fixture(scope="module")
def cells():
    rng = np.random.default_rng(5)
    codes = rng.integers(0, PHI, size=(N_POINTS, N_DIMS)).astype(np.int16)
    return CellAssignment(codes, PHI)


@pytest.fixture(scope="module")
def cubes():
    rng = np.random.default_rng(6)
    out = []
    for _ in range(N_CUBES):
        k = int(rng.integers(2, 5))
        dims = tuple(sorted(rng.choice(N_DIMS, size=k, replace=False).tolist()))
        ranges = tuple(int(r) for r in rng.integers(0, PHI, size=k))
        out.append(Subspace(dims, ranges))
    return out


def _count_all(counter, cubes):
    return [counter.count(cube) for cube in cubes]


def test_boolean_mask_counter(benchmark, cells, cubes):
    counter = CubeCounter(cells, cache_size=0)
    counts = benchmark.pedantic(
        lambda: _count_all(counter, cubes), rounds=1, iterations=1
    )
    _LINES.append(
        f"{'boolean masks':<22}{counter.mask_memory_bytes() / 1e6:>12.1f} MB"
    )
    assert len(counts) == N_CUBES


def test_packed_counter(benchmark, cells, cubes):
    counter = PackedCubeCounter(cells, cache_size=0)
    reference = _count_all(CubeCounter(cells, cache_size=0), cubes)
    counts = benchmark.pedantic(
        lambda: _count_all(counter, cubes), rounds=1, iterations=1
    )
    _LINES.append(
        f"{'bit-packed masks':<22}{counter.mask_memory_bytes() / 1e6:>12.1f} MB"
    )
    assert counts == reference


def test_cache_effectiveness(benchmark, cells, cubes):
    # A GA re-evaluates converging populations: simulate 10x repetition.
    counter = CubeCounter(cells)

    def repeated():
        for _ in range(10):
            _count_all(counter, cubes)
        return counter.cache_stats()

    stats = benchmark.pedantic(repeated, rounds=1, iterations=1)
    hit_rate = stats["cache_hits"] / stats["count_calls"]
    _LINES.append(f"{'memoisation hit rate':<22}{hit_rate:>12.1%}")
    assert hit_rate > 0.85


def test_report(benchmark):
    lines = benchmark.pedantic(
        lambda: [
            f"N={N_POINTS:,}, d={N_DIMS}, phi={PHI}; {N_CUBES} random cubes "
            "(k in 2..4)",
            "",
        ]
        + _LINES,
        rounds=1,
        iterations=1,
    )
    from conftest import register_report

    register_report("Substrate - cube counting engines", lines)
