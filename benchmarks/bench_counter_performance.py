"""Substrate micro-benchmark: cube-counting engines.

Not a paper table — this measures the reproduction's own engine-room
(DESIGN.md "Counting" decision): the boolean-mask counter vs the
bit-packed counter vs naive row scanning, at a scale larger than any
paper dataset, plus the memoisation hit rate a GA-shaped workload
achieves, plus the batched kernel's speedup over per-cube counting on
a GA-population-sized batch (the headline number for the batch API) —
now measured per counting backend (serial numpy kernel vs the native
compiled kernel) and appended to the tracked perf trajectory in
``BENCH_engine.json`` (see ``repro.bench.trajectory``), which
``benchmarks/check_regression.py`` gates in CI.

Environment knobs:

- ``REPRO_BENCH_JSON`` — trajectory output path (default:
  ``BENCH_engine.json`` at the repo root).
- ``REPRO_BENCH_PROFILE=ci`` — shrink the workload for the CI
  bench-gate job and skip the absolute-speedup assertions (timings on
  shared runners are noisy; the regression gate compares run-to-run
  instead).
"""

from __future__ import annotations

import os
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np
import pytest

from repro.bench import append_entry
from repro.core.params import CountingBackend
from repro.core.subspace import Subspace
from repro.grid.cells import CellAssignment
from repro.grid.counter import CubeCounter
from repro.grid.native import kernel_info
from repro.grid.packed_counter import PackedCubeCounter
from repro.grid.sharded import ShardedCounter, ShardedMaskStore

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "full")
FULL = PROFILE != "ci"

if FULL:
    N_POINTS = 100_000
    N_DIMS = 32
    PHI = 8
    N_CUBES = 300
    # The batch scenario mirrors the paper's running example (d=20,
    # phi=10, k=4) with a GA population of 500 strings over N=50k points.
    BATCH_N = 50_000
    BATCH_D = 20
    BATCH_PHI = 10
    BATCH_K = 4
    BATCH_P = 500
else:
    # Small enough for a CI job, large enough that the batched timings
    # are well clear of fixed per-call overhead (the regression gate
    # compares them run-to-run at a 20% threshold, so they must not
    # jitter at that scale).
    N_POINTS = 5_000
    N_DIMS = 16
    PHI = 8
    N_CUBES = 60
    BATCH_N = 30_000
    BATCH_D = 20
    BATCH_PHI = 10
    BATCH_K = 4
    BATCH_P = 400

#: Best-of-N repetitions for the batched timings — the min is far more
#: stable than the mean on shared machines; the noisier CI runners get
#: more repetitions, and each repetition times INNER consecutive calls
#: so a sub-millisecond kernel is still measured over several
#: milliseconds (the 20% regression gate needs timings that do not
#: jitter at that scale between two runs of the same commit).
REPS = 3 if FULL else 9
INNER = 1 if FULL else 10

_LINES: list[str] = []

#: Scalar summary metrics for this run's trajectory entry.
_METRICS: dict[str, float] = {}
#: Per-backend timing records for this run's trajectory entry.
_BACKENDS: dict[str, dict] = {}
_BENCH_JSON = Path(
    os.environ.get(
        "REPRO_BENCH_JSON",
        Path(__file__).resolve().parents[1] / "BENCH_engine.json",
    )
)


@pytest.fixture(scope="module")
def cells():
    rng = np.random.default_rng(5)
    codes = rng.integers(0, PHI, size=(N_POINTS, N_DIMS)).astype(np.int16)
    return CellAssignment(codes, PHI)


@pytest.fixture(scope="module")
def cubes():
    rng = np.random.default_rng(6)
    out = []
    for _ in range(N_CUBES):
        k = int(rng.integers(2, 5))
        dims = tuple(sorted(rng.choice(N_DIMS, size=k, replace=False).tolist()))
        ranges = tuple(int(r) for r in rng.integers(0, PHI, size=k))
        out.append(Subspace(dims, ranges))
    return out


def _count_all(counter, cubes):
    return [counter.count(cube) for cube in cubes]


def _timed_count_all(counter, cubes, metric_key):
    t0 = time.perf_counter()
    counts = _count_all(counter, cubes)
    _METRICS[metric_key] = time.perf_counter() - t0
    return counts


def _best_of(fn, reps=REPS, inner=INNER):
    """Return (result, best_seconds) where each of *reps* samples times
    *inner* consecutive calls and reports the per-call average."""
    best = float("inf")
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        for _ in range(inner):
            result = fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return result, best


def test_boolean_mask_counter(benchmark, cells, cubes):
    counter = CubeCounter(cells, cache_size=0)
    counts = benchmark.pedantic(
        lambda: _timed_count_all(counter, cubes, "boolean_mask_seconds"),
        rounds=1, iterations=1,
    )
    _LINES.append(
        f"{'boolean masks':<22}{counter.mask_memory_bytes() / 1e6:>12.1f} MB"
    )
    _METRICS["boolean_mask_memory_mb"] = counter.mask_memory_bytes() / 1e6
    assert len(counts) == N_CUBES


def test_packed_counter(benchmark, cells, cubes):
    counter = PackedCubeCounter(cells, cache_size=0)
    reference = _count_all(CubeCounter(cells, cache_size=0), cubes)
    counts = benchmark.pedantic(
        lambda: _timed_count_all(counter, cubes, "packed_mask_seconds"),
        rounds=1, iterations=1,
    )
    _LINES.append(
        f"{'bit-packed masks':<22}{counter.mask_memory_bytes() / 1e6:>12.1f} MB"
    )
    _METRICS["packed_mask_memory_mb"] = counter.mask_memory_bytes() / 1e6
    assert counts == reference


def test_cache_effectiveness(benchmark, cells, cubes):
    # A GA re-evaluates converging populations: simulate 10x repetition.
    counter = CubeCounter(cells)

    def repeated():
        for _ in range(10):
            _count_all(counter, cubes)
        return counter.cache_stats()

    stats = benchmark.pedantic(repeated, rounds=1, iterations=1)
    hit_rate = stats["cache_hits"] / stats["count_calls"]
    _LINES.append(f"{'memoisation hit rate':<22}{hit_rate:>12.1%}")
    _METRICS["cache_hit_rate"] = hit_rate
    assert hit_rate > 0.85


def test_batch_speedup(benchmark):
    # Acceptance (full profile): count_batch on a population-sized batch
    # must beat per-cube counting by >= 3x, and the native backend must
    # beat the serial batched path by >= 2x when a compiled tier is up.
    rng = np.random.default_rng(7)
    codes = rng.integers(0, BATCH_PHI, size=(BATCH_N, BATCH_D)).astype(np.int16)
    cells = CellAssignment(codes, BATCH_PHI)
    population = []
    for _ in range(BATCH_P):
        dims = tuple(
            sorted(rng.choice(BATCH_D, size=BATCH_K, replace=False).tolist())
        )
        ranges = tuple(int(r) for r in rng.integers(0, BATCH_PHI, size=BATCH_K))
        population.append(Subspace(dims, ranges))

    per_cube = CubeCounter(cells, cache_size=0)
    t0 = time.perf_counter()
    reference = _count_all(per_cube, population)
    per_cube_seconds = time.perf_counter() - t0

    serial = PackedCubeCounter(cells, cache_size=0)
    counts, batch_seconds = benchmark.pedantic(
        lambda: _best_of(lambda: serial.count_batch(population)),
        rounds=1, iterations=1,
    )

    native = PackedCubeCounter(
        cells, cache_size=0, backend=CountingBackend(kind="native")
    )
    native_counts, native_seconds = _best_of(
        lambda: native.count_batch(population)
    )
    tier = kernel_info()["tier"]

    # The out-of-core counter over the same data: 8 mmapped row shards
    # streamed through the native kernel.  The interesting number is the
    # overhead vs the all-in-RAM native path (mmap opens + per-shard
    # kernel launches + the accumulator), tracked run-to-run like the
    # other backends.
    with tempfile.TemporaryDirectory() as mask_dir:
        store = ShardedMaskStore.build(
            cells, mask_dir, shard_rows=-(-BATCH_N // 8)
        )
        sharded = ShardedCounter(
            store, cache_size=0, backend=CountingBackend(kind="native")
        )
        sharded_counts, sharded_seconds = _best_of(
            lambda: sharded.count_batch(population)
        )
        n_shards = store.n_shards
        sharded.close()

    speedup = per_cube_seconds / batch_seconds
    native_speedup = batch_seconds / native_seconds
    _LINES.append(
        f"{'batch API speedup':<22}{speedup:>11.1f}x  "
        f"(p={BATCH_P}, k={BATCH_K}, N={BATCH_N:,}: "
        f"{per_cube_seconds:.2f}s per-cube vs {batch_seconds:.2f}s batched)"
    )
    _LINES.append(
        f"{'native vs batched':<22}{native_speedup:>11.1f}x  "
        f"(kernel tier '{tier}': {native_seconds * 1e3:.2f}ms vs "
        f"{batch_seconds * 1e3:.2f}ms serial)"
    )
    sharded_overhead = sharded_seconds / native_seconds
    _LINES.append(
        f"{'sharded (out-of-core)':<22}{sharded_overhead:>11.1f}x  "
        f"(vs native in-RAM: {sharded_seconds * 1e3:.2f}ms over "
        f"{n_shards} mmapped shards)"
    )
    _METRICS["batch_speedup"] = speedup
    _METRICS["batch_seconds"] = batch_seconds
    _METRICS["per_cube_seconds"] = per_cube_seconds
    _METRICS["native_batch_seconds"] = native_seconds
    _METRICS["native_speedup_vs_batch"] = native_speedup
    _METRICS["sharded_batch_seconds"] = sharded_seconds
    _METRICS["sharded_overhead_vs_native"] = sharded_overhead
    _BACKENDS["serial"] = {"batch_seconds": batch_seconds}
    _BACKENDS["native"] = {
        "batch_seconds": native_seconds,
        "kernel_tier": tier,
    }
    _BACKENDS["sharded"] = {
        "batch_seconds": sharded_seconds,
        "kernel_tier": tier,
        "n_shards": n_shards,
    }
    assert counts.tolist() == reference
    assert native_counts.tolist() == reference
    assert sharded_counts.tolist() == reference
    if FULL:
        assert speedup >= 3.0
        if tier != "numpy":
            # Pure-numpy fallback (no compiler, no numba) is correct but
            # not fast; the 2x gate only applies to compiled tiers.
            assert native_speedup >= 2.0


def test_report(benchmark):
    lines = benchmark.pedantic(
        lambda: [
            f"N={N_POINTS:,}, d={N_DIMS}, phi={PHI}; {N_CUBES} random cubes "
            "(k in 2..4)",
            "",
        ]
        + _LINES,
        rounds=1,
        iterations=1,
    )
    from conftest import register_report

    register_report("Substrate - cube counting engines", lines)
    # Clock read lives here in benchmarks/, never in src/ (lint RPL002);
    # repro.bench takes the timestamp as data.
    append_entry(
        _BENCH_JSON,
        benchmark="counter_performance",
        timestamp=datetime.now(timezone.utc).isoformat(),
        params={
            "profile": PROFILE,
            "n_points": N_POINTS,
            "n_dims": N_DIMS,
            "phi": PHI,
            "n_cubes": N_CUBES,
            "batch": {
                "n_points": BATCH_N,
                "n_dims": BATCH_D,
                "phi": BATCH_PHI,
                "k": BATCH_K,
                "population": BATCH_P,
            },
        },
        metrics=dict(_METRICS),
        backends=dict(_BACKENDS),
    )
