"""Table 2 + §3.1: the arrhythmia rare-class experiment.

Reproduces, on the arrhythmia stand-in (exact Table 2 class counts):

1. **Table 2** — the class-code distribution: common classes
   (01, 02, 06, 10, 16) = 85.4%, rare classes = 14.6%.
2. **§3.1 protocol** — run the evolutionary search for *all*
   projections with sparsity coefficient ≤ −3, report the covered
   points, and count how many belong to a rare class.  The paper found
   85 points, 43 rare-class; its kNN-distance comparator [25] managed
   only 28 rare among its top 85 using the 1-nearest neighbor, and the
   k-nearest variant "worsened slightly".

The reproduced *shape*: the subspace method's flagged set is several
times more rare-class-enriched than the same-size kNN set, for both
1-NN and k-NN scoring.
"""

from __future__ import annotations

import pytest

from repro.baselines.knn import KNNDistanceOutlierDetector
from repro.core.detector import SubspaceOutlierDetector
from repro.data.registry import load_dataset
from repro.data.uci import ARRHYTHMIA_COMMON_CLASSES, ARRHYTHMIA_RARE_CLASSES
from repro.eval.metrics import rare_class_report
from repro.search.evolutionary.config import EvolutionaryConfig

from conftest import register_report, run_once

_STATE: dict[str, object] = {}


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("arrhythmia")


def test_table2_class_distribution(benchmark, dataset):
    """Table 2: the common/rare class marginals, to the digit."""
    fractions = run_once(benchmark, dataset.label_fractions)
    common = sum(fractions[c] for c in sorted(ARRHYTHMIA_COMMON_CLASSES))
    rare = sum(fractions[c] for c in sorted(ARRHYTHMIA_RARE_CLASSES))
    register_report(
        "Table 2 - arrhythmia class distribution",
        [
            f"{'Case':<38}{'Class Codes':<34}{'Pct of Instances':>18}",
            "-" * 90,
            (
                f"{'Commonly Occurring Classes (>=5%)':<38}"
                f"{', '.join(f'{c:02d}' for c in sorted(ARRHYTHMIA_COMMON_CLASSES)):<34}"
                f"{common:>17.1%}"
            ),
            (
                f"{'Rare Classes (<5%)':<38}"
                f"{', '.join(f'{c:02d}' for c in sorted(ARRHYTHMIA_RARE_CLASSES)):<34}"
                f"{rare:>17.1%}"
            ),
            "",
            "Paper: 85.4% / 14.6% (reproduced exactly).",
        ],
    )
    assert common == pytest.approx(0.854, abs=0.001)
    assert rare == pytest.approx(0.146, abs=0.001)


def test_subspace_threshold_mining(benchmark, dataset):
    """§3.1: evolutionary search for all projections with S <= -3."""
    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=int(dataset.metadata["phi"]),
        n_projections=None,
        threshold=-3.0,
        config=EvolutionaryConfig(
            population_size=100, max_generations=60, restarts=10
        ),
        random_state=0,
    )
    result = run_once(benchmark, lambda: detector.detect(dataset.values))
    _STATE["result"] = result
    assert len(result.projections) > 0
    assert all(p.coefficient <= -3.0 for p in result.projections)
    assert result.n_outliers > 0


def test_knn_comparison_and_report(benchmark, dataset):
    """The paper's comparison: same-size kNN sets, 1-NN and k-NN."""
    result = _STATE["result"]
    n_flagged = result.n_outliers
    rare = dataset.metadata["rare_classes"]

    subspace_report = rare_class_report(
        result.outlier_indices, dataset.labels, rare
    )
    knn1 = run_once(
        benchmark,
        lambda: KNNDistanceOutlierDetector(
            n_neighbors=1, n_outliers=n_flagged
        ).detect(dataset.values),
    )
    knn1_report = rare_class_report(knn1.outlier_indices, dataset.labels, rare)
    knn5 = KNNDistanceOutlierDetector(n_neighbors=5, n_outliers=n_flagged).detect(
        dataset.values
    )
    knn5_report = rare_class_report(knn5.outlier_indices, dataset.labels, rare)

    register_report(
        "Section 3.1 - arrhythmia rare-class experiment",
        [
            f"projections mined at S <= -3: {len(result.projections)} "
            f"(k=2, phi={result.n_ranges}, GA with restarts)",
            "",
            f"{'method':<28}{'flagged':>9}{'rare hits':>11}{'precision':>11}{'lift':>7}",
            "-" * 66,
            (
                f"{'subspace (Aggarwal-Yu)':<28}{subspace_report.n_flagged:>9}"
                f"{subspace_report.n_rare_hits:>11}{subspace_report.precision:>11.3f}"
                f"{subspace_report.lift:>7.2f}"
            ),
            (
                f"{'kNN distance (1-NN) [25]':<28}{knn1_report.n_flagged:>9}"
                f"{knn1_report.n_rare_hits:>11}{knn1_report.precision:>11.3f}"
                f"{knn1_report.lift:>7.2f}"
            ),
            (
                f"{'kNN distance (5-NN) [25]':<28}{knn5_report.n_flagged:>9}"
                f"{knn5_report.n_rare_hits:>11}{knn5_report.precision:>11.3f}"
                f"{knn5_report.lift:>7.2f}"
            ),
            "",
            "Paper: 85 flagged; subspace 43 rare vs kNN 28 rare; k-NN "
            "variant no better than 1-NN.",
        ],
    )

    # Shape assertions: subspace beats both kNN variants on rare hits,
    # and the k-NN variant does not rescue the baseline.
    assert subspace_report.n_rare_hits > knn1_report.n_rare_hits
    assert subspace_report.n_rare_hits > knn5_report.n_rare_hits
    assert subspace_report.lift > 1.5


def test_recording_error_explained(benchmark, dataset):
    """§3.1 anecdote: the 780 cm / 6 kg record shows up as an outlier.

    The paper highlights that examining mined projections exposed a
    recording error.  We verify the planted error row sits in an
    abnormally sparse height x weight cell.
    """
    from repro.core.subspace import Subspace
    from repro.grid.counter import CubeCounter
    from repro.grid.discretizer import EquiDepthDiscretizer
    from repro.sparsity.coefficient import sparsity_coefficient

    phi = int(dataset.metadata["phi"])
    height = dataset.feature_names.index("height")
    weight = dataset.feature_names.index("weight")
    row = dataset.metadata["recording_error_row"]

    def error_cell_sparsity():
        cells = EquiDepthDiscretizer(phi).fit_transform(dataset.values)
        counter = CubeCounter(cells)
        cube = Subspace.from_pairs(
            [
                (height, int(cells.codes[row, height])),
                (weight, int(cells.codes[row, weight])),
            ]
        )
        return sparsity_coefficient(
            counter.count(cube), counter.n_points, phi, 2
        )

    coefficient = run_once(benchmark, error_cell_sparsity)
    register_report(
        "Section 3.1 - recording-error anecdote",
        [
            f"record {row}: height=780cm, weight=6kg",
            f"its (height, weight) grid cell has sparsity {coefficient:.3f}"
            " — an abnormally sparse 2-d projection, exactly how the paper"
            " surfaced the data-entry error.",
        ],
    )
    assert coefficient <= -3.0
