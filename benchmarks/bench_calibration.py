"""Calibration: the selection effect behind "sparsity ≤ −3".

§1.3 calibrates one cube against the normal table; the searchers report
the best of up to ``C(d,k)·φ^k`` cubes.  This benchmark quantifies that
gap on the breast-cancer stand-in three ways:

1. the analytic expectation — how many −3 cubes chance alone produces
   in a search space this size (``expected_abnormal_cubes``);
2. the empirical null — best coefficient mined from column-permuted
   (structureless) data, over several permutations;
3. the real run — whose best coefficient should beat the entire null
   distribution (the planted structure is real).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import SubspaceOutlierDetector
from repro.data.registry import load_dataset
from repro.eval.calibration import empirical_p_value
from repro.search.brute_force import search_space_size
from repro.sparsity.statistics import (
    bonferroni_significance,
    expected_abnormal_cubes,
)

from conftest import register_report, run_once

N_PERMUTATIONS = 10


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("breast_cancer")


def _factory():
    return SubspaceOutlierDetector(
        dimensionality=3, n_ranges=4, n_projections=20, method="brute_force"
    )


def test_calibration(benchmark, dataset):
    # The single best coefficient is floored at the count-1 cube value
    # (every dataset this size has *some* count-1 cube), so the
    # calibrated statistic is Table 1's own quality metric — the mean
    # of the best 20 non-empty projections — which measures how *many*
    # abnormally sparse cubes exist, not just the floor.
    def run():
        real_result = _factory().detect(dataset.values)
        real_quality = real_result.mean_coefficient(top=20)
        real_best = real_result.best_coefficient
        null_quality = []
        null_best = []
        from repro.eval.calibration import column_permuted

        rng = np.random.default_rng(0)
        for _ in range(N_PERMUTATIONS):
            result = _factory().detect(column_permuted(dataset.values, rng))
            null_quality.append(result.mean_coefficient(top=20))
            null_best.append(result.best_coefficient)
        return real_quality, real_best, np.array(null_quality), np.array(null_best)

    real_quality, real_best, null_quality, null_best = run_once(benchmark, run)
    space = search_space_size(dataset.n_dims, 3, 4)
    p_value = empirical_p_value(real_quality, null_quality)
    lines = [
        f"dataset: breast_cancer stand-in (N={dataset.n_points}, d=14, "
        "phi=4, k=3, brute force; statistic = mean top-20 quality)",
        "",
        f"search space size:                 {space:,} cubes",
        f"chance -3 cubes expected (CLT):    "
        f"{expected_abnormal_cubes(space, -3.0):.1f}",
        f"Bonferroni significance of -3:     "
        f"{bonferroni_significance(-3.0, space):.3f}",
        "",
        f"null best coefficient (column-permuted, {N_PERMUTATIONS} runs): "
        f"median {np.nanmedian(null_best):.3f}",
        f"null top-20 quality:               "
        f"min {np.nanmin(null_quality):.3f} / median "
        f"{np.nanmedian(null_quality):.3f}",
        f"real top-20 quality:               {real_quality:.3f}",
        f"empirical p-value (quality):       {p_value:.3f}",
        "",
        "Shape: structureless data already yields a -3-ish single best "
        "cube (the selection effect; Bonferroni agrees -3 is unremarkable "
        "over 23k cubes), but the real data's *top-20* quality beats "
        "every permuted run — real structure means many abnormal cubes, "
        "not one lucky one.",
    ]
    register_report("Calibration - selection effect of the search", lines)

    assert real_quality < np.nanmin(null_quality)
    assert p_value == pytest.approx(1 / (N_PERMUTATIONS + 1))
    # The null's single best is itself at/near -3: exactly the
    # multiple-testing point — a -3 cube alone is not search-level
    # significance.
    assert np.nanmedian(null_best) <= -2.7
