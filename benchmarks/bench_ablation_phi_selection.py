"""Ablations: grid resolution φ (§2.4) and the selection operator (Figure 4).

**φ sweep** — §2.4's trade-off: small φ means coarse locality, large φ
means even modestly-dimensional cubes expect < 1 point and "it is not
possible to find a cube which has high sparsity coefficient and covers
at least one point".  We sweep φ on the breast-cancer stand-in with k
re-derived from Equation 2 each time, and report the best attainable
*non-empty* quality — which collapses toward 0 once φ^k outruns N.

**selection** — the paper prefers rank selection for stability over
fitness-proportional sampling.  We compare rank-roulette, tournament,
fitness-proportional, and uniform selection at equal budgets.
"""

from __future__ import annotations

import statistics

import pytest

from repro.core.params import choose_projection_dimensionality
from repro.data.registry import load_dataset
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer
from repro.search.brute_force import BruteForceSearch
from repro.search.evolutionary.config import EvolutionaryConfig
from repro.search.evolutionary.engine import EvolutionarySearch
from repro.search.evolutionary.selection import (
    FitnessProportionalSelection,
    RankRouletteSelection,
    TournamentSelection,
    UniformSelection,
)

from conftest import register_report, run_once

PHIS = [2, 3, 4, 5, 8, 12]

SELECTIONS = {
    "rank_roulette": RankRouletteSelection(),
    "tournament(3)": TournamentSelection(size=3),
    "fitness_prop": FitnessProportionalSelection(),
    "uniform": UniformSelection(),
}
SEEDS = [0, 1, 2]

_SELECTION_RESULTS: dict[str, list] = {}


def test_phi_sweep(benchmark):
    dataset = load_dataset("breast_cancer")

    def sweep():
        rows = []
        for phi in PHIS:
            k = choose_projection_dimensionality(dataset.n_points, phi, -3.0)
            k = min(k, dataset.n_dims)
            cells = EquiDepthDiscretizer(phi).fit_transform(dataset.values)
            counter = CubeCounter(cells)
            outcome = BruteForceSearch(counter, k, n_projections=20).run()
            rows.append(
                (
                    phi,
                    k,
                    dataset.n_points / phi**k,
                    outcome.mean_coefficient(top=20),
                    outcome.best_coefficient,
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    lines = [
        f"dataset: breast_cancer stand-in (N={load_dataset('breast_cancer').n_points}, "
        "d=14); k from Eq. 2 per phi; brute-force top-20 quality",
        "",
        f"{'phi':>5}{'k*':>5}{'E[pts/cube]':>13}{'mean quality':>14}{'best coeff':>12}",
        "-" * 49,
    ]
    for phi, k, expected, quality, best in rows:
        lines.append(
            f"{phi:>5}{k:>5}{expected:>13.2f}{quality:>14.3f}{best:>12.3f}"
        )
    lines += [
        "",
        "Shape (§2.4): moderate phi gives the most negative attainable "
        "quality; very large phi starves cubes of points and the "
        "non-empty quality collapses.",
    ]
    register_report("Ablation - grid resolution phi", lines)

    qualities = {phi: quality for phi, _, _, quality, _ in rows}
    # A moderate grid beats the extreme ones.
    best_moderate = min(qualities[phi] for phi in (3, 4, 5))
    assert best_moderate < qualities[12]
    assert best_moderate < qualities[2]


@pytest.fixture(scope="module")
def ionosphere_counter():
    dataset = load_dataset("ionosphere")
    cells = EquiDepthDiscretizer(int(dataset.metadata["phi"])).fit_transform(
        dataset.values
    )
    return CubeCounter(cells)


@pytest.mark.parametrize("name", sorted(SELECTIONS))
def test_selection_variant(benchmark, ionosphere_counter, name):
    def run_all():
        outcomes = []
        for seed in SEEDS:
            search = EvolutionarySearch(
                ionosphere_counter,
                dimensionality=3,
                n_projections=20,
                config=EvolutionaryConfig(population_size=40, max_generations=50),
                selection=SELECTIONS[name],
                random_state=seed,
            )
            outcomes.append(search.run())
        return outcomes

    outcomes = run_once(benchmark, run_all)
    _SELECTION_RESULTS[name] = outcomes
    assert all(o.projections for o in outcomes)


def test_selection_report(benchmark):
    def summarize():
        return {
            name: statistics.mean(
                o.mean_coefficient(top=20) for o in outcomes
            )
            for name, outcomes in _SELECTION_RESULTS.items()
        }

    means = run_once(benchmark, summarize)
    lines = [
        f"dataset: ionosphere stand-in (d=34, phi=3, k=3); mean top-20 "
        f"quality over {len(SEEDS)} seeds",
        "",
        f"{'selection operator':<20}{'mean quality':>14}",
        "-" * 34,
    ]
    for name in sorted(means, key=means.get):
        lines.append(f"{name:<20}{means[name]:>14.3f}")
    lines += [
        "",
        "Shape: selection pressure matters — the no-pressure uniform "
        "control trails the pressured operators (the paper picks rank "
        "selection for its scale-invariant stability).",
    ]
    register_report("Ablation - selection operator", lines)
    pressured = min(
        means["rank_roulette"], means["tournament(3)"], means["fitness_prop"]
    )
    assert pressured < means["uniform"]
