"""§2.4: projection-parameter analysis (Equation 2).

Regenerates the paper's parameter guidance as a table: for a sweep of
dataset sizes N and grid resolutions φ, the recommended dimensionality
``k* = floor(log_φ(N/s² + 1))`` and the empty-cube sparsity it implies.
Verifies the two §2.4 identities:

* the empty-cube coefficient is ``−sqrt(N/(φ^k − 1))``;
* ``k*`` is the largest k whose empty cube still reaches the target s
  (the rounding makes the effective coefficient slightly more negative
  than s, as the paper notes).
"""

from __future__ import annotations

import math

from repro.core.params import (
    choose_projection_dimensionality,
    empty_cube_sparsity,
    expected_cube_count,
)
from repro.sparsity.coefficient import sparsity_coefficient

from conftest import register_report, run_once

SWEEP_N = [452, 699, 2310, 10_000, 100_000]
SWEEP_PHI = [3, 4, 5, 10]
TARGET = -3.0


def test_equation2_sweep(benchmark):
    def build_rows():
        rows = []
        for n in SWEEP_N:
            for phi in SWEEP_PHI:
                k_star = choose_projection_dimensionality(n, phi, TARGET)
                rows.append(
                    (
                        n,
                        phi,
                        k_star,
                        empty_cube_sparsity(n, phi, k_star),
                        expected_cube_count(n, phi, k_star),
                    )
                )
        return rows

    rows = run_once(benchmark, build_rows)
    lines = [
        f"target sparsity s = {TARGET} (the paper's 99.9% reference point)",
        "",
        f"{'N':>8}{'phi':>6}{'k*':>5}{'S(empty cube)':>16}{'E[points/cube]':>17}",
        "-" * 52,
    ]
    for n, phi, k_star, s_empty, expected in rows:
        lines.append(f"{n:>8}{phi:>6}{k_star:>5}{s_empty:>16.3f}{expected:>17.2f}")
    lines += [
        "",
        "Identities verified: S(empty) = -sqrt(N/(phi^k - 1)); k* is the",
        "largest k whose empty cube reaches s (rounding overshoots s).",
    ]
    register_report("Section 2.4 - Equation 2 parameter analysis", lines)

    for n, phi, k_star, s_empty, _ in rows:
        # Closed form matches Equation 1 at count 0.
        assert abs(s_empty - sparsity_coefficient(0, n, phi, k_star)) < 1e-12
        assert abs(s_empty + math.sqrt(n / (phi**k_star - 1))) < 1e-12
        # Maximality of k*.
        assert s_empty <= TARGET or k_star == 1
        assert empty_cube_sparsity(n, phi, k_star + 1) > TARGET


def test_paper_headline_example(benchmark):
    """The paper's N=10,000, phi=10 example: k* = 3."""
    k_star = run_once(
        benchmark, lambda: choose_projection_dimensionality(10_000, 10, -3.0)
    )
    assert k_star == 3
