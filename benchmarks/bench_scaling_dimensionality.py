"""Scaling: brute-force cost explodes with dimensionality; the GA does not.

The paper's §3 argument in numbers: the brute-force search space is
``C(d, k) · φ^k`` (already ~7·10^7 at d=20, k=4, φ=10), so its runtime
grows combinatorially in d while the evolutionary algorithm's budget is
set by population × generations.  We sweep d at fixed N, φ, k on
synthetic data and report both runtimes and the measured growth ratios.
"""

from __future__ import annotations

from repro.data.synthetic import correlated_block_data
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer
from repro.search.brute_force import BruteForceSearch, search_space_size
from repro.search.evolutionary.config import EvolutionaryConfig
from repro.search.evolutionary.engine import EvolutionarySearch

from conftest import register_report, run_once

DIMS = [8, 16, 24, 32]
N_POINTS = 500
PHI = 3
K = 3

_ROWS: list[tuple] = []


def _counter_for(d: int) -> CubeCounter:
    data, _ = correlated_block_data(
        N_POINTS, d, n_blocks=2, block_size=2, random_state=d
    )
    cells = EquiDepthDiscretizer(PHI).fit_transform(data)
    return CubeCounter(cells)


def test_scaling_sweep(benchmark):
    def sweep():
        rows = []
        for d in DIMS:
            counter = _counter_for(d)
            brute = BruteForceSearch(counter, K, n_projections=20).run()
            ga = EvolutionarySearch(
                counter,
                K,
                n_projections=20,
                config=EvolutionaryConfig(population_size=40, max_generations=40),
                random_state=0,
            ).run()
            rows.append(
                (
                    d,
                    search_space_size(d, K, PHI),
                    brute.stats["elapsed_seconds"],
                    ga.stats["elapsed_seconds"],
                    brute.best_coefficient,
                    ga.best_coefficient,
                )
            )
        return rows

    rows = run_once(benchmark, sweep)
    _ROWS.extend(rows)
    lines = [
        f"N={N_POINTS}, phi={PHI}, k={K}; search space = C(d,k) * phi^k",
        "",
        f"{'d':>4}{'search space':>14}{'brute (s)':>11}{'GA (s)':>9}"
        f"{'brute best':>12}{'GA best':>10}",
        "-" * 60,
    ]
    for d, space, t_brute, t_ga, best_brute, best_ga in rows:
        lines.append(
            f"{d:>4}{space:>14,}{t_brute:>11.3f}{t_ga:>9.3f}"
            f"{best_brute:>12.3f}{best_ga:>10.3f}"
        )
    first, last = rows[0], rows[-1]
    brute_growth = last[2] / max(first[2], 1e-9)
    ga_growth = last[3] / max(first[3], 1e-9)
    lines += [
        "",
        f"runtime growth {DIMS[0]}d -> {DIMS[-1]}d: "
        f"brute x{brute_growth:.1f}, GA x{ga_growth:.1f}",
        "Paper shape: brute explodes combinatorially with d; the GA's "
        "cost is set by its population budget.",
    ]
    register_report("Scaling - dimensionality sweep", lines)

    # Brute runtime must grow much faster than the GA's.
    assert brute_growth > 3 * ga_growth
    # The GA never reports a better-than-optimal coefficient.
    for _, _, _, _, best_brute, best_ga in rows:
        assert best_ga >= best_brute - 1e-9
