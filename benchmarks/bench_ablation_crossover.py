"""Ablation: the optimized crossover (Figure 5) vs alternatives.

The paper argues the optimized crossover is the key to solution quality
— the two-point baseline "often resulted in strings which were not in
the feasible search space" — and Table 1 shows it winning on quality.
This ablation isolates the operator on one dataset across seeds:

* ``optimized`` — Figure 5 (exact Type II + greedy Type III + complement);
* ``two_point`` — segment-exchange baseline with infeasibility penalty;
* ``mutation_only`` — crossover disabled (crossover_rate = 0), the
  hill-climbing control the paper contrasts GA methods against.
"""

from __future__ import annotations

import statistics

import pytest

from repro.data.registry import load_dataset
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer
from repro.search.evolutionary.config import EvolutionaryConfig
from repro.search.evolutionary.engine import EvolutionarySearch

from conftest import register_report, run_once

SEEDS = [0, 1, 2, 3, 4]
VARIANTS = ["optimized", "two_point", "mutation_only"]

_RESULTS: dict[str, list] = {}


@pytest.fixture(scope="module")
def counter():
    dataset = load_dataset("ionosphere")
    cells = EquiDepthDiscretizer(int(dataset.metadata["phi"])).fit_transform(
        dataset.values
    )
    return CubeCounter(cells)


def _search(counter, variant, seed):
    crossover = "optimized" if variant == "mutation_only" else variant
    config = EvolutionaryConfig(
        population_size=40,
        max_generations=60,
        crossover_rate=0.0 if variant == "mutation_only" else 1.0,
    )
    return EvolutionarySearch(
        counter,
        dimensionality=3,
        n_projections=20,
        config=config,
        crossover=crossover,
        random_state=seed,
    )


@pytest.mark.parametrize("variant", VARIANTS)
def test_variant(benchmark, counter, variant):
    def run_all_seeds():
        return [_search(counter, variant, seed).run() for seed in SEEDS]

    outcomes = run_once(benchmark, run_all_seeds)
    _RESULTS[variant] = outcomes
    assert all(o.projections for o in outcomes)


def test_report_and_shape(benchmark, counter):
    def summarize():
        rows = {}
        for variant in VARIANTS:
            outcomes = _RESULTS[variant]
            rows[variant] = (
                statistics.mean(o.mean_coefficient(top=20) for o in outcomes),
                statistics.mean(o.best_coefficient for o in outcomes),
                statistics.mean(o.stats["generations"] for o in outcomes),
                statistics.mean(o.stats["evaluations"] for o in outcomes),
            )
        return rows

    rows = run_once(benchmark, summarize)
    lines = [
        f"dataset: ionosphere stand-in (d=34, phi=3, k=3); mean over {len(SEEDS)} seeds",
        "",
        f"{'crossover variant':<18}{'mean quality':>14}{'best coeff':>12}"
        f"{'generations':>13}{'evaluations':>13}",
        "-" * 70,
    ]
    for variant in VARIANTS:
        quality, best, gens, evals = rows[variant]
        lines.append(
            f"{variant:<18}{quality:>14.3f}{best:>12.3f}{gens:>13.1f}{evals:>13.0f}"
        )
    lines += [
        "",
        "Paper shape: optimized crossover yields substantially better "
        "quality than two-point, which wastes evaluations on infeasible "
        "children.",
    ]
    register_report("Ablation - crossover operator", lines)

    # Shape: optimized beats two-point on mean quality (more negative).
    assert rows["optimized"][0] < rows["two_point"][0]
    # And crossover of either kind beats no crossover at all on best-found.
    assert rows["optimized"][1] <= rows["mutation_only"][1] + 1e-9
