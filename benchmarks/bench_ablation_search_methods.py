"""Ablation: evolutionary search vs hill climbing, SA, and random search.

§2.1's claim in numbers: "evolutionary algorithms are more effective as
search methods than either hill-climbing, random search or simulated
annealing techniques; they use the essence of the techniques of all
these methods in conjunction with recombination".  All methods share
the same encoding, move set, and evaluation budget; only the search
strategy differs.
"""

from __future__ import annotations

import statistics

import pytest

from repro.data.registry import load_dataset
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer
from repro.search.evolutionary.config import EvolutionaryConfig
from repro.search.evolutionary.engine import EvolutionarySearch
from repro.search.local import (
    HillClimbingSearch,
    RandomSearch,
    SimulatedAnnealingSearch,
)

from conftest import register_report, run_once

SEEDS = [0, 1, 2]
BUDGET = 6_000  # cube evaluations per run

_RESULTS: dict[str, list] = {}


@pytest.fixture(scope="module")
def counter():
    dataset = load_dataset("musk")  # the high-dimensional stress case
    cells = EquiDepthDiscretizer(int(dataset.metadata["phi"])).fit_transform(
        dataset.values
    )
    return CubeCounter(cells)


def _make_searcher(name: str, counter, seed: int):
    if name == "evolutionary":
        # Population x generations x restarts sized to the shared budget.
        return EvolutionarySearch(
            counter,
            3,
            20,
            config=EvolutionaryConfig(
                population_size=40, max_generations=20, restarts=2
            ),
            random_state=seed,
        )
    cls = {
        "hill_climbing": HillClimbingSearch,
        "simulated_annealing": SimulatedAnnealingSearch,
        "random": RandomSearch,
    }[name]
    return cls(counter, 3, 20, max_evaluations=BUDGET, random_state=seed)


METHODS = ["evolutionary", "hill_climbing", "simulated_annealing", "random"]


@pytest.mark.parametrize("method", METHODS)
def test_method(benchmark, counter, method):
    def run_all():
        return [_make_searcher(method, counter, seed).run() for seed in SEEDS]

    outcomes = run_once(benchmark, run_all)
    _RESULTS[method] = outcomes
    assert all(o.projections for o in outcomes)


def test_report_and_shape(benchmark):
    def summarize():
        return {
            method: (
                statistics.mean(o.mean_coefficient(top=20) for o in outcomes),
                statistics.mean(o.best_coefficient for o in outcomes),
                statistics.mean(o.stats["evaluations"] for o in outcomes),
            )
            for method, outcomes in _RESULTS.items()
        }

    rows = run_once(benchmark, summarize)
    lines = [
        f"dataset: musk stand-in (d=160, phi=3, k=3); mean over {len(SEEDS)} "
        f"seeds at comparable evaluation budgets",
        "",
        f"{'search method':<22}{'mean quality':>14}{'best coeff':>12}{'evaluations':>13}",
        "-" * 61,
    ]
    for method in METHODS:
        quality, best, evals = rows[method]
        lines.append(f"{method:<22}{quality:>14.3f}{best:>12.3f}{evals:>13.0f}")
    lines += [
        "",
        "Paper shape (§2.1): the evolutionary method clearly beats pure "
        "random search and is at least as good as restart hill climbing "
        "and simulated annealing over the same move set — the single-"
        "solution methods are honest competitors on this landscape, but "
        "never better.",
    ]
    register_report("Ablation - search methods (§2.1)", lines)

    ga_quality = rows["evolutionary"][0]
    # Clear win over the no-structure control...
    assert ga_quality < rows["random"][0] - 0.1
    # ...and at least parity (small tolerance for seed noise) with the
    # single-solution local searchers.
    for method in ("hill_climbing", "simulated_annealing"):
        assert ga_quality <= rows[method][0] + 0.1
