"""Table 1: Brute vs Gen vs Gen° — time and quality on five datasets.

Reproduces both halves of the paper's Table 1 on the synthetic UCI
stand-ins (same N and d; see DESIGN.md):

* **time** — wall-clock per algorithm.  The reproduced *shape*: brute
  force explodes with dimensionality and is reported "-" on the
  160-dimensional musk stand-in (the paper's run "was unable to
  terminate in a reasonable amount of time"), while both GA variants
  stay tractable everywhere.
* **quality** — mean sparsity coefficient of the best 20 non-empty
  projections.  Gen° (optimized crossover) should approach the
  brute-force optimum (the paper's "(*)" rows) and beat the two-point
  baseline.

Grid resolution φ comes from each dataset's metadata; k is Equation 2's
recommendation (the paper's §2.4 protocol).
"""

from __future__ import annotations

import pytest

from repro.data.registry import load_dataset
from repro.eval.comparison import ComparisonRow, render_table
from repro.eval.harness import timed_detection

from conftest import register_report, run_once

#: Table 1 datasets, in the paper's order.
TABLE1_DATASETS = ["breast_cancer", "ionosphere", "segmentation", "musk", "machine"]

#: Brute force is skipped above this dimensionality (musk row).
SKIP_BRUTE_ABOVE = 100

#: Budget for any brute-force run that does start.
BRUTE_BUDGET_SECONDS = 120.0

_CELLS: dict[tuple[str, str], object] = {}
_DATASETS = {name: load_dataset(name) for name in TABLE1_DATASETS}


@pytest.mark.parametrize("name", TABLE1_DATASETS)
def test_brute_force(benchmark, name):
    """Brute-force cell of Table 1 (skipped/budgeted at high d)."""
    dataset = _DATASETS[name]
    if dataset.n_dims > SKIP_BRUTE_ABOVE:
        _CELLS[(name, "brute")] = None
        pytest.skip(
            f"{name}: d={dataset.n_dims} > {SKIP_BRUTE_ABOVE}; the paper's "
            "brute-force run did not terminate either"
        )
    cell = run_once(
        benchmark,
        lambda: timed_detection(
            dataset, "brute", max_seconds=BRUTE_BUDGET_SECONDS
        ),
    )
    _CELLS[(name, "brute")] = cell
    assert cell.quality <= 0 or not cell.completed


@pytest.mark.parametrize("name", TABLE1_DATASETS)
def test_gen_two_point(benchmark, name, ga_config):
    """Gen cell: evolutionary search with the two-point crossover baseline."""
    dataset = _DATASETS[name]
    cell = run_once(
        benchmark,
        lambda: timed_detection(dataset, "gen", config=ga_config, random_state=0),
    )
    _CELLS[(name, "gen")] = cell
    assert cell.completed


@pytest.mark.parametrize("name", TABLE1_DATASETS)
def test_gen_optimized(benchmark, name, ga_config):
    """Gen° cell: evolutionary search with optimized crossover (Figure 5)."""
    dataset = _DATASETS[name]
    cell = run_once(
        benchmark,
        lambda: timed_detection(
            dataset, "gen_opt", config=ga_config, random_state=0
        ),
    )
    _CELLS[(name, "gen_opt")] = cell
    assert cell.completed
    # Shape check: the GA can never beat the exhaustive optimum.
    brute = _CELLS.get((name, "brute"))
    if brute is not None and brute.completed:
        assert cell.quality >= brute.quality - 1e-9


def test_assemble_table1(benchmark):
    """Assemble and register the full Table 1 (and check its shape)."""
    rows = []
    for name in TABLE1_DATASETS:
        dataset = _DATASETS[name]
        rows.append(
            ComparisonRow(
                dataset=name,
                n_dims=dataset.n_dims,
                brute=_CELLS.get((name, "brute")),
                gen=_CELLS[(name, "gen")],
                gen_opt=_CELLS[(name, "gen_opt")],
            )
        )
    table = run_once(benchmark, lambda: render_table(rows))
    k_lines = [
        f"  {name}: N={_DATASETS[name].n_points}, "
        f"phi={_DATASETS[name].metadata['phi']}, "
        f"k={int(_CELLS[(name, 'gen_opt')].extra['k'])}"
        for name in TABLE1_DATASETS
    ]
    register_report(
        "Table 1 - performance and quality",
        [table, "", "Parameters (phi from dataset metadata, k via Eq. 2):"]
        + k_lines
        + [
            "",
            "Paper shape: brute '-' at 160d; Gen^o quality ~= brute "
            "(the (*) rows); two-point Gen worse.",
        ],
    )

    # Shape assertions across the whole table.
    musk_row = rows[TABLE1_DATASETS.index("musk")]
    assert musk_row.brute is None  # the paper's "-" cell
    # Optimized crossover at least matches two-point quality on a
    # majority of datasets.
    wins = sum(
        1
        for row in rows
        if row.gen_opt.quality <= row.gen.quality + 1e-9
    )
    assert wins >= 3
