#!/usr/bin/env python
"""Fail when the latest benchmark entry regressed vs the best prior run.

Thin CLI over :func:`repro.bench.trajectory.regression_main` so the CI
``bench-gate`` job (and a developer at the shell) can gate a trajectory
file produced by ``bench_counter_performance.py``::

    PYTHONPATH=src python benchmarks/check_regression.py BENCH_engine.json

Exit codes: 0 ok / nothing to compare, 1 regression beyond the
threshold (default 20%), 2 malformed trajectory file.
"""

from __future__ import annotations

import sys

from repro.bench.trajectory import regression_main

if __name__ == "__main__":
    sys.exit(regression_main())
