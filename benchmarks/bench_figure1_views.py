"""Figure 1: low-dimensional views expose outliers that full-dim distance hides.

The paper's motivating figure shows a high-dimensional dataset whose
2-d cross-sections differ: some (views 1 and 4) are structured and
expose outliers A and B, others (views 2 and 3) are noise.  The
``figure1_views`` generator reproduces that geometry; this benchmark
measures the figure's claim quantitatively:

* the subspace method flags A and B at the most abnormal score, and
  the mined projections are exactly the structured views;
* full-dimensional kNN distance and LOF rank A and B far from the top —
  "the averaging behavior of the noisy and irrelevant dimensions"
  masks them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.knn import KNNDistanceOutlierDetector
from repro.baselines.lof import LOFOutlierDetector
from repro.core.detector import SubspaceOutlierDetector
from repro.data.registry import load_dataset
from repro.search.evolutionary.config import EvolutionaryConfig

from conftest import register_report, run_once

_STATE: dict[str, object] = {}


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("figure1_views")


def _rank_of(scores: np.ndarray, point: int) -> int:
    """0-based outlyingness rank of *point* (0 = most outlying)."""
    order = np.argsort(-scores)
    return int(np.where(order == point)[0][0])


def test_subspace_exposes_planted(benchmark, dataset):
    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=int(dataset.metadata["phi"]),
        n_projections=10,
        config=EvolutionaryConfig(
            population_size=60, max_generations=60, restarts=4
        ),
        random_state=0,
    )
    result = run_once(benchmark, lambda: detector.detect(dataset.values))
    _STATE["result"] = result
    planted = set(dataset.planted_outliers.tolist())
    assert planted <= set(result.outlier_indices.tolist())
    for point in planted:
        assert result.point_score(point) == pytest.approx(result.best_coefficient)
    # The most abnormal mined projections live in the structured views.
    structured = {(0, 1), (2, 3)}
    assert {p.subspace.dims for p in result.projections[:2]} <= structured


def test_full_dimensional_baselines_miss_them(benchmark, dataset):
    knn_scores = run_once(
        benchmark, lambda: KNNDistanceOutlierDetector(n_neighbors=1).scores(dataset.values)
    )
    lof_scores = LOFOutlierDetector(n_neighbors=10).scores(dataset.values)
    a = int(dataset.metadata["outlier_A"])
    b = int(dataset.metadata["outlier_B"])
    knn_ranks = (_rank_of(knn_scores, a), _rank_of(knn_scores, b))
    lof_ranks = (_rank_of(lof_scores, a), _rank_of(lof_scores, b))
    _STATE["knn_ranks"] = knn_ranks
    _STATE["lof_ranks"] = lof_ranks
    # Neither planted outlier makes the top-4 of either full-dim method.
    assert min(knn_ranks) >= 4
    assert min(lof_ranks) >= 4


def test_auc_comparison(benchmark, dataset):
    """Ranking quality over the whole dataset (AUC on planted labels)."""
    from repro.eval.ranking import outlyingness_from_subspace_scores, roc_auc

    result = _STATE["result"]
    labels = np.zeros(dataset.n_points, dtype=bool)
    labels[dataset.planted_outliers] = True

    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=int(dataset.metadata["phi"]),
        n_projections=10,
        config=EvolutionaryConfig(
            population_size=60, max_generations=60, restarts=4
        ),
        random_state=0,
    )
    detector.detect(dataset.values)

    def compute():
        subspace = roc_auc(
            outlyingness_from_subspace_scores(detector.score(dataset.values)),
            labels,
        )
        knn = roc_auc(
            KNNDistanceOutlierDetector(n_neighbors=1).scores(dataset.values),
            labels,
        )
        lof = roc_auc(
            LOFOutlierDetector(n_neighbors=10).scores(dataset.values), labels
        )
        return subspace, knn, lof

    subspace_auc, knn_auc, lof_auc = run_once(benchmark, compute)
    _STATE["aucs"] = (subspace_auc, knn_auc, lof_auc)
    assert subspace_auc > max(knn_auc, lof_auc)
    assert subspace_auc > 0.95


def test_report(benchmark, dataset):
    result = _STATE["result"]
    knn_ranks = _STATE["knn_ranks"]
    lof_ranks = _STATE["lof_ranks"]
    a = int(dataset.metadata["outlier_A"])
    b = int(dataset.metadata["outlier_B"])

    def subspace_rank(point):
        ranked = [p for p, _ in result.ranked_outliers()]
        return ranked.index(point) if point in ranked else None

    rank_a = run_once(benchmark, lambda: subspace_rank(a))
    rank_b = subspace_rank(b)
    register_report(
        "Figure 1 - views expose what full-dim distance hides",
        [
            f"dataset: N={dataset.n_points}, d={dataset.n_dims} "
            "(views 1 & 4 structured, everything else noise)",
            "",
            f"{'method':<26}{'rank of A':>11}{'rank of B':>11}   (0 = most outlying)",
            "-" * 62,
            f"{'subspace (views 1/4)':<26}{rank_a:>11}{rank_b:>11}",
            f"{'kNN distance (full dim)':<26}{knn_ranks[0]:>11}{knn_ranks[1]:>11}",
            f"{'LOF (full dim)':<26}{lof_ranks[0]:>11}{lof_ranks[1]:>11}",
            "",
            "ranking quality (AUC on planted labels): "
            + "subspace {:.3f}, kNN {:.3f}, LOF {:.3f}".format(
                *_STATE["aucs"]
            ),
            "",
            "best mined projections: "
            + ", ".join(
                p.subspace.describe(dataset.feature_names)
                for p in result.projections[:2]
            ),
            "",
            "Paper shape: A and B are top subspace outliers via views 1/4; "
            "full-dimensional measures bury them.",
        ],
    )
    # A and B sit in the top handful (ties with a couple of natural
    # count-1 cubes are possible) while the full-dim baselines rank
    # them in the tens-to-hundreds.
    assert rank_a is not None and rank_a < 8
    assert rank_b is not None and rank_b < 8
    assert min(_STATE["knn_ranks"]) > rank_a
    assert min(_STATE["knn_ranks"]) > rank_b
