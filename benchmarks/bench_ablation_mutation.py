"""Ablation: the mutation probabilities p1 = p2 (Figure 6).

The paper fixes ``p1 = p2`` but does not report the value.  This sweep
measures the trade-off on the ionosphere stand-in: no mutation starves
the population of new dimensions once selection narrows it; excessive
mutation turns the GA into random search.  The defaults (0.25) sit on
the plateau.
"""

from __future__ import annotations

import statistics

import pytest

from repro.data.registry import load_dataset
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer
from repro.search.evolutionary.config import EvolutionaryConfig
from repro.search.evolutionary.engine import EvolutionarySearch

from conftest import register_report, run_once

RATES = [0.0, 0.1, 0.25, 0.5, 0.9]
SEEDS = [0, 1, 2]

_RESULTS: dict[float, list] = {}


@pytest.fixture(scope="module")
def counter():
    dataset = load_dataset("ionosphere")
    cells = EquiDepthDiscretizer(int(dataset.metadata["phi"])).fit_transform(
        dataset.values
    )
    return CubeCounter(cells)


@pytest.mark.parametrize("rate", RATES)
def test_rate(benchmark, counter, rate):
    def run_all():
        outcomes = []
        for seed in SEEDS:
            outcomes.append(
                EvolutionarySearch(
                    counter,
                    3,
                    20,
                    config=EvolutionaryConfig(
                        population_size=40,
                        max_generations=50,
                        mutation_swap_probability=rate,
                        mutation_flip_probability=rate,
                    ),
                    random_state=seed,
                ).run()
            )
        return outcomes

    outcomes = run_once(benchmark, run_all)
    _RESULTS[rate] = outcomes
    assert all(o.projections for o in outcomes)


def test_report_and_shape(benchmark):
    def summarize():
        return {
            rate: statistics.mean(o.mean_coefficient(top=20) for o in outcomes)
            for rate, outcomes in _RESULTS.items()
        }

    means = run_once(benchmark, summarize)
    lines = [
        f"dataset: ionosphere stand-in (d=34, phi=3, k=3); mean top-20 "
        f"quality over {len(SEEDS)} seeds; p1 = p2 swept",
        "",
        f"{'p1 = p2':>9}{'mean quality':>14}",
        "-" * 23,
    ]
    for rate in RATES:
        lines.append(f"{rate:>9.2f}{means[rate]:>14.3f}")
    lines += [
        "",
        "Shape: some mutation is necessary (rate 0 strands converged "
        "populations) and moderate rates sit on a plateau — the paper's "
        "unspecified p1 = p2 is not a sensitive choice.",
    ]
    register_report("Ablation - mutation probabilities (Figure 6)", lines)

    best_moderate = min(means[0.1], means[0.25], means[0.5])
    assert best_moderate <= means[0.0] + 1e-9