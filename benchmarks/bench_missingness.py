"""§1.2: projections can be mined from incompletely observed records.

The paper highlights that "lower dimensional projections can be mined
even in data sets which have missing attribute values" — a structural
consequence of cube counting simply skipping missing coordinates.  This
benchmark quantifies it: on the Figure 1 workload, sweep the fraction
of randomly missing cells and measure whether the planted view-outliers
are still recovered (their own coordinates stay observed; everything
else may vanish).

The full-dimensional baselines cannot run on incomplete data at all —
they need imputation first, which is itself a distortion — so the sweep
also reports the kNN-after-mean-imputation rank as the contrast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.knn import KNNDistanceOutlierDetector
from repro.core.detector import SubspaceOutlierDetector
from repro.data.preprocess import inject_missing_values, mean_impute
from repro.data.registry import load_dataset
from repro.eval.metrics import recall_of_planted

from conftest import register_report, run_once

FRACTIONS = [0.0, 0.1, 0.2, 0.3, 0.4]

_ROWS: list[tuple] = []


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("figure1_views")


def test_missingness_sweep(benchmark, dataset):
    def sweep():
        rows = []
        planted = dataset.planted_outliers
        for fraction in FRACTIONS:
            holes = inject_missing_values(
                dataset.values, fraction, random_state=17
            )
            # Keep the planted coordinates themselves observable — the
            # claim is about noise in the *rest* of the data.
            for point in planted:
                holes[point] = dataset.values[point]
            detector = SubspaceOutlierDetector(
                dimensionality=2,
                n_ranges=int(dataset.metadata["phi"]),
                n_projections=20,
                method="brute_force",
            )
            result = detector.detect(holes)
            recall = recall_of_planted(result.outlier_indices, planted)
            knn_scores = KNNDistanceOutlierDetector(n_neighbors=1).scores(
                mean_impute(holes)
            )
            order = np.argsort(-knn_scores)
            knn_best_rank = min(
                int(np.where(order == p)[0][0]) for p in planted
            )
            rows.append((fraction, recall, result.best_coefficient, knn_best_rank))
        return rows

    rows = run_once(benchmark, sweep)
    _ROWS.extend(rows)
    lines = [
        "Figure-1 workload; planted coordinates observed, everything "
        "else randomly missing",
        "",
        f"{'missing':>9}{'subspace recall':>17}{'best coeff':>12}"
        f"{'kNN best rank':>15}",
        "-" * 53,
    ]
    for fraction, recall, best, knn_rank in rows:
        lines.append(
            f"{fraction:>9.0%}{recall:>17.2f}{best:>12.3f}{knn_rank:>15}"
        )
    lines += [
        "",
        "Paper claim (§1.2): the subspace method keeps working under "
        "missingness (counting skips missing coordinates) — recall stays "
        "1.0 at every level.  The kNN baseline needs mean imputation "
        "first, and its ranks are imputation artifacts: at heavy "
        "missingness the fully-observed rows look artificially distant "
        "from the imputation-shrunken rest, which is a distortion, not "
        "detection.",
    ]
    register_report("Section 1.2 - missing-data tolerance", lines)

    # Shape: the subspace method's recall is perfect at every level;
    # the kNN baseline buries the outliers wherever imputation has not
    # yet degenerated the geometry outright.
    for fraction, recall, _, knn_rank in rows:
        assert recall == 1.0
        if fraction <= 0.2:
            assert knn_rank >= 4
