"""§3.1 housing experiment: interpretable contrarian records.

The paper mines 3- and 4-dimensional projections of 13 Boston housing
attributes (the binary CHAS attribute dropped) and reads off contrarian
records — e.g. a suburb with a high crime rate and high pupil-teacher
ratio yet *close* to employment centers.  The stand-in generator wires
in the same correlations and plants the paper's three contrarians; this
benchmark mines projections at k = 2, 3 and 4 and verifies the planted
records are recovered with interpretable explanations.
"""

from __future__ import annotations

import pytest

from repro.core.detector import SubspaceOutlierDetector
from repro.core.explain import explain_point
from repro.data.preprocess import drop_low_variance_columns
from repro.data.registry import load_dataset
from repro.eval.metrics import recall_of_planted
from repro.search.evolutionary.config import EvolutionaryConfig

from conftest import register_report, run_once

_STATE: dict[str, object] = {}


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("housing")


@pytest.fixture(scope="module")
def cleaned(dataset):
    """The paper's cleanup: drop the single binary attribute (CHAS)."""
    values, kept = drop_low_variance_columns(dataset.values, min_unique=3)
    names = tuple(dataset.feature_names[i] for i in kept)
    assert "CHAS" not in names
    assert len(names) == 13
    return values, names


def test_contrarians_mined_at_k2(benchmark, dataset, cleaned):
    values, names = cleaned
    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=int(dataset.metadata["phi"]),
        n_projections=20,
        method="brute_force",
    )
    result = run_once(
        benchmark, lambda: detector.detect(values, feature_names=names)
    )
    _STATE["k2"] = (detector, result, values, names)
    recall = recall_of_planted(result.outlier_indices, dataset.planted_outliers)
    assert recall == 1.0


@pytest.mark.parametrize("k", [3, 4])
def test_higher_dimensional_projections(benchmark, dataset, cleaned, k):
    """The paper's 3- and 4-dimensional runs (evolutionary search)."""
    values, names = cleaned
    detector = SubspaceOutlierDetector(
        dimensionality=k,
        n_ranges=int(dataset.metadata["phi"]),
        n_projections=20,
        config=EvolutionaryConfig(
            population_size=60, max_generations=60, restarts=3
        ),
        random_state=k,
    )
    result = run_once(
        benchmark, lambda: detector.detect(values, feature_names=names)
    )
    _STATE[f"k{k}"] = (detector, result, values, names)
    assert all(p.dimensionality == k for p in result.projections)
    assert result.best_coefficient < 0


def test_report(benchmark, dataset):
    detector, result, values, names = _STATE["k2"]

    def build_findings():
        lines = []
        for row in dataset.planted_outliers.tolist():
            explanation = explain_point(
                row, result, detector.cells_, values, names
            )
            lines.append(str(explanation))
        return lines

    findings = run_once(benchmark, build_findings)
    lines = [
        "paper protocol: 13 of 14 attributes (binary CHAS dropped), "
        "3- and 4-d projections mined",
        "",
        "planted contrarians (paper's §3.1 anecdotes) as explained by "
        "the k=2 run:",
    ]
    lines += findings
    for k in (3, 4):
        _, result_k, _, names_k = _STATE[f"k{k}"]
        lines += [
            "",
            f"best k={k} projections:",
        ]
        lines += [
            f"  {p.describe(names_k)}" for p in result_k.projections[:3]
        ]
    register_report("Section 3.1 - housing contrarian records", lines)
    assert any("CRIM" in line for line in findings)
