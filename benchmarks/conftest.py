"""Shared infrastructure for the reproduction benchmarks.

Each benchmark module times its workload through pytest-benchmark and
registers the paper-style output rows here; a terminal-summary hook
prints every registered table after the run, so

    pytest benchmarks/ --benchmark-only

reproduces the paper's tables and figures in one shot.  The rendered
tables are also written to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path

import pytest

from repro._atomic import atomic_write_text
from repro.search.evolutionary.config import EvolutionaryConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Experiment id -> list of rendered lines, in registration order.
_REPORTS: "OrderedDict[str, list[str]]" = OrderedDict()


def register_report(experiment: str, lines) -> None:
    """Register rendered output lines for *experiment* (idempotent append)."""
    block = _REPORTS.setdefault(experiment, [])
    if isinstance(lines, str):
        lines = lines.splitlines()
    block.extend(lines)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    terminalreporter.write_sep("=", "paper reproduction outputs")
    for experiment, lines in _REPORTS.items():
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", experiment)
        for line in lines:
            terminalreporter.write_line(line)
        out_path = RESULTS_DIR / f"{experiment.replace(' ', '_').replace('/', '-')}.txt"
        atomic_write_text(out_path, "\n".join(lines) + "\n")
    terminalreporter.write_line("")
    terminalreporter.write_line(f"(tables also written to {RESULTS_DIR})")


@pytest.fixture(scope="session")
def ga_config():
    """The GA configuration used across Table 1 benchmarks."""
    return EvolutionaryConfig(population_size=50, max_generations=80)


def run_once(benchmark, fn):
    """Time *fn* exactly once through pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
