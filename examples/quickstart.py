"""Quickstart: find subspace outliers in 60 seconds.

Generates a small high-dimensional dataset with one planted anomaly —
a record whose attributes are each individually normal but whose
*combination* is nearly impossible — and walks through the full
pipeline: detect, rank, explain.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import EvolutionaryConfig, SubspaceOutlierDetector, explain_point


def make_data(seed: int = 7) -> np.ndarray:
    """300 points, 12 dims; dims 0-1 strongly correlated, rest noise."""
    rng = np.random.default_rng(seed)
    n = 300
    data = rng.normal(size=(n, 12))
    latent = rng.normal(size=n)
    data[:, 0] = latent + rng.normal(scale=0.1, size=n)
    data[:, 1] = latent + rng.normal(scale=0.1, size=n)
    # The anomaly: low on dim 0, high on dim 1 — a combination the
    # correlation makes nearly impossible, while each value alone is
    # utterly ordinary.
    data[42, 0] = np.quantile(data[:, 0], 0.05)
    data[42, 1] = np.quantile(data[:, 1], 0.95)
    return data


def main() -> None:
    data = make_data()

    detector = SubspaceOutlierDetector(
        dimensionality=2,      # mine 2-d projections (k)
        n_ranges=5,            # 5 equi-depth ranges per attribute (phi)
        n_projections=10,      # keep the 10 most abnormal cubes (m)
        config=EvolutionaryConfig(population_size=40, max_generations=50),
        random_state=0,
    )
    result = detector.detect(data)

    print(f"flagged {result.n_outliers} outliers "
          f"(best sparsity coefficient {result.best_coefficient:.2f})\n")

    print("top 5 outliers (most abnormal first):")
    for point, score in result.ranked_outliers()[:5]:
        print(f"  point {point:>3}  score {score:.3f}")

    print("\nwhy is the top outlier abnormal?")
    top_point = result.ranked_outliers()[0][0]
    explanation = explain_point(top_point, result, detector.cells_, data)
    print(explanation)

    assert 42 == top_point, "the planted anomaly should rank first"
    print("\nthe planted anomaly (point 42) was recovered — quickstart OK")


if __name__ == "__main__":
    main()
