"""The paper's §3.1 arrhythmia experiment, end to end.

Runs the exact protocol of the paper's quantitative evaluation on the
arrhythmia stand-in (279 attributes, Table 2's class distribution):

1. mine *all* projections with sparsity coefficient ≤ −3 using the
   evolutionary algorithm;
2. report the covered points and how many belong to a rare diagnosis
   class;
3. compare against the kNN-distance baseline [25] at the same set size
   (1-NN and 5-NN);
4. surface the recording-error record (height 780 cm, weight 6 kg) the
   paper found by reading the projections.

Run:  python examples/arrhythmia_screening.py
"""

from repro import EvolutionaryConfig, SubspaceOutlierDetector, explain_point
from repro.baselines import KNNDistanceOutlierDetector
from repro.data import load_dataset
from repro.eval import rare_class_report


def main() -> None:
    dataset = load_dataset("arrhythmia")
    rare = dataset.metadata["rare_classes"]
    print(dataset.summary())
    print(f"rare classes {rare}: "
          f"{sum(dataset.label_fractions()[c] for c in rare):.1%} of records\n")

    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=int(dataset.metadata["phi"]),
        n_projections=None,          # unbounded: keep everything ...
        threshold=-3.0,              # ... with coefficient <= -3
        config=EvolutionaryConfig(
            population_size=100, max_generations=60, restarts=8
        ),
        random_state=0,
    )
    result = detector.detect(dataset.values, feature_names=dataset.feature_names)

    report = rare_class_report(result.outlier_indices, dataset.labels, rare)
    print(f"subspace method: {report}")

    knn = KNNDistanceOutlierDetector(
        n_neighbors=1, n_outliers=result.n_outliers
    ).detect(dataset.values)
    print(f"kNN baseline:    "
          f"{rare_class_report(knn.outlier_indices, dataset.labels, rare)}")

    # The recording-error anecdote: check whether the planted
    # 780cm/6kg record is covered, and read its explanation.
    error_row = dataset.metadata["recording_error_row"]
    if error_row in result.outlier_indices:
        print(f"\nrecording error surfaced (row {error_row}):")
        print(explain_point(
            error_row, result, detector.cells_, dataset.values,
            dataset.feature_names,
        ))
    else:
        print(f"\nrecording error row {error_row} not covered in this run "
              "(increase restarts to harvest more projections)")

    print(f"\npaper reference: 85 points flagged, 43 rare-class, "
          f"vs 28 for the kNN comparator.")


if __name__ == "__main__":
    main()
