"""The paper's §3.1 housing analysis: contrarian suburbs, explained.

Mines 2-, 3- and 4-dimensional projections of the Boston-housing
stand-in (binary CHAS attribute dropped, as in the paper) and prints
the contrarian records with their mined patterns — the qualitative
style of analysis the paper closes with, e.g. "high crime rate and high
pupil-teacher ratio, but low distance to employment centers".

Run:  python examples/housing_contrarians.py
"""

from repro import EvolutionaryConfig, SubspaceOutlierDetector, explain_point
from repro.data import load_dataset
from repro.data.preprocess import drop_low_variance_columns


def main() -> None:
    dataset = load_dataset("housing")
    values, kept = drop_low_variance_columns(dataset.values, min_unique=3)
    names = tuple(dataset.feature_names[i] for i in kept)
    print(f"{dataset.summary()}  (using {len(names)} of "
          f"{dataset.n_dims} attributes; binary CHAS dropped)\n")

    # k = 2: exhaustive mining, every contrarian pair pattern.
    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=int(dataset.metadata["phi"]),
        n_projections=20,
        method="brute_force",
    )
    result = detector.detect(values, feature_names=names)

    print("contrarian suburbs (planted to match the paper's anecdotes):")
    for row in dataset.planted_outliers.tolist():
        print(f"\n--- suburb {row} ---")
        explanation = explain_point(row, result, detector.cells_, values, names)
        for line in explanation.findings[:3]:
            print(f"  {line}")

    # k = 3 and 4: the paper's actual projection dimensionalities,
    # mined with the evolutionary algorithm.
    for k in (3, 4):
        ga = SubspaceOutlierDetector(
            dimensionality=k,
            n_ranges=int(dataset.metadata["phi"]),
            n_projections=10,
            config=EvolutionaryConfig(
                population_size=60, max_generations=60, restarts=3
            ),
            random_state=k,
        )
        ga_result = ga.detect(values, feature_names=names)
        print(f"\nmost abnormal {k}-dimensional projections:")
        for projection in ga_result.projections[:3]:
            print(f"  {projection.describe(names)}")


if __name__ == "__main__":
    main()
