"""Scaling beyond the paper: fit on a sample, score a large stream.

The paper's datasets top out at a few thousand records, but the method
scales naturally: the grid and the mined projections are a compact
model, so you can

1. fit the detector on a manageable reference sample (with the
   bit-packed counter to keep mask memory at 1/8th),
2. persist the model, and
3. score arbitrarily many new records in chunks — each chunk is one
   discretizer transform plus a handful of vectorized cube-membership
   checks.

This example fits on 5,000 reference profiles and scores 200,000
streamed records (with planted anomalies sprinkled in) in chunks.

Run:  python examples/large_scale_scoring.py
"""

import time

import numpy as np

from repro import EvolutionaryConfig, SubspaceOutlierDetector


N_REFERENCE = 5_000
N_STREAM = 200_000
N_DIMS = 24
CHUNK = 20_000


def make_reference(rng) -> np.ndarray:
    """Reference sample: dims 0-1 and 2-3 strongly correlated."""
    data = rng.normal(size=(N_REFERENCE, N_DIMS))
    for a, b in ((0, 1), (2, 3)):
        latent = rng.normal(size=N_REFERENCE)
        data[:, a] = latent + rng.normal(scale=0.12, size=N_REFERENCE)
        data[:, b] = latent + rng.normal(scale=0.12, size=N_REFERENCE)
    return data


def make_stream(rng, reference) -> tuple[np.ndarray, np.ndarray]:
    """A big stream from the same process + 200 planted anomalies."""
    stream = rng.normal(size=(N_STREAM, N_DIMS))
    for a, b in ((0, 1), (2, 3)):
        latent = rng.normal(size=N_STREAM)
        stream[:, a] = latent + rng.normal(scale=0.12, size=N_STREAM)
        stream[:, b] = latent + rng.normal(scale=0.12, size=N_STREAM)
    planted = rng.choice(N_STREAM, size=200, replace=False)
    for i, row in enumerate(planted):
        a, b = ((0, 1), (2, 3))[i % 2]
        stream[row, a] = np.quantile(reference[:, a], 0.03)
        stream[row, b] = np.quantile(reference[:, b], 0.97)
    return stream, np.sort(planted)


def main() -> None:
    rng = np.random.default_rng(21)
    reference = make_reference(rng)
    stream, planted = make_stream(rng, reference)

    # For reference-vs-stream scoring, keep the *empty* reference cubes
    # too (require_nonempty=False): a region no reference point ever
    # visits is exactly where a new anomaly will land.  The threshold
    # keeps only near-empty cubes (the empty-cube bound here is -11.95).
    t0 = time.perf_counter()
    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=6,
        n_projections=None,
        threshold=-11.0,
        require_nonempty=False,
        config=EvolutionaryConfig(
            population_size=60, max_generations=60, restarts=4
        ),
        packed=True,                       # 8x smaller masks
        random_state=0,
    )
    detector.detect(reference)
    fit_seconds = time.perf_counter() - t0
    print(f"fitted on {N_REFERENCE:,} reference rows in {fit_seconds:.2f}s "
          f"({len(detector.result_.projections)} projections, "
          f"best {detector.result_.best_coefficient:.2f})")

    t0 = time.perf_counter()
    flagged: list[int] = []
    for start in range(0, N_STREAM, CHUNK):
        chunk = stream[start : start + CHUNK]
        scores = detector.score(chunk)
        hit = ~np.isnan(scores) & (scores <= -11.0)
        flagged.extend((start + np.nonzero(hit)[0]).tolist())
    score_seconds = time.perf_counter() - t0
    rate = N_STREAM / score_seconds
    print(f"scored {N_STREAM:,} streamed rows in {score_seconds:.2f}s "
          f"({rate:,.0f} rows/s), {len(flagged)} flagged "
          f"({len(flagged) / N_STREAM:.2%})")

    hits = len(set(flagged) & set(planted.tolist()))
    print(f"planted anomalies recovered: {hits}/{len(planted)} "
          f"({hits / len(planted):.0%})")


if __name__ == "__main__":
    main()
