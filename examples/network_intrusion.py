"""Network intrusion detection with interpretable subspace outliers.

The paper lists network intrusion as a headline application: the
attributes affected by an attack "may provide guidance in discovering
the causalities of the abnormal behavior".  This example simulates
connection-level flow summaries where an exfiltration host sends huge
outbound volume over very few connections, and a scanning host touches
many ports with tiny payloads — both invisible to full-dimensional
distance under dozens of routine counters, both named precisely by the
mined projections.

It also demonstrates §1.2's missing-data tolerance: a slice of the
telemetry is dropped (sensor gaps) and the detector still works,
because cube counting simply skips missing coordinates.

Run:  python examples/network_intrusion.py
"""

import numpy as np

from repro import EvolutionaryConfig, SubspaceOutlierDetector, render_report
from repro.data.preprocess import inject_missing_values

FEATURES = [
    "bytes_out",        # correlated with conn_count for normal hosts
    "conn_count",
    "distinct_ports",   # correlated with bytes_in
    "bytes_in",
    "avg_duration",
    "syn_ratio",
    "dns_queries",
    "http_ratio",
    "tls_ratio",
    "retransmits",
    "icmp_ratio",
    "failed_logins",
    "weekend_ratio",
    "night_ratio",
]


def make_telemetry(seed: int = 11) -> tuple[np.ndarray, dict[str, int]]:
    """800 host profiles with two planted attack signatures."""
    rng = np.random.default_rng(seed)
    n = 800
    data = rng.normal(size=(n, len(FEATURES)))

    volume = rng.normal(size=n)
    data[:, 0] = volume + rng.normal(scale=0.12, size=n)   # bytes_out
    data[:, 1] = volume + rng.normal(scale=0.12, size=n)   # conn_count
    fanout = rng.normal(size=n)
    data[:, 2] = fanout + rng.normal(scale=0.12, size=n)   # distinct_ports
    data[:, 3] = fanout + rng.normal(scale=0.12, size=n)   # bytes_in

    # Exfiltration: massive outbound volume over very few connections.
    exfil = 256
    data[exfil, 0] = np.quantile(data[:, 0], 0.96)
    data[exfil, 1] = np.quantile(data[:, 1], 0.04)

    # Port scan: many distinct ports but almost no inbound payload.
    scan = 603
    data[scan, 2] = np.quantile(data[:, 2], 0.96)
    data[scan, 3] = np.quantile(data[:, 3], 0.04)

    return data, {"exfiltration_host": exfil, "port_scanner": scan}


def main() -> None:
    data, attacks = make_telemetry()

    # Sensor gaps: 8% of telemetry cells are missing, but keep the
    # planted attack coordinates observable.
    telemetry = inject_missing_values(data, 0.08, random_state=1)
    for host in attacks.values():
        telemetry[host] = data[host]

    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=5,
        n_projections=16,
        config=EvolutionaryConfig(
            population_size=60, max_generations=60, restarts=6
        ),
        random_state=0,
    )
    result = detector.detect(telemetry, feature_names=FEATURES)

    print(render_report(result, detector.cells_, telemetry, top=5,
                        feature_names=FEATURES))

    ranked = [point for point, _ in result.ranked_outliers()]
    print("\nattack hosts:")
    for label, host in attacks.items():
        position = ranked.index(host) if host in ranked else None
        status = f"rank {position}" if position is not None else "missed"
        print(f"  {label} (host {host}): {status}")

    recovered = sum(
        1 for host in attacks.values() if host in ranked[:6]
    )
    print(f"\n{recovered} of {len(attacks)} attack hosts in the top-6, "
          f"despite {np.isnan(telemetry).mean():.0%} missing telemetry.")


if __name__ == "__main__":
    main()
