"""Intensional knowledge: the *minimal* reason a record is abnormal.

The paper contrasts its method with Knorr & Ng's notion of intensional
knowledge — explaining an outlier by the smallest attribute subsets in
which it deviates.  `repro.minimal_abnormal_subspaces` provides that
drill-down under the sparsity-coefficient measure: anchored at one
point, it sweeps cube dimensionalities level-wise and returns only the
minimal abnormal cubes (no returned explanation contains a smaller one).

This example runs it on the arrhythmia stand-in's recording-error
record (height 780 cm, weight 6 kg) and on a planted rare-class record,
then persists the detector's model and re-scores the data from the
saved file — the full production workflow.

Run:  python examples/intensional_explanations.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    EvolutionaryConfig,
    SubspaceOutlierDetector,
    load_model,
    minimal_abnormal_subspaces,
    save_model,
)
from repro.data import load_dataset
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer


def main() -> None:
    dataset = load_dataset("arrhythmia")
    phi = int(dataset.metadata["phi"])
    cells = EquiDepthDiscretizer(phi).fit_transform(
        dataset.values, feature_names=dataset.feature_names
    )
    counter = CubeCounter(cells)

    # 1. Minimal abnormal subspaces of the famous recording error.
    error_row = dataset.metadata["recording_error_row"]
    print(f"record {error_row} (height "
          f"{dataset.values[error_row, 2]:.0f} cm, weight "
          f"{dataset.values[error_row, 3]:.0f} kg):")
    for projection in minimal_abnormal_subspaces(
        error_row, counter, threshold=-3.0, max_dimensionality=2
    )[:5]:
        print(f"  {projection.describe(dataset.feature_names)}")

    # 2. Same drill-down for a planted rare-class record.
    rare_row = int(dataset.planted_outliers[0])
    print(f"\nrare-class record {rare_row} "
          f"(class {int(dataset.labels[rare_row])}):")
    for projection in minimal_abnormal_subspaces(
        rare_row, counter, threshold=-3.0, max_dimensionality=2
    )[:5]:
        print(f"  {projection.describe(dataset.feature_names)}")

    # 3. Production workflow: fit, save, reload, score.
    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=phi,
        n_projections=None,
        threshold=-3.0,
        config=EvolutionaryConfig(
            population_size=80, max_generations=50, restarts=5
        ),
        random_state=0,
    )
    detector.detect(dataset.values, feature_names=dataset.feature_names)

    with tempfile.TemporaryDirectory() as tmp:
        path = save_model(detector, Path(tmp) / "arrhythmia_model.json")
        model = load_model(path)
        scores = model.score(dataset.values)
        flagged = int(np.sum(~np.isnan(scores)))
        print(f"\nmodel saved ({path.stat().st_size} bytes), reloaded, and "
              f"re-scored: {flagged} records covered by "
              f"{len(model.projections)} stored projections")
        live = detector.score(dataset.values)
        assert np.allclose(scores, live, equal_nan=True)
        print("saved-model scores identical to the live detector — OK")


if __name__ == "__main__":
    main()
