"""Credit-card fraud screening — the paper's motivating application.

The introduction argues that in fraud detection "only the subset of the
attributes which are actually affected by the abnormality of the
activity are likely to be useful": a fraudster may match normal
behaviour on almost every feature and deviate only on a small, a-priori
unknown combination (e.g. many small online purchases *and* an unusual
merchant category, while amounts and times stay typical).

This example builds a synthetic transaction-profile dataset with two
fraud patterns hidden in different 2-attribute subspaces, shows that
full-dimensional kNN distance misses them, and that the subspace
detector both finds them and *names the pattern* — the interpretability
the paper's desiderata demand.

Run:  python examples/credit_card_fraud.py
"""

import numpy as np

from repro import EvolutionaryConfig, SubspaceOutlierDetector, explain_point
from repro.baselines import KNNDistanceOutlierDetector

FEATURES = [
    "avg_amount",         # correlated with credit_limit
    "credit_limit",
    "txn_per_day",        # correlated with online_ratio
    "online_ratio",
    "merchant_variety",
    "intl_ratio",
    "night_ratio",
    "cash_advance_ratio",
    "days_since_open",
    "avg_balance",
    "payment_punctuality",
    "disputes",
]


def make_profiles(seed: int = 3) -> tuple[np.ndarray, list[int]]:
    """1,000 cardholder profiles with two planted fraud signatures."""
    rng = np.random.default_rng(seed)
    n = 1_000
    data = rng.normal(size=(n, len(FEATURES)))

    # Honest structure: spending scales with the credit limit, and
    # heavy users transact online more.
    spending = rng.normal(size=n)
    data[:, 0] = spending + rng.normal(scale=0.15, size=n)
    data[:, 1] = spending + rng.normal(scale=0.15, size=n)
    activity = rng.normal(size=n)
    data[:, 2] = activity + rng.normal(scale=0.15, size=n)
    data[:, 3] = activity + rng.normal(scale=0.15, size=n)

    # Fraud signature 1 (card testing): tiny average amounts on a very
    # high credit limit — each value normal alone, the combo absurd.
    fraud_a = 117
    data[fraud_a, 0] = np.quantile(data[:, 0], 0.04)
    data[fraud_a, 1] = np.quantile(data[:, 1], 0.96)

    # Fraud signature 2 (account takeover): few transactions per day
    # yet almost all of them online.
    fraud_b = 804
    data[fraud_b, 2] = np.quantile(data[:, 2], 0.04)
    data[fraud_b, 3] = np.quantile(data[:, 3], 0.96)

    return data, [fraud_a, fraud_b]


def main() -> None:
    data, fraud = make_profiles()

    print("=== full-dimensional kNN baseline ===")
    knn = KNNDistanceOutlierDetector(n_neighbors=1, n_outliers=10).detect(data)
    hits = set(knn.outlier_indices.tolist()) & set(fraud)
    print(f"top-10 kNN outliers contain {len(hits)} of {len(fraud)} fraud cases")

    print("\n=== subspace detector (Aggarwal-Yu) ===")
    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=5,
        n_projections=10,
        config=EvolutionaryConfig(
            population_size=60, max_generations=60, restarts=3
        ),
        random_state=0,
    )
    result = detector.detect(data, feature_names=FEATURES)
    ranked = [point for point, _ in result.ranked_outliers()]
    found = [f for f in fraud if f in ranked[:6]]
    print(f"top-6 subspace outliers contain {len(found)} of {len(fraud)} fraud cases")

    for case in fraud:
        print(f"\n--- fraud case {case} explained ---")
        print(explain_point(case, result, detector.cells_, data, FEATURES))

    if len(found) > len(hits):
        print("\nsubspace projections expose fraud the full-dimensional "
              "metric averages away — the paper's core claim.")


if __name__ == "__main__":
    main()
