"""Legacy setup shim.

Kept so ``pip install -e . --no-build-isolation --no-use-pep517`` works
on environments whose setuptools predates built-in ``bdist_wheel``
support (all metadata lives in pyproject.toml).
"""

from setuptools import setup

setup()
